"""Adaptive-optimizer acceptance benchmark — skew without the rescue tax.

Drives the :class:`~repro.service.service.PartitionService` with and
without an attached :class:`~repro.optimize.AdaptiveOptimizer` on two
workloads:

* **Zipf(1.2) mixed-width** — the regime the optimizer exists for: a
  PAD-mode request stream whose sketch-detectable heavy hitters doom
  every static PAD attempt, forcing the failed-pass-then-HIST rescue
  (two extra kernel passes per request).  The optimizer isolates the
  hot keys into dedicated exact-fit regions instead, so each request
  completes in a single clean PAD pass.
* **uniform control** — no skew, nothing to fix; the optimizer must
  not cost more than 5% of static throughput here (its sketch pass is
  the only overhead).

Acceptance criteria (recorded in the artifact):

* optimized throughput beats static on the skewed workload;
* optimized throughput is never more than 5% below static on uniform;
* every optimized response is byte-identical to a direct static
  :class:`~repro.core.partitioner.FpgaPartitioner` reference;
* zero requests fail (in particular: zero PAD-overflow raises).

Run as a script to write the standard JSON artifact::

    PYTHONPATH=src python benchmarks/bench_optimizer.py \
        --output BENCH_optimizer.json
"""

import argparse
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bench import ExperimentTable, shape_check, write_json_artifact
from repro.core.modes import OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.optimize import AdaptiveOptimizer
from repro.service import (
    PartitionRequest,
    PartitionService,
    RequestStatus,
)
from repro.workloads.relations import make_relation

EXPERIMENT = "Adaptive optimizer"

#: acceptance workload: mixed-width PAD requests, fan-out 64
DEFAULT_REQUESTS = 40
DEFAULT_SIZE_RANGE = (20_000, 60_000)
DEFAULT_PARTITIONS = 64
ZIPF_FACTOR = 1.2

#: quick-mode size for smoke tests
QUICK_REQUESTS = 12

#: uniform throughput floor: optimized may cost at most 5% of static
UNIFORM_FLOOR = 0.95


def make_requests(
    count: int,
    skewed: bool,
    size_range: Tuple[int, int] = DEFAULT_SIZE_RANGE,
    num_partitions: int = DEFAULT_PARTITIONS,
    seed: int = 0,
) -> List[PartitionRequest]:
    """A mixed-width PAD request stream (deterministic)."""
    rng = np.random.default_rng(seed)
    config = PartitionerConfig(
        num_partitions=num_partitions, output_mode=OutputMode.PAD
    )
    sizes = rng.integers(size_range[0], size_range[1], size=count)
    return [
        PartitionRequest(
            relation=make_relation(
                int(size),
                "zipf" if skewed else "random",
                seed=seed + i,
                zipf_factor=ZIPF_FACTOR if skewed else 0.0,
            ).keys,
            config=config,
            # the robust static default: a doomed PAD pass falls back
            # to the two-pass HIST layout instead of raising
            on_overflow="hist",
        )
        for i, size in enumerate(sizes)
    ]


def run_service(
    requests: Sequence[PartitionRequest], optimize: bool, seed: int = 0
) -> Tuple[float, list, PartitionService]:
    """Open-loop drive; returns (seconds, responses, service)."""
    optimizer = AdaptiveOptimizer(seed=seed) if optimize else None
    with PartitionService(
        max_queue_requests=len(requests) + 1, optimizer=optimizer
    ) as service:
        start = time.perf_counter()
        tickets = [service.submit(request) for request in requests]
        responses = [ticket.result(timeout=600) for ticket in tickets]
        elapsed = time.perf_counter() - start
    return elapsed, responses, service


def count_divergences(
    requests: Sequence[PartitionRequest], responses: Sequence
) -> int:
    """Responses whose contents differ from the static reference."""
    reference: dict = {}
    divergences = 0
    for request, response in zip(requests, responses):
        if response.status is not RequestStatus.OK:
            divergences += 1
            continue
        partitioner = reference.get(request.config)
        if partitioner is None:
            partitioner = FpgaPartitioner(request.config)
            reference[request.config] = partitioner
        direct = partitioner.partition(request.relation, on_overflow="hist")
        same = np.array_equal(response.output.counts, direct.counts) and all(
            np.array_equal(a, b)
            for a, b in zip(
                response.output.partition_keys, direct.partition_keys
            )
        ) and all(
            np.array_equal(a, b)
            for a, b in zip(
                response.output.partition_payloads,
                direct.partition_payloads,
            )
        )
        divergences += 0 if same else 1
    for partitioner in reference.values():
        partitioner.close()
    return divergences


def optimizer_table(
    requests: Optional[int] = None,
    size_range: Tuple[int, int] = DEFAULT_SIZE_RANGE,
    num_partitions: int = DEFAULT_PARTITIONS,
    quick: bool = False,
    verify: bool = True,
) -> ExperimentTable:
    """Static vs optimized dispatch on skewed and uniform streams."""
    count = requests or (QUICK_REQUESTS if quick else DEFAULT_REQUESTS)
    rows = []
    rps = {}
    for workload, skewed in (("zipf", True), ("uniform", False)):
        stream = make_requests(count, skewed, size_range, num_partitions)
        for optimize in (False, True):
            elapsed, responses, service = run_service(stream, optimize)
            divergences = (
                count_divergences(stream, responses) if verify else -1
            )
            snapshot = service.snapshot()
            counters = snapshot["counters"]
            mode = "optimized" if optimize else "static"
            rps[f"{workload}/{mode}"] = count / elapsed
            rows.append(
                [
                    workload,
                    mode,
                    count,
                    counters["completed"],
                    counters["failed"],
                    count / elapsed,
                    counters["isolated"],
                    counters["preempted_hist"],
                    counters["routed_cpu"],
                    divergences,
                ]
            )
    zipf_speedup = rps["zipf/optimized"] / rps["zipf/static"]
    uniform_ratio = rps["uniform/optimized"] / rps["uniform/static"]
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=(
            f"{count} PAD requests of {size_range[0]}-{size_range[1]} "
            f"tuples, fan-out {num_partitions}: static vs "
            f"sketch-driven optimizer"
        ),
        headers=[
            "workload", "dispatch", "req", "ok", "failed", "req/s",
            "isolated", "hist", "cpu", "diverged",
        ],
        rows=rows,
        note=(
            f"Zipf({ZIPF_FACTOR}) speedup {zipf_speedup:.2f}x "
            f"(must be > 1); uniform ratio {uniform_ratio:.2f} "
            f"(floor {UNIFORM_FLOOR}); diverged must be 0"
        ),
    )


def write_artifact(
    path: str,
    requests: Optional[int] = None,
    quick: bool = False,
):
    """Measure and write the ``BENCH_optimizer.json`` artifact."""
    table = optimizer_table(requests=requests, quick=quick)
    by_run = {f"{row[0]}/{row[1]}": row for row in table.rows}
    # one more optimized skewed run, kept for its full snapshot export
    count = requests or (QUICK_REQUESTS if quick else DEFAULT_REQUESTS)
    stream = make_requests(count, skewed=True)
    _, _, service = run_service(stream, optimize=True)
    extra = {
        "schema": "repro-bench/1",
        "benchmark": "optimizer",
        "quick": quick,
        "requests": count,
        "zipf_static_rps": float(by_run["zipf/static"][5]),
        "zipf_optimized_rps": float(by_run["zipf/optimized"][5]),
        "zipf_speedup": float(
            by_run["zipf/optimized"][5] / by_run["zipf/static"][5]
        ),
        "uniform_static_rps": float(by_run["uniform/static"][5]),
        "uniform_optimized_rps": float(by_run["uniform/optimized"][5]),
        "uniform_ratio": float(
            by_run["uniform/optimized"][5] / by_run["uniform/static"][5]
        ),
        "divergences": int(
            sum(row[9] for row in table.rows if row[9] > 0)
        ),
        "failures": int(sum(row[4] for row in table.rows)),
        "service_snapshot": service.snapshot(),
    }
    written = write_json_artifact(path, [table], extra=extra)
    return written, table


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Script entry point: print the table, write the JSON artifact."""
    parser = argparse.ArgumentParser(
        description="adaptive-optimizer acceptance benchmark"
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--output", default="BENCH_optimizer.json")
    parser.add_argument("--quick", action="store_true",
                        help="small request count for smoke testing")
    args = parser.parse_args(argv)
    written, table = write_artifact(
        args.output, requests=args.requests, quick=args.quick
    )
    print(table.render())
    print(f"\nwrote {written}")
    return 0


def test_optimizer_quick(benchmark):
    """Benchmark-harness entry: quick-size optimizer table."""
    table = benchmark.pedantic(
        lambda: optimizer_table(quick=True), rounds=1, iterations=1
    )
    table.emit()
    by_run = {f"{row[0]}/{row[1]}": row for row in table.rows}
    shape_check(
        all(row[9] == 0 for row in table.rows),
        EXPERIMENT,
        "optimized outputs must match the static reference exactly",
    )
    shape_check(
        all(row[4] == 0 for row in table.rows),
        EXPERIMENT,
        "no request may fail (zero PAD-overflow raises)",
    )
    shape_check(
        by_run["zipf/optimized"][5] > by_run["zipf/static"][5],
        EXPERIMENT,
        "optimizer must beat static dispatch under skew",
    )


if __name__ == "__main__":
    raise SystemExit(main())
