"""Extension — hash-family robustness matrix ([29], [18], Section 3.2).

Figure 3 compares radix bits against murmur; this extension widens the
comparison to the families a designer would actually weigh on an FPGA
(multiply-shift: two DSPs; tabulation: four BRAM lookups; murmur: five
pipeline stages) and scores each against every Section 3.2 key
distribution.  The paper's position — robust hashing costs nothing on
the FPGA, so take the robust one — holds for all three; only raw radix
bits fail.
"""

from repro.bench import ExperimentTable, shape_check
from repro.core.hash_quality import robust_families, robustness_report

EXPERIMENT = "Extension: hash robustness"


def robustness_table() -> ExperimentTable:
    matrix = robustness_report(num_keys=200_000, num_partitions=512)
    rows = []
    for family, cells in matrix.items():
        row = [family]
        for distribution in ("linear", "random", "grid", "reverse_grid"):
            report = cells[distribution].report
            row.append(
                f"{report.max_over_mean:.2f}"
                + ("" if report.is_balanced else " !")
            )
        row.append(
            "yes" if all(c.balanced for c in cells.values()) else "NO"
        )
        rows.append(row)
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="Partition balance (max/mean tuples; '!' = unbalanced) "
        "by hash family and key distribution",
        headers=[
            "family", "linear", "random", "grid", "rev. grid", "robust"
        ],
        rows=rows,
        note="512 partitions, 200k keys.  FPGA cost: radix ~0, "
        "multiply-shift ~2 DSP, tabulation ~4 BRAM, murmur ~5 stages "
        "x 2 DSP — all one tuple/cycle, so robustness is free (Sec 4.1).",
    )


def test_hash_robustness_matrix(benchmark):
    table = benchmark.pedantic(robustness_table, rounds=1, iterations=1)
    table.emit()

    verdicts = dict(zip(table.column("family"), table.column("robust")))
    shape_check(
        verdicts["radix"] == "NO",
        EXPERIMENT,
        "raw radix bits are not a robust partitioning function",
    )
    shape_check(
        all(
            verdicts[f] == "yes"
            for f in ("multiply_shift", "tabulation", "murmur")
        ),
        EXPERIMENT,
        "every real hash family is robust on all four distributions",
    )
    matrix = robustness_report(num_keys=50_000, num_partitions=256)
    shape_check(
        robust_families(matrix)["murmur"],
        EXPERIMENT,
        "robustness holds across fan-outs",
    )
