"""Figure 8 — throughput vs tuple width (HIST/RID mode).

Two series: end-to-end tuples/second (halves with each width doubling,
the partitioner is bandwidth bound) and total data processed in GB/s
(stays flat — the circuit moves cache lines at the same rate whatever
the tuple width).  The model-prediction markers of the figure come from
Equation 7; the cycle simulator corroborates the lines/cycle claim for
every width.
"""

import numpy as np

from repro.bench import ExperimentTable, shape_check
from repro.core.circuit import PartitionerCircuit
from repro.core.model import FpgaCostModel
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig

EXPERIMENT = "Figure 8"
WIDTHS = (8, 16, 32, 64)
PAPER_N = 128 * 10**6


def figure8_table() -> ExperimentTable:
    model = FpgaCostModel()
    rows = []
    for width in WIDTHS:
        config = PartitionerConfig(
            tuple_bytes=width,
            output_mode=OutputMode.HIST,
            layout_mode=LayoutMode.RID,
        )
        prediction = model.predict(config, PAPER_N)
        mtuples = prediction.mtuples_per_second
        total_gbs = (
            prediction.tuples_per_second
            * width
            * (prediction.read_write_ratio + 1)
            / 1e9
        )
        rows.append([f"{width}B", mtuples, total_gbs, prediction.bandwidth_gbs])
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="Throughput vs tuple width (HIST/RID)",
        headers=[
            "tuple",
            "Mtuples/s",
            "data processed GB/s",
            "B(r) GB/s",
        ],
        rows=rows,
        note="Tuples/s halves per width doubling; GB/s of data moved "
        "stays flat (bandwidth bound).",
    )


def test_figure8_model_series(benchmark):
    table = benchmark(figure8_table)
    table.emit()

    mtuples = [float(v) for v in table.column("Mtuples/s")]
    gbs = [float(v) for v in table.column("data processed GB/s")]
    for prev, curr in zip(mtuples, mtuples[1:]):
        shape_check(
            curr == prev / 2,
            EXPERIMENT,
            "tuples/s halves exactly with each width doubling",
        )
    shape_check(
        max(gbs) - min(gbs) < 0.01,
        EXPERIMENT,
        "total data processed per second is width-invariant",
    )
    shape_check(
        abs(mtuples[0] - 294) / 294 < 0.02,
        EXPERIMENT,
        "the 8 B point matches the HIST/RID rate (~294-299 Mtuples/s)",
    )


def test_figure8_circuit_lines_per_cycle(benchmark):
    """Cycle-level corroboration: for every width the streaming pass
    consumes ~one input line per cycle when unthrottled."""
    rng = np.random.default_rng(8)

    def run():
        ratios = {}
        for width in WIDTHS:
            config = PartitionerConfig(
                num_partitions=8,
                tuple_bytes=width,
                output_mode=OutputMode.PAD,
                pad_tuples=4096,
            )
            n = 2048 // (width // 8)
            keys = rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(
                np.uint32
            )
            sim = PartitionerCircuit(config).run(
                keys, np.arange(n, dtype=np.uint32)
            )
            streaming = (
                sim.stats.partition_pass_cycles - sim.stats.flush_cycles
            )
            ratios[width] = sim.stats.lines_in / streaming
        return ratios

    ratios = benchmark(run)
    for width, ratio in ratios.items():
        shape_check(
            ratio > 0.7,
            EXPERIMENT,
            f"{width}B config sustains near one line/cycle (got {ratio:.2f})",
        )
