"""Figure 10 — join time vs number of partitions (workload A).

Two panels: single-threaded (10a) and 10-threaded (10b) execution of
the CPU radix join and the hybrid join (FPGA PAD/RID partitioning).
Shape expectations:

* single-threaded CPU partitioning time grows with the fan-out; FPGA
  partitioning time is flat;
* build+probe time falls as partitions shrink into cache;
* build+probe after FPGA partitioning is always slower than after CPU
  partitioning (the Section 2.2 coherence penalty);
* at 10 threads the CPU partitioner is memory bound and flat too, and
  slightly faster than the FPGA.
"""

import pytest

from repro.workloads.relations import WORKLOAD_SPECS
from repro.bench import (
    ExperimentTable,
    monotonically_decreasing,
    shape_check,
)
from repro.core.modes import HashKind, OutputMode, PartitionerConfig
from repro.join.hybrid_join import hybrid_join
from repro.join.radix_join import cpu_radix_join

EXPERIMENT = "Figure 10"
PARTITION_SWEEP = (256, 512, 1024, 2048, 4096, 8192)


def figure10_table(workload, threads: int) -> ExperimentTable:
    spec = WORKLOAD_SPECS["A"]
    n_r, n_s = spec.r_tuples, spec.s_tuples
    rows = []
    for partitions in PARTITION_SWEEP:
        cpu = cpu_radix_join(
            workload,
            num_partitions=partitions,
            threads=threads,
            hash_kind=HashKind.RADIX,
            timing_r_tuples=n_r,
            timing_s_tuples=n_s,
        )
        hybrid = hybrid_join(
            workload,
            PartitionerConfig(
                num_partitions=partitions,
                output_mode=OutputMode.PAD,
                hash_kind=HashKind.RADIX,
            ),
            threads=threads,
            timing_r_tuples=n_r,
            timing_s_tuples=n_s,
        )
        rows.append(
            [
                partitions,
                cpu.timing.partition_seconds,
                cpu.timing.build_probe_seconds,
                cpu.timing.total_seconds,
                hybrid.timing.partition_seconds,
                hybrid.timing.build_probe_seconds,
                hybrid.timing.total_seconds,
            ]
        )
    return ExperimentTable(
        experiment_id=f"{EXPERIMENT}{'a' if threads == 1 else 'b'}",
        title=f"Join time vs #partitions, workload A, {threads} thread(s)",
        headers=[
            "partitions",
            "cpu part s",
            "cpu b+p s",
            "cpu total s",
            "fpga part s",
            "hyb b+p s",
            "hyb total s",
        ],
        rows=rows,
        note="Timing at the paper's 128e6+128e6 tuples; functional join "
        "runs on scaled data.",
    )


@pytest.mark.parametrize("threads", [1, 10])
def test_figure10_partition_sweep(benchmark, workload_a, threads):
    table = benchmark.pedantic(
        figure10_table, args=(workload_a, threads), rounds=1, iterations=1
    )
    table.emit()

    cpu_part = [float(v) for v in table.column("cpu part s")]
    fpga_part = [float(v) for v in table.column("fpga part s")]
    cpu_bp = [float(v) for v in table.column("cpu b+p s")]
    hybrid_bp = [float(v) for v in table.column("hyb b+p s")]

    shape_check(
        max(fpga_part) / min(fpga_part) < 1.01,
        EXPERIMENT,
        "FPGA partitioning time is flat across fan-outs",
    )
    shape_check(
        monotonically_decreasing(cpu_bp)
        and monotonically_decreasing(hybrid_bp),
        EXPERIMENT,
        "build+probe gets faster as partitions shrink into cache",
    )
    shape_check(
        all(h > c for h, c in zip(hybrid_bp, cpu_bp)),
        EXPERIMENT,
        "hybrid build+probe always pays the coherence penalty",
    )
    if threads == 1:
        shape_check(
            cpu_part[-1] > cpu_part[0],
            EXPERIMENT,
            "single-threaded CPU partitioning slows with fan-out (10a)",
        )
        shape_check(
            all(f < c for f, c in zip(fpga_part, cpu_part)),
            EXPERIMENT,
            "the FPGA beats one CPU thread at every fan-out",
        )
    else:
        shape_check(
            max(cpu_part) / min(cpu_part) < 1.01,
            EXPERIMENT,
            "10-thread CPU partitioning is memory bound and flat (10b)",
        )
        shape_check(
            cpu_part[-1] < fpga_part[-1],
            EXPERIMENT,
            "the 10-thread CPU partitioner is slightly faster than the "
            "FPGA (PAD/RID) on this platform",
        )
