"""Table 2 — FPGA resource usage by tuple-width configuration.

Compares the structural resource model against the published
utilisation percentages and checks the table's signature shapes:
BRAM/logic fall with wider tuples while DSP usage *peaks* at 16 B
(8 B keys need wider multipliers).
"""

from repro.bench import ExperimentTable, relative_error, shape_check
from repro.core.modes import PartitionerConfig
from repro.core.resources import TABLE2_PUBLISHED, estimate_resources

EXPERIMENT = "Table 2"


def table2() -> ExperimentTable:
    rows = []
    for width in sorted(TABLE2_PUBLISHED):
        estimate = estimate_resources(
            PartitionerConfig(num_partitions=8192, tuple_bytes=width)
        )
        published = TABLE2_PUBLISHED[width]
        rows.append(
            [
                f"{width}B",
                estimate.logic_percent,
                published["logic"],
                estimate.bram_percent,
                published["bram"],
                estimate.dsp_percent,
                published["dsp"],
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="Resource usage by tuple width (model vs published, %)",
        headers=[
            "tuple",
            "logic",
            "logic(paper)",
            "bram",
            "bram(paper)",
            "dsp",
            "dsp(paper)",
        ],
        rows=rows,
        note="Structural model: slot BRAM = (64/W)^2 x P x W bytes; "
        "DSPs = hash multipliers + combiner address units.",
    )


def test_table2_resource_model(benchmark):
    table = benchmark(table2)
    table.emit()

    for row in table.rows:
        width = row[0]
        for model_idx, paper_idx in ((1, 2), (3, 4), (5, 6)):
            err = abs(float(row[model_idx]) - float(row[paper_idx]))
            shape_check(
                err <= 3.0,
                EXPERIMENT,
                f"{width} column {model_idx} within 3 points of Table 2",
            )

    dsp = [float(r[5]) for r in table.rows]
    shape_check(
        dsp[1] == max(dsp),
        EXPERIMENT,
        "DSP usage peaks at 16 B tuples (the paper's callout)",
    )
    bram = [float(r[3]) for r in table.rows]
    shape_check(
        bram == sorted(bram, reverse=True),
        EXPERIMENT,
        "BRAM usage falls monotonically with tuple width",
    )
