"""Ablation — multi-pass (Manegold) vs single-pass SWWC partitioning.

Section 3.1 recounts the history: Manegold et al. bounded the per-pass
fan-out with multiple passes to tame TLB misses; software-managed
write-combine buffers later made a single full-fan-out pass faster.
This benchmark shows the trade the SWWC technique wins: multi-pass
moves the whole relation once per pass (2-3x the bytes), which is why
single-pass-with-buffers is the baseline the paper compares against.
"""

import numpy as np

from repro.bench import ExperimentTable, shape_check
from repro.core.modes import HashKind
from repro.cpu.partitioner import CpuPartitioner
from repro.workloads.distributions import random_keys

EXPERIMENT = "Ablation: multi-pass radix"
N = 262_144
NUM_PARTITIONS = 4096


def ablation_table() -> ExperimentTable:
    keys = random_keys(N, seed=6)
    payloads = np.arange(N, dtype=np.uint32)
    partitioner = CpuPartitioner(
        num_partitions=NUM_PARTITIONS, hash_kind=HashKind.RADIX
    )
    single = partitioner.partition(keys, payloads)
    rows = [
        [
            "single pass (SWWC)",
            1,
            NUM_PARTITIONS,
            (single.bytes_read + single.bytes_written) / 1e6,
        ]
    ]
    for passes in (2, 3):
        _, _, counts, bytes_moved = partitioner.multipass_radix(
            keys, payloads, passes=passes
        )
        assert np.array_equal(counts, single.counts)
        per_pass_fanout = round(NUM_PARTITIONS ** (1 / passes))
        rows.append(
            [
                f"{passes} passes (Manegold)",
                passes,
                per_pass_fanout,
                bytes_moved / 1e6,
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=f"Bytes moved to produce {NUM_PARTITIONS} partitions of "
        f"{N} tuples",
        headers=["strategy", "passes", "fan-out/pass", "bytes moved MB"],
        rows=rows,
        note="All strategies produce identical partitions (asserted); "
        "multi-pass pays a full extra scan+write per pass.",
    )


def test_multipass_traffic(benchmark):
    table = benchmark.pedantic(ablation_table, rounds=1, iterations=1)
    table.emit()

    bytes_moved = [float(row[3]) for row in table.rows]
    shape_check(
        bytes_moved[0] < bytes_moved[1] < bytes_moved[2],
        EXPERIMENT,
        "every extra pass moves more bytes",
    )
    shape_check(
        bytes_moved[1] / bytes_moved[0] < 2.1,
        EXPERIMENT,
        "two passes roughly double the shuffle traffic",
    )
