"""Figure 13 — join performance under Zipf skew (10 threads).

The probe relation S of workload A is skewed with Zipf factors 0.25 to
1.75.  PAD mode overflows at these factors (Section 5.4), so the FPGA
runs in HIST/RID mode; the CPU join uses its histogram-based radix
partitioning as usual.  Shape expectations:

* the HIST/RID FPGA partitioner is *slower* than the 10-thread CPU —
  the one regime the bandwidth-starved prototype loses (the paper
  notes an unconstrained FPGA would win by ~1.56x);
* PAD mode genuinely overflows at factor >= 0.5 and falls back;
* partitioning times are flat in the skew factor (both methods place
  by hash; only build+probe inherits the imbalance).
"""

from repro.bench import ExperimentTable, shape_check
from repro.core.model import FpgaCostModel
from repro.core.modes import OutputMode, PartitionerConfig
from repro.errors import PartitionOverflowError
from repro.core.partitioner import FpgaPartitioner
from repro.join.hybrid_join import hybrid_join
from repro.join.radix_join import cpu_radix_join
from repro.platform.machine import XeonFpgaPlatform
from repro.workloads.relations import WORKLOAD_SPECS, make_workload

EXPERIMENT = "Figure 13"
ZIPF_FACTORS = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75)
SCALE = 20000
THREADS = 10


def figure13_table() -> ExperimentTable:
    spec = WORKLOAD_SPECS["A"]
    n_r, n_s = spec.r_tuples, spec.s_tuples
    rows = []
    for zipf in ZIPF_FACTORS:
        workload = make_workload("A", scale=SCALE, skew_s_zipf=zipf)
        cpu = cpu_radix_join(
            workload,
            num_partitions=8192,
            threads=THREADS,
            timing_r_tuples=n_r,
            timing_s_tuples=n_s,
        )
        fpga = hybrid_join(
            workload,
            PartitionerConfig(
                num_partitions=8192, output_mode=OutputMode.HIST
            ),
            threads=THREADS,
            timing_r_tuples=n_r,
            timing_s_tuples=n_s,
        )
        rows.append(
            [
                zipf,
                cpu.timing.partition_seconds,
                cpu.timing.build_probe_seconds,
                fpga.timing.partition_seconds,
                fpga.timing.build_probe_seconds,
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="Join on workload A with Zipf-skewed S, 10 threads, "
        "FPGA in HIST/RID",
        headers=[
            "zipf",
            "cpu part s",
            "cpu b+p s",
            "fpga HIST part s",
            "hyb b+p s",
        ],
        rows=rows,
        note="HIST/RID pays two passes; the paper notes an unconstrained "
        "FPGA (no QPI limit) would instead be ~1.56x faster than the "
        "10-core Xeon.",
    )


def test_figure13_skew_sweep(benchmark):
    table = benchmark.pedantic(figure13_table, rounds=1, iterations=1)
    table.emit()

    cpu_part = [float(v) for v in table.column("cpu part s")]
    fpga_part = [float(v) for v in table.column("fpga HIST part s")]

    shape_check(
        all(f > c for f, c in zip(fpga_part, cpu_part)),
        EXPERIMENT,
        "HIST/RID (two passes over QPI) is slower than the 10-thread CPU",
    )
    shape_check(
        max(fpga_part) / min(fpga_part) < 1.01
        and max(cpu_part) / min(cpu_part) < 1.01,
        EXPERIMENT,
        "partitioning time is flat in the skew factor",
    )


def test_figure13_pad_overflow_boundary(benchmark):
    """Section 5.4: 'the PAD mode fails for realistic padding sizes'
    above ~0.25 Zipf; HIST handles any factor."""

    def run():
        outcomes = {}
        for zipf in (0.0, 1.0, 1.75):
            workload = make_workload("A", scale=SCALE, skew_s_zipf=zipf)
            config = PartitionerConfig(
                num_partitions=64, output_mode=OutputMode.PAD, pad_tuples=32
            )
            try:
                FpgaPartitioner(config).partition(workload.s)
                outcomes[zipf] = "ok"
            except PartitionOverflowError:
                outcomes[zipf] = "overflow"
        return outcomes

    outcomes = benchmark(run)
    shape_check(
        outcomes[0.0] == "ok",
        EXPERIMENT,
        "unskewed input fits the padded regions",
    )
    shape_check(
        outcomes[1.0] == "overflow" and outcomes[1.75] == "overflow",
        EXPERIMENT,
        "heavy skew overflows PAD mode",
    )


def test_figure13_unconstrained_fpga_would_win(benchmark):
    """The paper's closing argument on Figure 13: with the raw-wrapper
    bandwidth, HIST partitioning would take ~0.32 s — 1.56x faster
    than the 10-core Xeon."""

    def run():
        spec = WORKLOAD_SPECS["A"]
        n = spec.r_tuples + spec.s_tuples
        raw = FpgaCostModel(bandwidth=XeonFpgaPlatform.raw_wrapper().bandwidth)
        config = PartitionerConfig(output_mode=OutputMode.HIST)
        fpga_seconds = raw.partitioning_seconds(n, config)
        from repro.cpu.cost_model import CpuCostModel

        cpu_seconds = CpuCostModel().partitioning_seconds(n, THREADS)
        return fpga_seconds, cpu_seconds

    fpga_seconds, cpu_seconds = benchmark(run)
    shape_check(
        abs(fpga_seconds - 0.32) < 0.02,
        EXPERIMENT,
        f"unconstrained HIST partitioning ~0.32 s (got {fpga_seconds:.3f})",
    )
    shape_check(
        1.3 < cpu_seconds / fpga_seconds < 1.8,
        EXPERIMENT,
        "~1.56x faster than the 10-core Xeon",
    )
