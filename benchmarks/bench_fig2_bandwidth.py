"""Figure 2 — memory bandwidth vs sequential-read / random-write mix.

Regenerates the four curves (CPU/FPGA, alone/interfered) across the
mix axis and checks their shape: the CPU curve starts near 28 GB/s and
decays steeply as random writes take over; the FPGA curve is nearly
flat around 6.5-7 GB/s; interference costs both agents a large share;
and the CPU keeps >= 3x the FPGA's bandwidth on read-heavy mixes.
"""

from repro.bench import (
    ExperimentTable,
    monotonically_decreasing,
    shape_check,
)
from repro.platform.bandwidth import Agent, BandwidthModel

EXPERIMENT = "Figure 2"


def figure2_table(steps: int = 11) -> ExperimentTable:
    model = BandwidthModel()
    rows = []
    for i in range(steps):
        frac = 1.0 - i / (steps - 1)
        rows.append(
            [
                f"{frac:.1f}/{1 - frac:.1f}",
                model.bandwidth_gbs(Agent.CPU, frac),
                model.bandwidth_gbs(Agent.FPGA, frac),
                model.bandwidth_gbs(Agent.CPU, frac, interfered=True),
                model.bandwidth_gbs(Agent.FPGA, frac, interfered=True),
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="Memory throughput (GB/s) vs seq-read/rand-write ratio",
        headers=[
            "read/write",
            "CPU alone",
            "FPGA alone",
            "CPU interfered",
            "FPGA interfered",
        ],
        rows=rows,
        note="FPGA curve anchored to Section 4.8: B(2)=7.05, B(1)=6.97, "
        "B(0.5)=5.94 GB/s.",
    )


def test_figure2_bandwidth_curves(benchmark):
    table = benchmark(figure2_table)
    table.emit()

    cpu = [float(v) for v in table.column("CPU alone")]
    fpga = [float(v) for v in table.column("FPGA alone")]
    cpu_interfered = [float(v) for v in table.column("CPU interfered")]
    fpga_interfered = [float(v) for v in table.column("FPGA interfered")]

    shape_check(
        monotonically_decreasing(cpu),
        EXPERIMENT,
        "CPU bandwidth must fall as random writes take over",
    )
    shape_check(
        cpu[0] > 25 and cpu[-1] < 10,
        EXPERIMENT,
        "CPU spans ~28 GB/s (pure read) down to <10 GB/s (pure write)",
    )
    shape_check(
        max(fpga) - min(fpga) < 2.5,
        EXPERIMENT,
        "FPGA curve is comparatively flat (QPI-limited)",
    )
    shape_check(
        all(c > f for c, f in zip(cpu, fpga)),
        EXPERIMENT,
        "the CPU out-bandwidths the FPGA at every mix",
    )
    shape_check(
        cpu[0] / fpga[0] > 3.0,
        EXPERIMENT,
        "the paper's '3x less memory bandwidth' for the FPGA",
    )
    shape_check(
        all(i < a for i, a in zip(cpu_interfered, cpu))
        and all(i < a for i, a in zip(fpga_interfered, fpga)),
        EXPERIMENT,
        "interference lowers both agents' bandwidth",
    )
