"""Figure 9 — partitioning throughput of the four FPGA modes.

Regenerates the full bar chart: related work ([27] on 32 cores, [37]'s
FPGA partitioner), the four Xeon+FPGA end-to-end modes, the 10-thread
CPU baseline, and the raw (25.6 GB/s wrapper) FPGA numbers — model
predictions side by side with the paper's measurements.

Shape expectations: HIST/RID < HIST/VRID < PAD/RID < PAD/VRID; the
best end-to-end FPGA mode edges out the 10-thread CPU; raw PAD hits
~1.6 Gtuples/s (45% above [27]'s 1.1 Gtuples/s) and every mode beats
[37]'s 256 Mtuples/s.
"""

from repro.bench import ExperimentTable, shape_check
from repro.constants import FIGURE9_MEASURED_MTUPLES
from repro.core.model import FpgaCostModel
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.cpu.cost_model import CpuCostModel
from repro.platform.machine import XeonFpgaPlatform

EXPERIMENT = "Figure 9"
PAPER_N = 128 * 10**6

MODE_CONFIGS = {
    "HIST/RID": (OutputMode.HIST, LayoutMode.RID),
    "HIST/VRID": (OutputMode.HIST, LayoutMode.VRID),
    "PAD/RID": (OutputMode.PAD, LayoutMode.RID),
    "PAD/VRID": (OutputMode.PAD, LayoutMode.VRID),
}


def figure9_table() -> ExperimentTable:
    model = FpgaCostModel()
    raw_model = FpgaCostModel(
        bandwidth=XeonFpgaPlatform.raw_wrapper().bandwidth
    )
    cpu_model = CpuCostModel()
    rows = [
        [
            "[27] CPU 32 cores",
            "-",
            FIGURE9_MEASURED_MTUPLES["polychroniou_32cores"],
        ],
        ["[37] FPGA", "-", FIGURE9_MEASURED_MTUPLES["wang_fpga"]],
    ]
    for label, (output_mode, layout_mode) in MODE_CONFIGS.items():
        config = PartitionerConfig(
            output_mode=output_mode, layout_mode=layout_mode
        )
        rows.append(
            [
                label,
                model.end_to_end_mtuples(config, PAPER_N),
                FIGURE9_MEASURED_MTUPLES[label],
            ]
        )
    rows.append(
        [
            "CPU (10 cores)",
            cpu_model.throughput_mtuples(10, "murmur"),
            FIGURE9_MEASURED_MTUPLES["cpu_10threads"],
        ]
    )
    rows.append(
        [
            "Raw FPGA (HIST)",
            raw_model.end_to_end_mtuples(
                PartitionerConfig(output_mode=OutputMode.HIST), PAPER_N
            ),
            FIGURE9_MEASURED_MTUPLES["raw_fpga_hist"],
        ]
    )
    rows.append(
        [
            "Raw FPGA (PAD)",
            raw_model.end_to_end_mtuples(
                PartitionerConfig(output_mode=OutputMode.PAD), PAPER_N
            ),
            FIGURE9_MEASURED_MTUPLES["raw_fpga_pad"],
        ]
    )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="Partitioning throughput, 8 B tuples, 8192 partitions "
        "(Mtuples/s)",
        headers=["configuration", "model", "paper"],
        rows=rows,
        note="'model' is Equation 7 over the Figure 2 bandwidth; "
        "'paper' the published measurement.",
    )


def test_figure9_mode_ladder(benchmark):
    table = benchmark(figure9_table)
    table.emit()

    model = {
        row[0]: float(row[1]) for row in table.rows if row[1] != "-"
    }
    paper = {row[0]: float(row[2]) for row in table.rows}

    shape_check(
        model["HIST/RID"]
        < model["HIST/VRID"]
        <= model["PAD/RID"]
        < model["PAD/VRID"],
        EXPERIMENT,
        "the mode ladder HIST/RID < HIST/VRID <= PAD/RID < PAD/VRID",
    )
    shape_check(
        model["PAD/VRID"] > 0.95 * model["CPU (10 cores)"],
        EXPERIMENT,
        "the best FPGA mode matches the 10-thread CPU",
    )
    for label in MODE_CONFIGS:
        err = abs(model[label] - paper[label]) / paper[label]
        shape_check(
            err < 0.12,
            EXPERIMENT,
            f"{label} model within ~10% of measurement (Section 4.8)",
        )
    shape_check(
        model["Raw FPGA (PAD)"] > 1.4 * paper["[27] CPU 32 cores"],
        EXPERIMENT,
        "raw PAD beats the 32-core CPU by ~45%",
    )
    shape_check(
        all(model[label] > paper["[37] FPGA"] for label in MODE_CONFIGS),
        EXPERIMENT,
        "every end-to-end mode beats the prior best FPGA partitioner",
    )
    shape_check(
        abs(model["Raw FPGA (PAD)"] / paper["[37] FPGA"] / 6.2) > 0.9,
        EXPERIMENT,
        "raw improvement over [37] is large (paper quotes 1.7x vs "
        "their platform-equivalent; 6x+ raw)",
    )
