"""Figure 3 — tuple distribution across 8192 partitions as a CDF.

Partitions each Section 3.2 key distribution with radix bits (3a) and
murmur hashing (3b) and summarises the partition-size CDFs.  Shape
expectations: hash partitioning is balanced for every distribution;
radix partitioning collapses on the grid-family keys (most partitions
empty, a few holding the whole relation).
"""

import numpy as np

from repro.analysis.balance import balance_report
from repro.analysis.histogram import partition_cdf, partition_histogram
from repro.bench import ExperimentTable, shape_check
from repro.workloads.distributions import generate_keys

EXPERIMENT = "Figure 3"

NUM_PARTITIONS = 8192
NUM_KEYS = 2_000_000  # scaled from the paper's 128e6; CDFs are stable
DISTRIBUTIONS = ("linear", "random", "grid", "reverse_grid")


def figure3_table(use_hash: bool) -> ExperimentTable:
    rows = []
    for name in DISTRIBUTIONS:
        keys = generate_keys(name, NUM_KEYS, seed=11)
        counts = partition_histogram(keys, NUM_PARTITIONS, use_hash=use_hash)
        report = balance_report(counts)
        sizes, cumulative = partition_cdf(counts)
        median_size = int(np.median(counts))
        rows.append(
            [
                name,
                report.empty_partitions,
                median_size,
                report.max_tuples,
                report.max_over_mean,
                "yes" if report.is_balanced else "no",
            ]
        )
    label = "hash (murmur)" if use_hash else "radix"
    return ExperimentTable(
        experiment_id=EXPERIMENT + ("b" if use_hash else "a"),
        title=f"Partition-size distribution, {label} partitioning, "
        f"{NUM_PARTITIONS} partitions",
        headers=[
            "distribution",
            "empty parts",
            "median size",
            "max size",
            "max/mean",
            "balanced",
        ],
        rows=rows,
        note="CDF summarised as empty/median/max; fair share is "
        f"{NUM_KEYS // NUM_PARTITIONS} tuples/partition.",
    )


def test_figure3a_radix_partitioning(benchmark):
    table = benchmark(figure3_table, use_hash=False)
    table.emit()
    balanced = dict(zip(table.column("distribution"), table.column("balanced")))
    shape_check(
        balanced["linear"] == "yes",
        EXPERIMENT,
        "radix is fine on linear keys",
    )
    shape_check(
        balanced["grid"] == "no" and balanced["reverse_grid"] == "no",
        EXPERIMENT,
        "radix collapses on grid-family keys (Figure 3a)",
    )
    empties = dict(
        zip(table.column("distribution"), table.column("empty parts"))
    )
    shape_check(
        empties["reverse_grid"] > 0.9 * NUM_PARTITIONS,
        EXPERIMENT,
        "reverse grid leaves almost every radix partition empty",
    )


def test_figure3b_hash_partitioning(benchmark):
    table = benchmark(figure3_table, use_hash=True)
    table.emit()
    shape_check(
        all(v == "yes" for v in table.column("balanced")),
        EXPERIMENT,
        "hash partitioning is balanced for every distribution (Figure 3b)",
    )
    shape_check(
        all(float(v) < 1.5 for v in table.column("max/mean")),
        EXPERIMENT,
        "no hash partition exceeds 1.5x the fair share",
    )
