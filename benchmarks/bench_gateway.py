"""Streaming-gateway benchmark — socket overhead, latency, open loop.

Three questions about :class:`~repro.gateway.server.GatewayServer`:

1. **Socket overhead** — what does the TCP edge cost versus the same
   chunked work submitted to the :class:`PartitionService` in-process?
   Both sides run identical data planes (same chunking, same per-chunk
   configs, same credit-window pipelining depth); the delta is exactly
   the framing + asyncio + loopback-TCP tax.  The acceptance
   criterion: at the protocol's native 8192-tuple chunks (64 KiB of
   uint32 keys) with >= 4 concurrent streams, the gateway keeps at
   least 75% of the direct throughput (overhead <= 25%).
2. **Closed-loop latency** — per-chunk round-trip percentiles
   (p50/p95/p99) over a credit window of one, the send-wait-send
   pattern an interactive caller sees.
3. **Open-loop sustained rate** — chunks fired at scheduled instants
   from :mod:`repro.workloads.arrivals` (Poisson and burst shapes)
   regardless of how the last send fared, so credit stalls and
   admission backpressure show up as lateness instead of being hidden
   by the closed loop.

Every streamed output is verified byte-identical
(:func:`~repro.gateway.chunking.outputs_identical`) to one offline
:meth:`~repro.core.partitioner.FpgaPartitioner.partition` call —
throughput with divergence would not count.

Run as a script to write the standard JSON artifact::

    PYTHONPATH=src python benchmarks/bench_gateway.py \
        --output BENCH_gateway.json
"""

import argparse
import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.bench import ExperimentTable, write_json_artifact
from repro.core.modes import PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.gateway import (
    GatewayClient,
    GatewayServer,
    StreamAccounting,
    chunk_config,
    global_payloads,
    iter_chunks,
    outputs_identical,
    stitch_output,
    stream_partition,
)
from repro.service import PartitionRequest, PartitionService, RequestStatus
from repro.workloads.arrivals import generate_arrivals
from repro.workloads.relations import make_relation

EXPERIMENT = "Streaming gateway"

#: 8192 uint32 keys = 64 KiB per DATA frame — the protocol's native size
CHUNK_TUPLES = 8192
#: the in-run acceptance budget for the socket tax
OVERHEAD_BUDGET_PCT = 25.0
DEFAULT_STREAMS = 4
DEFAULT_TUPLES = 262_144  # 32 chunks per stream
DEFAULT_PARTITIONS = 64
DEFAULT_CREDITS = 4
ZIPF_FACTOR = 1.1
RESULT_TIMEOUT_S = 120.0


def _workload(distribution: str, tuples: int, seed: int) -> np.ndarray:
    if distribution == "zipf":
        return make_relation(
            tuples, "zipf", seed=seed, zipf_factor=ZIPF_FACTOR
        ).keys
    return make_relation(tuples, distribution, seed=seed).keys


def _direct_chunked(
    service: PartitionService,
    keys: np.ndarray,
    config: PartitionerConfig,
    chunk_tuples: int,
    credits: int,
):
    """The gateway's data plane minus the socket: chunk the relation,
    submit each chunk under the stream's HIST/RID clone with explicit
    global positions, keep at most ``credits`` chunks in flight (the
    same pipelining depth the credit window allows), stitch at the end.
    """
    accounting = StreamAccounting(config, on_overflow="hist")
    data_config = chunk_config(config)
    pieces = []
    pending = deque()

    def _resolve(ticket):
        response = ticket.result(timeout=RESULT_TIMEOUT_S)
        assert response.status is RequestStatus.OK, response.status
        out = response.output
        pieces.append(
            (
                out.counts,
                np.concatenate(out.partition_keys),
                np.concatenate(out.partition_payloads),
            )
        )

    for chunk_keys, _ in iter_chunks(keys, None, chunk_tuples):
        if len(pending) >= credits:
            _resolve(pending.popleft())
        offset = accounting.observe(chunk_keys)
        pending.append(
            service.submit(
                PartitionRequest(
                    relation=chunk_keys,
                    payloads=global_payloads(None, offset, len(chunk_keys)),
                    config=data_config,
                )
            )
        )
    while pending:
        _resolve(pending.popleft())
    return stitch_output(accounting.finalize(), pieces, produced_by="direct")


def _measure_direct(relations, config, chunk_tuples, credits):
    with PartitionService(max_queue_requests=2048) as service:
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(relations)) as pool:
            outputs = list(
                pool.map(
                    lambda keys: _direct_chunked(
                        service, keys, config, chunk_tuples, credits
                    ),
                    relations,
                )
            )
        elapsed = time.perf_counter() - start
    return outputs, elapsed


async def _measure_gateway(relations, config, chunk_tuples, credits):
    service = PartitionService(max_queue_requests=2048)
    service.start()
    server = GatewayServer(
        service=service,
        chunk_tuples=chunk_tuples,
        credits=credits,
        drain_backend=True,
    )
    await server.start()
    try:
        start = time.perf_counter()
        outputs = await asyncio.gather(
            *[
                stream_partition(
                    "127.0.0.1",
                    server.port,
                    keys,
                    config=config,
                    chunk_tuples=chunk_tuples,
                )
                for keys in relations
            ]
        )
        elapsed = time.perf_counter() - start
    finally:
        await server.drain()
    return outputs, elapsed


def overhead_cell(
    distribution: str,
    streams: int,
    tuples: int,
    partitions: int,
    chunk_tuples: int,
    credits: int,
    repeats: int,
) -> dict:
    """Direct-vs-gateway throughput at equal chunking and pipelining."""
    config = PartitionerConfig(num_partitions=partitions)
    relations = [
        _workload(distribution, tuples, seed=100 + i) for i in range(streams)
    ]
    offline = [FpgaPartitioner(config).partition(keys) for keys in relations]

    direct_s = gateway_s = float("inf")
    verified = True
    for _ in range(repeats):
        direct_outs, elapsed = _measure_direct(
            relations, config, chunk_tuples, credits
        )
        direct_s = min(direct_s, elapsed)
        gateway_outs, elapsed = asyncio.run(
            _measure_gateway(relations, config, chunk_tuples, credits)
        )
        gateway_s = min(gateway_s, elapsed)
        verified = verified and all(
            outputs_identical(out, ref)
            for out, ref in zip(direct_outs, offline)
        ) and all(
            outputs_identical(out, ref)
            for out, ref in zip(gateway_outs, offline)
        )

    total = streams * tuples
    direct_mtps = total / direct_s / 1e6
    gateway_mtps = total / gateway_s / 1e6
    overhead_pct = (direct_mtps - gateway_mtps) / direct_mtps * 100.0
    return {
        "cell": "overhead",
        "distribution": distribution,
        "streams": streams,
        "tuples_per_stream": tuples,
        "chunk_tuples": chunk_tuples,
        "direct_mtuples_per_s": direct_mtps,
        "gateway_mtuples_per_s": gateway_mtps,
        "overhead_pct": overhead_pct,
        "within_budget": bool(overhead_pct <= OVERHEAD_BUDGET_PCT),
        "verified": bool(verified),
    }


async def _closed_loop(config, chunks, chunk_tuples):
    service = PartitionService(max_queue_requests=256)
    service.start()
    # a credit window of one serialises the stream: send N+1 cannot
    # leave the client before chunk N's CHUNK frame lands, so the gap
    # between consecutive sends IS the per-chunk round trip
    server = GatewayServer(
        service=service,
        chunk_tuples=chunk_tuples,
        credits=1,
        drain_backend=True,
    )
    await server.start()
    try:
        keys = _workload("random", chunks * chunk_tuples, seed=7)
        reference = FpgaPartitioner(config).partition(keys)
        client = await GatewayClient.connect("127.0.0.1", server.port)
        stamps = []
        start = time.perf_counter()
        stream = await client.open_stream(config)
        for chunk_keys, chunk_pays in iter_chunks(keys, None, chunk_tuples):
            await stream.send(chunk_keys, chunk_pays)
            stamps.append(time.perf_counter())
        output = await stream.finish()
        elapsed = time.perf_counter() - start
        await client.close()
    finally:
        await server.drain()
    gaps_ms = np.diff(np.asarray(stamps)) * 1e3
    return {
        "cell": "closed_loop_latency",
        "pattern": None,
        "streams": 1,
        "chunks": chunks,
        "chunk_tuples": chunk_tuples,
        "mtuples_per_s": chunks * chunk_tuples / elapsed / 1e6,
        "p50_ms": float(np.percentile(gaps_ms, 50)),
        "p95_ms": float(np.percentile(gaps_ms, 95)),
        "p99_ms": float(np.percentile(gaps_ms, 99)),
        "stalls": len(stream.stalls),
        "verified": bool(outputs_identical(output, reference)),
    }


async def _open_loop(pattern, config, streams, chunks, rate, chunk_tuples):
    """Fire chunks at their scheduled arrival instants (per stream)."""
    service = PartitionService(max_queue_requests=2048)
    service.start()
    server = GatewayServer(
        service=service,
        chunk_tuples=chunk_tuples,
        credits=DEFAULT_CREDITS,
        drain_backend=True,
    )
    await server.start()

    async def drive(index: int):
        keys = _workload("zipf", chunks * chunk_tuples, seed=200 + index)
        reference = FpgaPartitioner(config).partition(keys)
        offsets = generate_arrivals(pattern, chunks, rate, seed=300 + index)
        client = await GatewayClient.connect("127.0.0.1", server.port)
        stream = await client.open_stream(config)
        loop = asyncio.get_running_loop()
        epoch = loop.time()
        max_late = 0.0
        for (chunk_keys, chunk_pays), when in zip(
            iter_chunks(keys, None, chunk_tuples), offsets
        ):
            delay = epoch + when - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            else:
                max_late = max(max_late, -delay)
            await stream.send(chunk_keys, chunk_pays)
        output = await stream.finish()
        stalls = len(stream.stalls)
        await client.close()
        return outputs_identical(output, reference), max_late, stalls

    try:
        start = time.perf_counter()
        results = await asyncio.gather(*[drive(i) for i in range(streams)])
        elapsed = time.perf_counter() - start
    finally:
        await server.drain()
    total = streams * chunks * chunk_tuples
    return {
        "cell": "open_loop",
        "pattern": pattern,
        "streams": streams,
        "chunks": chunks,
        "chunk_tuples": chunk_tuples,
        "offered_mtuples_per_s": streams * rate * chunk_tuples / 1e6,
        "mtuples_per_s": total / elapsed / 1e6,
        "max_lateness_ms": max(r[1] for r in results) * 1e3,
        "stalls": sum(r[2] for r in results),
        "verified": bool(all(r[0] for r in results)),
    }


def gateway_sweep(
    streams: int = DEFAULT_STREAMS,
    tuples: int = DEFAULT_TUPLES,
    partitions: int = DEFAULT_PARTITIONS,
    chunk_tuples: int = CHUNK_TUPLES,
    credits: int = DEFAULT_CREDITS,
    repeats: int = 2,
    rate: float = 64.0,
) -> List[dict]:
    chunks = max(4, tuples // chunk_tuples // 4)
    cells = [
        overhead_cell(
            distribution, streams, tuples, partitions,
            chunk_tuples, credits, repeats,
        )
        for distribution in ("random", "zipf")
    ]
    cells.append(asyncio.run(_closed_loop(
        PartitionerConfig(num_partitions=partitions), chunks * 2,
        chunk_tuples,
    )))
    for pattern in ("poisson", "burst"):
        cells.append(asyncio.run(_open_loop(
            pattern, PartitionerConfig(num_partitions=partitions),
            streams, chunks, rate, chunk_tuples,
        )))
    return cells


def gateway_tables(cells: List[dict]) -> List[ExperimentTable]:
    overhead_rows = [
        [
            cell["distribution"],
            cell["streams"],
            cell["chunk_tuples"],
            cell["direct_mtuples_per_s"],
            cell["gateway_mtuples_per_s"],
            cell["overhead_pct"],
            "yes" if cell["verified"] else "NO",
        ]
        for cell in cells
        if cell["cell"] == "overhead"
    ]
    overhead = ExperimentTable(
        experiment_id=EXPERIMENT,
        title=(
            "socket tax: gateway streaming vs direct chunked service "
            "submission at equal pipelining depth (every output "
            "verified byte-identical to one offline partition() call)"
        ),
        headers=[
            "keys", "streams", "chunk", "direct Mt/s", "gateway Mt/s",
            "overhead %", "identical",
        ],
        rows=overhead_rows,
        note=(
            f"acceptance: overhead <= {OVERHEAD_BUDGET_PCT:.0f}% at "
            f"{CHUNK_TUPLES}-tuple (64 KiB) chunks with >= "
            f"{DEFAULT_STREAMS} concurrent streams"
        ),
    )
    behaviour_rows = []
    for cell in cells:
        if cell["cell"] == "closed_loop_latency":
            behaviour_rows.append([
                "closed loop", "-", cell["streams"],
                cell["mtuples_per_s"], cell["p50_ms"], cell["p95_ms"],
                cell["p99_ms"], cell["stalls"],
                "yes" if cell["verified"] else "NO",
            ])
        elif cell["cell"] == "open_loop":
            behaviour_rows.append([
                "open loop", cell["pattern"], cell["streams"],
                cell["mtuples_per_s"], "-", "-", "-", cell["stalls"],
                "yes" if cell["verified"] else "NO",
            ])
    behaviour = ExperimentTable(
        experiment_id=EXPERIMENT,
        title=(
            "per-chunk latency (credit window 1) and open-loop "
            "sustained rate under scheduled arrivals"
        ),
        headers=[
            "loop", "arrivals", "streams", "Mt/s", "p50 ms", "p95 ms",
            "p99 ms", "stalls", "identical",
        ],
        rows=behaviour_rows,
    )
    return [overhead, behaviour]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write the JSON artifact here")
    parser.add_argument("--streams", type=int, default=DEFAULT_STREAMS)
    parser.add_argument("--tuples", type=int, default=DEFAULT_TUPLES)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--quick", action="store_true",
                        help="smaller streams, one repeat")
    args = parser.parse_args(argv)

    tuples = 65_536 if args.quick else args.tuples
    repeats = 1 if args.quick else args.repeats
    cells = gateway_sweep(
        streams=args.streams, tuples=tuples, repeats=repeats
    )
    tables = gateway_tables(cells)
    for table in tables:
        print(table.render())
        print()

    worst = max(
        cell["overhead_pct"] for cell in cells if cell["cell"] == "overhead"
    )
    within = all(
        cell["within_budget"] for cell in cells if cell["cell"] == "overhead"
    )
    verified = all(cell["verified"] for cell in cells)
    print(
        f"worst socket overhead {worst:.1f}% "
        f"(budget {OVERHEAD_BUDGET_PCT:.0f}%): "
        + ("within budget" if within else "OVER BUDGET — check")
    )
    print(
        "all outputs byte-identical to offline partition()"
        if verified
        else "IDENTITY FAILURE — check"
    )

    if args.output:
        write_json_artifact(
            args.output,
            tables,
            extra={
                "benchmark": "gateway",
                "schema": "repro-bench/1",
                "quick": bool(args.quick),
                "chunk_tuples": CHUNK_TUPLES,
                "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
                "worst_overhead_pct": worst,
                "within_budget": bool(within),
                "verified": bool(verified),
                "cells": cells,
            },
        )
        print(f"wrote {args.output}")
    return 0 if (within and verified) else 1


if __name__ == "__main__":
    raise SystemExit(main())
