"""Figure 4 — CPU partitioning throughput vs thread count.

Regenerates the thread-scaling series for radix partitioning on each
key distribution and for hash partitioning (distribution-blind), plus
times the actual SWWC partitioning kernel.  Shape expectations: radix
beats hash at low thread counts, both saturate the same memory ceiling
(~500 Mtuples/s) by 8-10 threads, and the grid-family distributions
degrade radix but not hash.
"""

import numpy as np

from repro.bench import ExperimentTable, monotonically_increasing, shape_check
from repro.core.modes import HashKind
from repro.cpu.cost_model import CpuCostModel
from repro.cpu.swwc_buffers import swwc_partition
from repro.workloads.distributions import KeyDistribution, generate_keys

EXPERIMENT = "Figure 4"
THREADS = (1, 2, 4, 8, 10)
RADIX_SERIES = ("linear", "random", "grid", "reverse_grid")


def figure4_table() -> ExperimentTable:
    model = CpuCostModel()
    rows = []
    for threads in THREADS:
        row = [threads]
        for name in RADIX_SERIES:
            row.append(
                model.throughput_mtuples(
                    threads, HashKind.RADIX, KeyDistribution(name)
                )
            )
        row.append(
            model.throughput_mtuples(
                threads, HashKind.MURMUR, KeyDistribution.LINEAR
            )
        )
        rows.append(row)
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="CPU partitioning throughput (Mtuples/s), 8 B tuples, "
        "8192 partitions",
        headers=["threads"]
        + [f"radix {n}" for n in RADIX_SERIES]
        + ["hash (all)"],
        rows=rows,
        note="Hash partitioning delivers the same throughput for every "
        "key distribution (Section 3.2).",
    )


def test_figure4_thread_scaling(benchmark):
    table = benchmark(figure4_table)
    table.emit()

    radix_linear = [float(v) for v in table.column("radix linear")]
    hash_all = [float(v) for v in table.column("hash (all)")]

    shape_check(
        radix_linear[0] > 1.3 * hash_all[0],
        EXPERIMENT,
        "hash partitioning is substantially slower single-threaded",
    )
    shape_check(
        abs(radix_linear[-1] - hash_all[-1]) / radix_linear[-1] < 0.02,
        EXPERIMENT,
        "the hash penalty disappears at 10 threads (memory bound)",
    )
    shape_check(
        monotonically_increasing(radix_linear)
        and monotonically_increasing(hash_all),
        EXPERIMENT,
        "throughput never decreases with threads",
    )
    shape_check(
        450 < radix_linear[-1] < 560,
        EXPERIMENT,
        "the 10-thread ceiling lands near the paper's ~506 Mtuples/s",
    )
    rev_grid = [float(v) for v in table.column("radix reverse_grid")]
    shape_check(
        rev_grid[0] < radix_linear[0],
        EXPERIMENT,
        "grid-family keys degrade radix partitioning at low threads",
    )


def test_figure4_swwc_kernel_throughput(benchmark):
    """Times the actual NumPy SWWC partitioning kernel (not the model):
    useful as a regression benchmark for the library itself."""
    keys = generate_keys("random", 500_000, seed=5)
    payloads = np.arange(keys.shape[0], dtype=np.uint32)

    def run():
        return swwc_partition(keys, payloads, 8192, use_hash=True)

    _, _, counts, _ = benchmark(run)
    assert counts.sum() == keys.shape[0]
