"""Sharded-cluster benchmark — throughput scaling and load balance.

Two questions about the :class:`~repro.cluster.router.ShardRouter`:

1. **Scaling** — how does routed throughput move with the shard count
   (1/2/4) when the work per request is fixed?  The in-process shards
   share one machine, so this measures routing overhead rather than
   real horizontal scaling, but the shape (flat or collapsing) is the
   signal a deployment needs.
2. **Balance under skew** — with Zipf(1.2) keys a handful of
   partitions dominate, and plain consistent hashing piles them onto
   whichever shards the ring happens to favour.  Heavy-hitter
   replication (:class:`~repro.cluster.placement.PlacementPolicy`)
   spreads each hot partition over its replica set; the benchmark
   reports the max/mean shard-load ratio with replication off and on.
   The acceptance criterion: on 4 shards under Zipf(1.2), replication
   must *reduce* the imbalance.

Every routed response is verified byte-identical to a single-node
:class:`~repro.core.partitioner.FpgaPartitioner` run — throughput with
divergence would not count.

Run as a script to write the standard JSON artifact::

    PYTHONPATH=src python benchmarks/bench_cluster.py \
        --output BENCH_cluster.json
"""

import argparse
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.bench import ExperimentTable, write_json_artifact
from repro.cluster import ShardRouter
from repro.core.modes import PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.workloads.relations import make_relation

EXPERIMENT = "Sharded cluster"

DEFAULT_SHARDS = (1, 2, 4)
DEFAULT_TUPLES = 200_000
DEFAULT_REQUESTS = 4
DEFAULT_PARTITIONS = 64
ZIPF_FACTOR = 1.2


def _workload(distribution: str, tuples: int, seed: int):
    if distribution == "zipf":
        return make_relation(
            tuples, "zipf", seed=seed, zipf_factor=ZIPF_FACTOR
        )
    return make_relation(tuples, distribution, seed=seed)


def _run_cell(
    shards: int,
    distribution: str,
    replication: bool,
    tuples: int,
    requests: int,
    partitions: int,
    verify: bool,
) -> dict:
    """One (shards, distribution, replication) cell of the sweep."""
    config = PartitionerConfig(num_partitions=partitions)
    relation = _workload(distribution, tuples, seed=17)
    single = (
        FpgaPartitioner(config).partition(relation, on_overflow="hist")
        if verify
        else None
    )
    router = ShardRouter(
        shards, seed=3, placement=None if replication else False
    )
    with router:
        start = time.perf_counter()
        for _ in range(requests):
            response = router.partition(
                relation, config=config, on_overflow="hist"
            )
            assert response.ok, response.error
        elapsed = time.perf_counter() - start
        if single is not None:
            out = response.output
            assert np.array_equal(out.counts, single.counts)
            for p in range(partitions):
                ck, cp = out.partition(p)
                sk, sp = single.partition(p)
                assert np.array_equal(ck, sk), f"partition {p}"
                assert np.array_equal(cp, sp), f"partition {p}"
        snapshot = router.snapshot()
    loads = np.array(
        [s["shard"]["tuples"] for s in snapshot["shards"].values()],
        dtype=np.float64,
    )
    imbalance = (
        float(loads.max() / loads.mean()) if loads.mean() > 0 else 1.0
    )
    return {
        "shards": shards,
        "distribution": distribution,
        "replication": replication,
        "mtuples_per_s": requests * tuples / elapsed / 1e6,
        "load_imbalance": imbalance,
        "replicated_partitions": int(response.replicated_partitions),
        "verified": bool(verify),
    }


def cluster_sweep(
    shard_counts: Sequence[int] = DEFAULT_SHARDS,
    tuples: int = DEFAULT_TUPLES,
    requests: int = DEFAULT_REQUESTS,
    partitions: int = DEFAULT_PARTITIONS,
    verify: bool = True,
) -> List[dict]:
    cells = []
    for distribution in ("random", "zipf"):
        for shards in shard_counts:
            for replication in (False, True):
                cells.append(
                    _run_cell(
                        shards,
                        distribution,
                        replication,
                        tuples,
                        requests,
                        partitions,
                        verify,
                    )
                )
    return cells


def cluster_table(cells: List[dict]) -> ExperimentTable:
    rows = [
        [
            cell["distribution"],
            cell["shards"],
            "on" if cell["replication"] else "off",
            cell["mtuples_per_s"],
            cell["load_imbalance"],
            cell["replicated_partitions"],
        ]
        for cell in cells
    ]
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=(
            "routed throughput and shard balance "
            f"(Zipf factor {ZIPF_FACTOR} for the skewed rows; every "
            "response verified byte-identical to single-node)"
        ),
        headers=[
            "keys", "shards", "replication", "Mtuples/s",
            "max/mean load", "replicated",
        ],
        rows=rows,
        note=(
            "heavy-hitter replication must cut max/mean load on the "
            "skewed 4-shard row; uniform rows bound its overhead"
        ),
    )


def _imbalance(cells: List[dict], shards: int, replication: bool) -> float:
    for cell in cells:
        if (
            cell["distribution"] == "zipf"
            and cell["shards"] == shards
            and cell["replication"] == replication
        ):
            return cell["load_imbalance"]
    raise KeyError((shards, replication))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write the JSON artifact here")
    parser.add_argument("--tuples", type=int, default=DEFAULT_TUPLES)
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--quick", action="store_true",
                        help="smaller relation, fewer requests")
    args = parser.parse_args(argv)

    tuples = 40_000 if args.quick else args.tuples
    requests = 2 if args.quick else args.requests
    cells = cluster_sweep(tuples=tuples, requests=requests)
    table = cluster_table(cells)
    print(table.render())

    plain = _imbalance(cells, 4, replication=False)
    replicated = _imbalance(cells, 4, replication=True)
    print(
        f"\nZipf({ZIPF_FACTOR}) on 4 shards: max/mean load "
        f"{plain:.3f} (plain hashing) -> {replicated:.3f} "
        f"(heavy-hitter replication)"
    )
    reduced = replicated <= plain
    print("balance improved" if reduced else "NO IMPROVEMENT — check")

    if args.output:
        write_json_artifact(
            args.output,
            [table],
            extra={
                "benchmark": "cluster",
                "schema": "repro-bench/1",
                "quick": bool(args.quick),
                "zipf_factor": ZIPF_FACTOR,
                "cells": cells,
                "zipf_4shard_imbalance_plain": plain,
                "zipf_4shard_imbalance_replicated": replicated,
                "imbalance_reduced": bool(reduced),
            },
        )
        print(f"wrote {args.output}")
    return 0 if reduced else 1


if __name__ == "__main__":
    raise SystemExit(main())
