"""Section 4.8 — validation of the analytical model.

Reproduces the worked arithmetic of Section 4.8 for N = 128e6 8 B
tuples: look up B(r) per mode, divide by W(r+1), compare against the
Figure 9 measurements, and confirm the 'within ~10%' claim plus the
latency-hiding argument (L_FPGA/N becomes negligible at this N).
"""

from repro.bench import ExperimentTable, shape_check
from repro.core.model import FpgaCostModel
from repro.core.modes import PartitionerConfig, OutputMode

EXPERIMENT = "Section 4.8"
PAPER_N = 128 * 10**6


def validation_table() -> ExperimentTable:
    model = FpgaCostModel()
    table = model.validation_table(PAPER_N)
    rows = []
    for label in ("HIST/RID", "HIST/VRID", "PAD/RID", "PAD/VRID"):
        row = table[label]
        rows.append(
            [
                label,
                row["r"],
                row["bandwidth_gbs"],
                row["model_mtuples"],
                row["measured_mtuples"],
                100 * row["relative_error"],
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="Model validation: P_total = B(r) / (W (r+1)), W = 8 B",
        headers=["mode", "r", "B(r) GB/s", "model Mt/s", "measured Mt/s", "err %"],
        rows=rows,
        note="Paper's worked values: 294 / 435 / 435 / 495 Mtuples/s; "
        "HIST/VRID misses most (~11%) because the model skips the "
        "inter-pass pipeline flush, as the paper itself discusses.",
    )


def test_section48_validation(benchmark):
    table = benchmark(validation_table)
    table.emit()

    by_mode = {row[0]: row for row in table.rows}
    shape_check(
        abs(float(by_mode["HIST/RID"][3]) - 294) < 5,
        EXPERIMENT,
        "HIST/RID model lands at ~294 Mtuples/s",
    )
    shape_check(
        abs(float(by_mode["PAD/RID"][3]) - 435) < 5,
        EXPERIMENT,
        "PAD/RID model lands at ~435 Mtuples/s",
    )
    shape_check(
        abs(float(by_mode["PAD/VRID"][3]) - 495) < 5,
        EXPERIMENT,
        "PAD/VRID model lands at ~495 Mtuples/s",
    )
    shape_check(
        all(float(row[5]) < 12 for row in table.rows),
        EXPERIMENT,
        "every mode within ~10% of measurement",
    )


def test_section48_latency_hiding(benchmark):
    """'For a sufficiently high N the latency term becomes orders of
    magnitude smaller than the output rate.'"""
    model = FpgaCostModel()
    config = PartitionerConfig(output_mode=OutputMode.PAD)

    def run():
        return (
            model.process_rate(config, PAPER_N),
            model.process_rate(config, 10_000),
            model.circuit_tuple_rate(config),
        )

    large_n, small_n, ceiling = benchmark(run)
    shape_check(
        large_n > 0.99 * ceiling,
        EXPERIMENT,
        "at N = 128e6 the latency is fully hidden",
    )
    shape_check(
        small_n < 0.1 * ceiling,
        EXPERIMENT,
        "at N = 1e4 the 65k-cycle flush dominates",
    )
