"""Parallel execution engine — morsel scaling and circuit fast-forward.

Two measurements of the PR's execution engine:

1. **Morsel scaling** — wall-clock of ``FpgaPartitioner.partition`` with
   the morsel-driven engine at increasing worker counts, against the
   legacy single-shot path as the 1x baseline.  The engine wins even on
   one core because the per-morsel scatter sorts narrow partition ids
   (uint8/uint16) instead of one monolithic int64 argsort; extra
   workers add concurrency on top where cores exist.
2. **Fast-forward** — wall-clock of the cycle-level circuit with
   ``fast_forward=True`` (event-driven timing replay) vs the
   cycle-by-cycle reference, asserting the :class:`CircuitStats` are
   exactly equal before reporting the speedup.

Run as a script to write the standard JSON artifact::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py \
        --output BENCH_parallel.json

or via the CLI registry: ``python -m repro experiment parallel`` (quick
sizes).  The pytest entry points use benchmark-scaled sizes.
"""

import argparse
import time
from typing import Optional, Sequence

import numpy as np

from repro import kernels
from repro.bench import ExperimentTable, shape_check, write_json_artifact
from repro.core.circuit import PartitionerCircuit
from repro.core.modes import HashKind, LayoutMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.exec import ExecutionEngine

EXPERIMENT = "Parallel scaling"
FF_EXPERIMENT = "Fast-forward"

#: relative throughput drop tolerated between consecutive worker counts
#: before the negative-scaling guard trips (measurement noise headroom;
#: the regression this guards against was a ~2x collapse from the
#: process pool's fork + copy-in cost, far outside this band).
SCALING_GUARD_TOLERANCE = 0.15

#: the guard checks 1 -> SCALING_GUARD_WORKERS (acceptance range)
SCALING_GUARD_WORKERS = 4

#: below this input size, per-task dispatch overhead legitimately
#: dwarfs the sub-millisecond of real work (especially with more
#: workers than cores), so worker-count throughput ratios carry no
#: signal — the guard only applies to full-size runs
SCALING_GUARD_MIN_TUPLES = 1 << 20

#: full-size defaults (acceptance criteria sizes)
DEFAULT_TUPLES = 1 << 22
DEFAULT_LINES = 1 << 16
DEFAULT_WORKERS = (1, 2, 4, 8)

#: quick-mode sizes for smoke tests and the CLI experiment registry
QUICK_TUPLES = 1 << 17
QUICK_LINES = 1 << 10
QUICK_WORKERS = (1, 2)


def _make_keys(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**32, size=n, dtype=np.uint32)


def _time_partition(
    partitioner: FpgaPartitioner,
    keys: np.ndarray,
    payloads: np.ndarray,
    repeats: int,
) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        partitioner.partition(keys, payloads)
        best = min(best, time.perf_counter() - start)
    return best


def scaling_table(
    tuples: Optional[int] = None,
    workers: Optional[Sequence[int]] = None,
    num_partitions: int = 256,
    repeats: int = 2,
    quick: bool = False,
) -> ExperimentTable:
    """Throughput of the morsel engine vs worker count.

    The first row is the legacy (engine-less) path — the 1x baseline
    every speedup is measured against.
    """
    if tuples is None:
        tuples = QUICK_TUPLES if quick else DEFAULT_TUPLES
    if workers is None:
        workers = QUICK_WORKERS if quick else DEFAULT_WORKERS
    keys = _make_keys(tuples)
    payloads = np.arange(tuples, dtype=np.uint32)
    config = PartitionerConfig(
        num_partitions=num_partitions, hash_kind=HashKind.MURMUR
    )

    serial_seconds = _time_partition(
        FpgaPartitioner(config), keys, payloads, repeats
    )
    rows = [
        [
            "legacy",
            0,
            serial_seconds,
            tuples / serial_seconds / 1e6,
            1.0,
        ]
    ]
    for count in workers:
        with ExecutionEngine(workers=count, kind="auto") as engine:
            seconds = _time_partition(
                FpgaPartitioner(config, engine=engine), keys, payloads, repeats
            )
        rows.append(
            [
                "morsel",
                count,
                seconds,
                tuples / seconds / 1e6,
                serial_seconds / seconds,
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=f"morsel engine scaling, {tuples:,} tuples, "
        f"{num_partitions} partitions, {kernels.backend_name()} kernels "
        "(byte-identical output)",
        headers=["path", "workers", "seconds", "Mtuples/s", "speedup"],
        rows=rows,
        note="speedup is against the legacy single-shot partition path; "
        "outputs are byte-identical by construction and by test.",
    )


def check_no_negative_scaling(
    table: ExperimentTable,
    max_workers: int = SCALING_GUARD_WORKERS,
    tolerance: float = SCALING_GUARD_TOLERANCE,
) -> None:
    """Regression guard: adding workers must never cost throughput.

    Asserts that morsel-engine Mtuples/s is monotonically non-decreasing
    from 1 worker up to ``max_workers`` (modulo ``tolerance`` for
    measurement noise).  This is the guard for the regression where the
    auto backend picked the process pool on a box whose core count
    cannot amortise fork + shared-memory copy-in, so 2 workers ran
    *slower* than 1.
    """
    morsel = [
        (int(row[1]), float(row[3]))
        for row in table.rows
        if row[0] == "morsel" and int(row[1]) <= max_workers
    ]
    morsel.sort()
    for (w_prev, mt_prev), (w_next, mt_next) in zip(morsel, morsel[1:]):
        shape_check(
            mt_next >= mt_prev * (1.0 - tolerance),
            EXPERIMENT,
            f"negative scaling: {mt_next:.1f} Mt/s at {w_next} workers "
            f"< {mt_prev:.1f} Mt/s at {w_prev} workers "
            f"(tolerance {tolerance:.0%})",
        )


def fast_forward_table(
    lines: Optional[int] = None,
    num_partitions: int = 256,
    quick: bool = False,
) -> ExperimentTable:
    """Cycle-by-cycle vs fast-forward circuit run (identical stats)."""
    if lines is None:
        lines = QUICK_LINES if quick else DEFAULT_LINES
    config = PartitionerConfig(
        num_partitions=num_partitions, layout_mode=LayoutMode.VRID
    )
    n = lines * config.tuples_per_line
    keys = _make_keys(n, seed=1)

    circuit = PartitionerCircuit(config)
    start = time.perf_counter()
    reference = circuit.run(keys, None)
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast = circuit.run(keys, None, fast_forward=True)
    fast_seconds = time.perf_counter() - start

    shape_check(
        fast.stats == reference.stats,
        FF_EXPERIMENT,
        "fast-forward CircuitStats must equal the cycle-level reference",
    )
    rows = [
        ["cycle-level", reference_seconds, reference.stats.cycles, 1.0],
        [
            "fast-forward",
            fast_seconds,
            fast.stats.cycles,
            reference_seconds / fast_seconds,
        ],
    ]
    return ExperimentTable(
        experiment_id=FF_EXPERIMENT,
        title=f"circuit simulation, {lines:,} input lines "
        f"({n:,} tuples, {num_partitions} partitions)",
        headers=["simulator", "seconds", "cycles", "speedup"],
        rows=rows,
        note="both runs produce identical CircuitStats (asserted above).",
    )


def write_artifact(
    path: str,
    tuples: Optional[int] = None,
    lines: Optional[int] = None,
    workers: Optional[Sequence[int]] = None,
    quick: bool = False,
):
    """Measure both tables and write the ``BENCH_parallel.json`` artifact."""
    scaling = scaling_table(tuples=tuples, workers=workers, quick=quick)
    measured = tuples or (QUICK_TUPLES if quick else DEFAULT_TUPLES)
    if measured >= SCALING_GUARD_MIN_TUPLES:
        check_no_negative_scaling(scaling)
    fast = fast_forward_table(lines=lines, quick=quick)
    speedups = [float(row[4]) for row in scaling.rows[1:]]
    extra = {
        "schema": "repro-bench/1",
        "benchmark": "parallel_scaling",
        "quick": quick,
        "kernel_backend": kernels.backend_name(),
        "serial_seconds": float(scaling.rows[0][2]),
        "serial_mtuples": float(scaling.rows[0][3]),
        "best_parallel_mtuples": max(float(r[3]) for r in scaling.rows[1:]),
        "best_speedup": max(speedups),
        "fast_forward_speedup": float(fast.rows[1][3]),
    }
    written = write_json_artifact(path, [scaling, fast], extra=extra)
    return written, scaling, fast


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Script entry point: print both tables, write the JSON artifact."""
    parser = argparse.ArgumentParser(
        description="morsel-engine scaling + circuit fast-forward benchmark"
    )
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--lines", type=int, default=None)
    parser.add_argument("--workers", type=int, nargs="+", default=None)
    parser.add_argument("--output", default="BENCH_parallel.json")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing")
    args = parser.parse_args(argv)
    written, scaling, fast = write_artifact(
        args.output,
        tuples=args.tuples,
        lines=args.lines,
        workers=args.workers,
        quick=args.quick,
    )
    print(scaling.render())
    print()
    print(fast.render())
    print(f"\nwrote {written}")
    return 0


def test_scaling_quick(benchmark):
    """Benchmark-harness entry: quick-size morsel scaling table."""
    table = benchmark.pedantic(
        lambda: scaling_table(quick=True), rounds=1, iterations=1
    )
    table.emit()
    speedups = [float(row[4]) for row in table.rows[1:]]
    if kernels.backend_name() == "native":
        # With the compiled kernels the legacy path is itself fast, so
        # on few cores the engine's win is parallelism, not the narrow
        # per-morsel sort; require bounded overhead instead of a win.
        shape_check(
            max(speedups) > 0.70,
            EXPERIMENT,
            "the morsel engine must stay within 30% of the legacy path",
        )
    else:
        shape_check(
            max(speedups) > 1.0,
            EXPERIMENT,
            "the morsel engine must beat the legacy path",
        )


def test_fast_forward_quick(benchmark):
    """Benchmark-harness entry: quick-size fast-forward table."""
    table = benchmark.pedantic(
        lambda: fast_forward_table(quick=True), rounds=1, iterations=1
    )
    table.emit()
    shape_check(
        float(table.rows[1][3]) > 1.0,
        FF_EXPERIMENT,
        "fast-forward must be faster than the cycle-level loop",
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
