"""Ablation — the BRAM forwarding registers (Section 4.2, Code 4).

The design challenge the paper spends most of Section 4.2 on: the
fill-rate BRAM answers reads two cycles late, so back-to-back tuples of
the same partition would read stale slot indices.  This benchmark
quantifies how often the forwarding paths fire under different input
patterns, and demonstrates that removing them corrupts the output on
exactly the inputs where they fire.
"""

import numpy as np

from repro.bench import ExperimentTable, shape_check
from repro.core.circuit import PartitionerCircuit
from repro.core.modes import HashKind, OutputMode, PartitionerConfig

EXPERIMENT = "Ablation: forwarding"
N = 1024


def _inputs():
    rng = np.random.default_rng(4)
    return {
        "single partition burst": np.full(N, 3, dtype=np.uint32),
        "two partitions alternating": np.tile(
            np.array([3, 7], dtype=np.uint32), N // 2
        ),
        # whole cache lines per partition, cycling through all 16:
        # within a lane, same-partition tuples are 16 cycles apart,
        # so the fill-rate BRAM value is always fresh.
        "line-granular cycling": ((np.arange(N) // 8) % 16).astype(
            np.uint32
        ),
        "uniform random": rng.integers(0, 16, N, dtype=np.uint64).astype(
            np.uint32
        ),
    }


def _config():
    return PartitionerConfig(
        num_partitions=16,
        output_mode=OutputMode.PAD,
        hash_kind=HashKind.RADIX,
        pad_tuples=2 * N,
    )


def ablation_table() -> ExperimentTable:
    rows = []
    for label, keys in _inputs().items():
        payloads = np.arange(N, dtype=np.uint32)
        with_fwd = PartitionerCircuit(_config()).run(keys, payloads)
        without = PartitionerCircuit(
            _config(), enable_forwarding=False
        ).run(keys, payloads)
        out_payloads = sorted(
            int(v) for p in without.partitions_payloads for v in p
        )
        corrupted = out_payloads != list(range(N))
        rows.append(
            [
                label,
                with_fwd.stats.forwarding_hits,
                with_fwd.stats.combiner_stall_cycles,
                "yes" if corrupted else "no",
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=f"Forwarding activity by input pattern ({N} tuples, "
        "radix, 16 partitions)",
        headers=[
            "input pattern",
            "forwarding hits",
            "stall cycles",
            "corrupt w/o fwd",
        ],
        rows=rows,
        note="Per lane, same-partition tuples 1-2 cycles apart hit the "
        "forwarding registers; without them the stale fill rate "
        "loses/duplicates tuples.",
    )


def test_forwarding_ablation(benchmark):
    table = benchmark.pedantic(ablation_table, rounds=1, iterations=1)
    table.emit()

    by_label = {row[0]: row for row in table.rows}
    shape_check(
        by_label["single partition burst"][1] > 0,
        EXPERIMENT,
        "bursts exercise the 1-cycle forwarding path",
    )
    shape_check(
        all(row[2] == 0 for row in table.rows),
        EXPERIMENT,
        "no internal stalls for any pattern — the headline claim",
    )
    shape_check(
        by_label["single partition burst"][3] == "yes",
        EXPERIMENT,
        "removing forwarding corrupts bursty input",
    )
    shape_check(
        by_label["line-granular cycling"][3] == "no",
        EXPERIMENT,
        "spread-out input never needs forwarding (BRAM value is fresh)",
    )
    shape_check(
        by_label["line-granular cycling"][1] == 0,
        EXPERIMENT,
        "no forwarding fires when same-partition tuples are >2 cycles apart",
    )
