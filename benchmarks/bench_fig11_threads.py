"""Figure 11 — join time vs CPU threads, workloads A and B.

Series: CPU join (radix partitioning + build+probe), hybrid join with
FPGA PAD/RID partitioning, and hybrid with PAD/VRID (the column-store
mode).  Shape expectations:

* CPU partitioning time shrinks with threads, then saturates; FPGA
  partitioning is thread-independent;
* PAD/VRID is the fastest FPGA mode (reads half the bytes);
* at 10 threads the hybrid (406 Mtuples/s on A) sits just below the
  CPU join (436), with VRID partitioning itself slightly faster than
  the 10-thread CPU partitioner.
"""

import pytest

from repro.bench import ExperimentTable, shape_check
from repro.core.modes import HashKind, LayoutMode, OutputMode, PartitionerConfig
from repro.join.hybrid_join import hybrid_join
from repro.join.radix_join import cpu_radix_join
from repro.workloads.relations import WORKLOAD_SPECS

EXPERIMENT = "Figure 11"
THREADS = (1, 2, 4, 8, 10)


def figure11_table(workload, name: str) -> ExperimentTable:
    spec = WORKLOAD_SPECS[name]
    n_r, n_s = spec.r_tuples, spec.s_tuples
    rows = []
    for threads in THREADS:
        cpu = cpu_radix_join(
            workload,
            num_partitions=8192,
            threads=threads,
            hash_kind=HashKind.RADIX,
            timing_r_tuples=n_r,
            timing_s_tuples=n_s,
        )
        rid = hybrid_join(
            workload,
            PartitionerConfig(
                num_partitions=8192,
                output_mode=OutputMode.PAD,
                layout_mode=LayoutMode.RID,
            ),
            threads=threads,
            timing_r_tuples=n_r,
            timing_s_tuples=n_s,
        )
        vrid = hybrid_join(
            workload,
            PartitionerConfig(
                num_partitions=8192,
                output_mode=OutputMode.PAD,
                layout_mode=LayoutMode.VRID,
            ),
            threads=threads,
            timing_r_tuples=n_r,
            timing_s_tuples=n_s,
        )
        rows.append(
            [
                threads,
                cpu.timing.partition_seconds,
                cpu.timing.build_probe_seconds,
                rid.timing.partition_seconds,
                rid.timing.build_probe_seconds,
                vrid.timing.partition_seconds,
                vrid.timing.total_seconds,
                cpu.throughput_mtuples,
                vrid.throughput_mtuples,
            ]
        )
    return ExperimentTable(
        experiment_id=f"{EXPERIMENT}{'a' if name == 'A' else 'b'}",
        title=f"Join time vs threads, workload {name}, 8192 partitions",
        headers=[
            "threads",
            "cpu part s",
            "cpu b+p s",
            "fpga RID part s",
            "hyb b+p s",
            "fpga VRID part s",
            "hyb VRID total s",
            "cpu Mt/s",
            "hyb VRID Mt/s",
        ],
        rows=rows,
    )


@pytest.mark.parametrize("name", ["A", "B"])
def test_figure11_thread_sweep(benchmark, workload_a, workload_b, name):
    workload = workload_a if name == "A" else workload_b
    table = benchmark.pedantic(
        figure11_table, args=(workload, name), rounds=1, iterations=1
    )
    table.emit()

    cpu_part = [float(v) for v in table.column("cpu part s")]
    fpga_rid = [float(v) for v in table.column("fpga RID part s")]
    fpga_vrid = [float(v) for v in table.column("fpga VRID part s")]

    shape_check(
        cpu_part[0] > cpu_part[-1],
        EXPERIMENT,
        "CPU partitioning accelerates with threads",
    )
    shape_check(
        max(fpga_rid) / min(fpga_rid) < 1.01,
        EXPERIMENT,
        "FPGA partitioning is independent of CPU thread count",
    )
    shape_check(
        all(v < r for v, r in zip(fpga_vrid, fpga_rid)),
        EXPERIMENT,
        "VRID is the fastest FPGA mode (half the reads)",
    )
    shape_check(
        fpga_vrid[-1] < cpu_part[-1],
        EXPERIMENT,
        "VRID partitioning beats even the 10-thread CPU partitioner",
    )

    if name == "A":
        cpu_tp = float(table.rows[-1][7])
        hybrid_tp = float(table.rows[-1][8])
        shape_check(
            abs(cpu_tp - 436) / 436 < 0.05,
            EXPERIMENT,
            f"CPU join at 10 threads ~436 Mtuples/s (got {cpu_tp:.0f})",
        )
        shape_check(
            abs(hybrid_tp - 406) / 406 < 0.05,
            EXPERIMENT,
            f"hybrid VRID join at 10 threads ~406 Mtuples/s (got {hybrid_tp:.0f})",
        )
        shape_check(
            hybrid_tp < cpu_tp,
            EXPERIMENT,
            "the coherence-throttled hybrid stays just below the CPU join",
        )
