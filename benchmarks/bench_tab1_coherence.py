"""Table 1 — memory access behaviour by last-writing socket.

Regenerates the 2x2 table (CPU/FPGA last writer x sequential/random
CPU read) from the coherence model and checks the paper's findings:
random reads of FPGA-written memory are ~2.2x slower, sequential reads
only ~1.1x, and re-reading never clears the penalty.
"""

from repro.bench import ExperimentTable, shape_check
from repro.platform.coherence import (
    CoherenceDirectory,
    Socket,
    table1_read_seconds,
)
from repro.platform.microbench import MemoryMicrobench

EXPERIMENT = "Table 1"


def table1() -> ExperimentTable:
    rows = []
    for writer in (Socket.CPU, Socket.FPGA):
        rows.append(
            [
                f"{writer.value} writes",
                table1_read_seconds(writer, random_access=False),
                table1_read_seconds(writer, random_access=True),
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="CPU read time of a 512 MB region by last writer (s)",
        headers=["last writer", "CPU reads sequentially", "CPU reads randomly"],
        rows=rows,
        note="Values are the paper's measurements, used as model inputs; "
        "the derived penalties drive every hybrid-join figure.",
    )


def test_table1_coherence_penalty(benchmark):
    table = benchmark(table1)
    table.emit()

    seq = table.column("CPU reads sequentially")
    rand = table.column("CPU reads randomly")
    shape_check(
        rand[1] / rand[0] > 2.0,
        EXPERIMENT,
        "random reads after FPGA writes are >2x slower",
    )
    shape_check(
        seq[1] / seq[0] < 1.2,
        EXPERIMENT,
        "sequential reads suffer only mildly",
    )


def test_table1_penalty_is_sticky(benchmark):
    """'No matter how many times the CPU reads it, it does not get
    faster' — and a CPU write resets it."""

    def run():
        directory = CoherenceDirectory()
        directory.record_region_write("region", Socket.FPGA)
        penalties = [
            directory.cpu_read_penalty("region", random_access=True)
            for _ in range(10)
        ]
        directory.record_region_write("region", Socket.CPU)
        after_cpu_write = directory.cpu_read_penalty(
            "region", random_access=True
        )
        return penalties, after_cpu_write

    penalties, after_cpu_write = benchmark(run)
    shape_check(
        len(set(penalties)) == 1 and penalties[0] > 2.0,
        EXPERIMENT,
        "repeated reads keep paying the full snoop penalty",
    )
    shape_check(
        after_cpu_write == 1.0,
        EXPERIMENT,
        "a CPU write re-homes the region",
    )


def simulated_table1() -> ExperimentTable:
    """Table 1 re-derived from the snoop mechanism, not looked up.

    The CPU-writer row calibrates the local access latencies; the
    FPGA-writer row is then *predicted* by simulating the snoop to the
    128 KB FPGA cache per line (Section 2.2's explanation, executed).
    """
    sim = MemoryMicrobench(simulate_lines=1 << 14).table1()
    rows = []
    for writer in ("cpu", "fpga"):
        rows.append(
            [
                f"{writer} writes",
                sim[(writer, "sequential")].seconds,
                table1_read_seconds(writer, False),
                sim[(writer, "random")].seconds,
                table1_read_seconds(writer, True),
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT + " (mechanistic)",
        title="Table 1 simulated from the snoop mechanism (s)",
        headers=[
            "last writer",
            "seq (sim)",
            "seq (paper)",
            "random (sim)",
            "random (paper)",
        ],
        rows=rows,
        note="FPGA rows are predictions of the simulated snoop "
        "mechanism; snoop hit rate into the 128 KB cache ~0.02%.",
    )


def test_table1_mechanistic_simulation(benchmark):
    table = benchmark.pedantic(simulated_table1, rounds=1, iterations=1)
    table.emit()

    fpga_row = table.rows[1]
    shape_check(
        abs(float(fpga_row[3]) - float(fpga_row[4])) / float(fpga_row[4])
        < 0.05,
        EXPERIMENT,
        "the snoop mechanism predicts the FPGA random-read cell",
    )
    shape_check(
        abs(float(fpga_row[1]) - float(fpga_row[2])) / float(fpga_row[2])
        < 0.05,
        EXPERIMENT,
        "...and the mild sequential penalty (prefetch hides snoops)",
    )
