"""Out-of-core spill benchmark — bounded memory vs in-memory partitioning.

Streams one relation through the :class:`~repro.storage.spill.
SpillPartitioner` across a log2 ladder of memory budgets and compares
each run against a single in-memory
:class:`~repro.core.partitioner.FpgaPartitioner` call on the same
keys: throughput (tuples/s of the partitioning phase), peak *traced*
Python allocation (``tracemalloc`` — the honest bounded-memory claim,
since the budget caps the spiller's partition buffers), flush count
and byte traffic.  Byte identity is asserted per budget; the speed
numbers only count because the outputs are exactly equal.

The shape this artifact pins down: peak traced memory **scales with
the budget, not the relation**, while throughput degrades gracefully
as the budget shrinks (more, smaller flushes).

Run as a script to write the standard JSON artifact::

    PYTHONPATH=src python benchmarks/bench_spill.py \
        --output BENCH_spill.json

or quick sizes for smoke testing with ``--quick``.
"""

import argparse
import time
import tracemalloc
from typing import Optional, Sequence

import numpy as np

from repro.bench import ExperimentTable, shape_check, write_json_artifact
from repro.core.modes import PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.storage import RelationStore, SpillPartitioner

EXPERIMENT = "Spill"

DEFAULT_TUPLES = 2_000_000
DEFAULT_PARTITIONS = 256
DEFAULT_CHUNK_TUPLES = 1 << 17
#: log2 budget ladder, bytes — 256 KiB up to 16 MiB
DEFAULT_BUDGETS = [1 << b for b in range(18, 25, 2)]

QUICK_TUPLES = 200_000
QUICK_CHUNK_TUPLES = 1 << 14
QUICK_BUDGETS = [1 << 16, 1 << 20]


def _traced(fn):
    """(result, seconds, peak_traced_bytes) of one call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def _identical(spill, mem) -> bool:
    out = spill.to_output()
    if not (
        np.array_equal(out.counts, mem.counts)
        and out.bytes_read == mem.bytes_read
        and out.bytes_written == mem.bytes_written
    ):
        return False
    return all(
        np.array_equal(np.asarray(spill.partition(p)[0]),
                       np.asarray(mem.partition(p)[0]))
        and np.array_equal(np.asarray(spill.partition(p)[1]),
                           np.asarray(mem.partition(p)[1]))
        for p in range(mem.num_partitions)
    )


def spill_table(
    tmp_dir,
    tuples: Optional[int] = None,
    num_partitions: int = DEFAULT_PARTITIONS,
    budgets: Optional[Sequence[int]] = None,
    chunk_tuples: Optional[int] = None,
    quick: bool = False,
    seed: int = 0,
) -> ExperimentTable:
    """Streaming vs in-memory across the memory-budget ladder."""
    import pathlib

    tmp_dir = pathlib.Path(tmp_dir)
    n = tuples or (QUICK_TUPLES if quick else DEFAULT_TUPLES)
    budgets = list(budgets or (QUICK_BUDGETS if quick else DEFAULT_BUDGETS))
    chunk = chunk_tuples or (
        QUICK_CHUNK_TUPLES if quick else DEFAULT_CHUNK_TUPLES
    )
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(np.uint32)
    config = PartitionerConfig(num_partitions=num_partitions)

    mem, mem_s, mem_peak = _traced(
        lambda: FpgaPartitioner(config).partition(keys)
    )
    rows = [[
        "in-memory", n, "-", "-", n / mem_s, 1.0, mem_peak / 2**20, "-",
    ]]

    store = RelationStore.ingest(
        keys, tmp_dir / "store", chunk_tuples=chunk
    ).seal()
    for budget in budgets:
        run_dir = tmp_dir / f"run-{budget}"
        spiller = SpillPartitioner(
            config, backend="fpga", max_bytes_in_memory=budget
        )
        spill, spill_s, spill_peak = _traced(
            lambda: spiller.run(store, run_dir)
        )
        identical = _identical(spill, mem)
        rows.append([
            f"spill {budget >> 10} KiB",
            n,
            store.num_chunks,
            spill.bytes_written,
            n / spill_s,
            (n / spill_s) / (n / mem_s),
            spill_peak / 2**20,
            "yes" if identical else "NO",
        ])
        spill.cleanup()
    store.delete()

    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=(
            f"{n:,} tuples, fan-out {num_partitions}: streaming "
            f"spill-to-disk vs one in-memory partition() call"
        ),
        headers=[
            "path", "tuples", "chunks", "bytes written", "tuples/s",
            "vs mem", "peak MiB", "identical",
        ],
        rows=rows,
        note=(
            "peak MiB is tracemalloc-traced Python allocation; the "
            "spill rows must stay bounded by the budget ladder, not "
            "the relation size, at byte-identical output"
        ),
    )


def write_artifact(
    path: str,
    tmp_dir,
    tuples: Optional[int] = None,
    quick: bool = False,
):
    """Measure and write the ``BENCH_spill.json`` artifact."""
    table = spill_table(tmp_dir, tuples=tuples, quick=quick)
    spill_rows = table.rows[1:]
    mem_row = table.rows[0]
    extra = {
        "schema": "repro-bench/1",
        "benchmark": "spill",
        "quick": quick,
        "tuples": int(mem_row[1]),
        "in_memory_tuples_per_s": float(mem_row[4]),
        "in_memory_peak_mib": float(mem_row[6]),
        "budgets_bytes": [
            int(row[0].split()[1]) << 10 for row in spill_rows
        ],
        "spill_tuples_per_s": [float(row[4]) for row in spill_rows],
        "spill_peak_mib": [float(row[6]) for row in spill_rows],
        "all_identical": all(row[7] == "yes" for row in spill_rows),
    }
    written = write_json_artifact(path, [table], extra=extra)
    return written, table


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Script entry point: print the table, write the JSON artifact."""
    import tempfile

    parser = argparse.ArgumentParser(
        description="out-of-core spill benchmark"
    )
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--output", default="BENCH_spill.json")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for smoke testing")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="repro-bench-spill-") as tmp:
        written, table = write_artifact(
            args.output, tmp, tuples=args.tuples, quick=args.quick
        )
    print(table.render())
    print(f"\nwrote {written}")
    return 0


def test_spill_quick(benchmark, tmp_path):
    """Benchmark-harness entry: quick-size spill ladder."""
    table = benchmark.pedantic(
        lambda: spill_table(tmp_path, quick=True), rounds=1, iterations=1
    )
    table.emit()
    spill_rows = table.rows[1:]
    shape_check(
        all(row[7] == "yes" for row in spill_rows),
        EXPERIMENT,
        "spilled output must be byte-identical to in-memory",
    )
    smallest_budget_peak = spill_rows[0][6]
    in_memory_peak = table.rows[0][6]
    shape_check(
        smallest_budget_peak < in_memory_peak,
        EXPERIMENT,
        "bounded-budget spill must trace less peak memory than the "
        "in-memory run",
    )


if __name__ == "__main__":
    raise SystemExit(main())
