"""Fused dataflow pipeline vs staged operators — wall clock and memory.

The headline scenario of the plan layer (:mod:`repro.plan`): a hybrid
partitioned join immediately followed by a group-by aggregate, on a
2^22-tuple workload (|R| = |S| ~ 2^21, Zipf-skewed probe side).  Both
executors run the same logical plan:

* **fused** — one morsel pass: partition R and S, then per partition
  build+probe and reduce the matches on the spot.  No materialized
  intermediates: the join result is never assembled, and the group-by
  reuses the join's build index instead of re-partitioning a flat
  match stream.
* **staged** — the classic operator chain: materialize both
  ``PartitionedOutput``\\ s, join partition by partition, concatenate
  the match columns, then hand them to ``partitioned_groupby`` (which
  partitions them again).

Rows are identical by construction (asserted here and pinned by
``tests/test_plan.py``); this benchmark measures the wall-clock and
peak-memory price of the materialization the staged chain pays.

Run as a script to write the standard JSON artifact::

    PYTHONPATH=src python benchmarks/bench_pipeline.py \
        --output BENCH_pipeline.json

The pytest entry point uses benchmark-scaled sizes; the full-size run
checks the acceptance bar (fused >= 1.3x staged, lower peak memory).
"""

import argparse
import time
import tracemalloc
from typing import Optional, Sequence

import numpy as np

from repro.bench import ExperimentTable, shape_check, write_json_artifact
from repro.core.modes import PartitionerConfig
from repro.plan import execute_plan, join_groupby_query
from repro.workloads.relations import make_workload

EXPERIMENT = "Fused pipeline"

#: workload A divided by 61 gives |R| = |S| = 2,098,360 — the 2^22-tuple
#: join+aggregate scenario (2^21 per side).
DEFAULT_SCALE = 61
QUICK_SCALE = 8192
DEFAULT_PARTITIONS = 512
DEFAULT_ZIPF = 1.05
DEFAULT_AGGREGATE = "sum"


def _build_plan(scale: int, num_partitions: int, zipf: float, seed: int):
    workload = make_workload("A", scale=scale, seed=seed, skew_s_zipf=zipf)
    config = PartitionerConfig(num_partitions=num_partitions)
    plan = join_groupby_query(
        workload.r,
        workload.s,
        aggregate=DEFAULT_AGGREGATE,
        config=config,
        on_overflow="hist",
    )
    total = int(workload.r.keys.shape[0] + workload.s.keys.shape[0])
    return plan, total


def _best_seconds_interleaved(fns, repeats: int):
    """Best-of-``repeats`` wall clock for each callable, interleaved
    round-robin so clock drift and allocator state hit all candidates
    equally instead of biasing whichever ran last."""
    for fn in fns:  # warm up (native: triggers the one-time build/load)
        fn()
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for index, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def _peak_mib(fn) -> float:
    """Peak traced allocation of one run, in MiB (separate from timing:
    tracemalloc instrumentation slows the run it measures)."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024 * 1024)


def pipeline_table(
    scale: Optional[int] = None,
    num_partitions: int = DEFAULT_PARTITIONS,
    zipf: float = DEFAULT_ZIPF,
    repeats: int = 5,
    seed: int = 42,
    quick: bool = False,
) -> ExperimentTable:
    """Fused vs staged wall clock + peak memory on the same plan."""
    if scale is None:
        scale = QUICK_SCALE if quick else DEFAULT_SCALE
    plan, total_tuples = _build_plan(scale, num_partitions, zipf, seed)

    fused_s, staged_s = _best_seconds_interleaved(
        [
            lambda: execute_plan(plan, fused=True),
            lambda: execute_plan(plan, fused=False),
        ],
        repeats,
    )
    runs = {}
    for fused, seconds in ((True, fused_s), (False, staged_s)):
        peak = _peak_mib(lambda: execute_plan(plan, fused=fused))
        result = execute_plan(plan, fused=fused)
        runs[fused] = (seconds, peak, result)

    fused_result = runs[True][2]
    staged_result = runs[False][2]
    identical = (
        fused_result.matches == staged_result.matches
        and np.array_equal(fused_result.group_keys, staged_result.group_keys)
        and np.array_equal(
            fused_result.group_values, staged_result.group_values
        )
    )
    assert identical, "fused and staged pipelines disagree on rows"

    rows = []
    for fused in (True, False):
        seconds, peak, result = runs[fused]
        rows.append(
            [
                "fused" if fused else "staged",
                seconds,
                total_tuples / seconds / 1e6,
                peak,
                int(result.matches),
                int(result.group_keys.shape[0]),
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=(
            f"join+group-by pipeline, {total_tuples:,} tuples, "
            f"{num_partitions} partitions, zipf {zipf} probe side"
        ),
        headers=[
            "executor", "seconds", "Mtuples/s", "peak MiB",
            "matches", "groups",
        ],
        rows=rows,
        note="identical rows verified in-run; peak MiB is a separate "
        "tracemalloc pass (instrumented, not the timed run).",
    )


def write_artifact(
    path: str,
    scale: Optional[int] = None,
    num_partitions: int = DEFAULT_PARTITIONS,
    quick: bool = False,
    check: bool = False,
):
    """Measure the table and write the ``BENCH_pipeline.json`` artifact.

    ``check=True`` enforces the acceptance bar on the measured numbers:
    fused >= 1.3x staged wall clock and strictly lower peak memory.
    """
    table = pipeline_table(
        scale=scale, num_partitions=num_partitions, quick=quick
    )
    by_executor = {row[0]: row for row in table.rows}
    speedup = by_executor["staged"][1] / by_executor["fused"][1]
    memory_ratio = by_executor["staged"][3] / by_executor["fused"][3]
    extra = {
        "schema": "repro-bench/1",
        "benchmark": "pipeline",
        "quick": quick,
        "identity": "ok",
        "fused_speedup": speedup,
        "staged_over_fused_peak_memory": memory_ratio,
        "fused_seconds": by_executor["fused"][1],
        "staged_seconds": by_executor["staged"][1],
        "fused_peak_mib": by_executor["fused"][3],
        "staged_peak_mib": by_executor["staged"][3],
    }
    if check:
        assert speedup >= 1.3, (
            f"fused must be >= 1.3x staged, measured {speedup:.2f}x"
        )
        assert memory_ratio > 1.0, (
            f"fused must peak below staged, ratio {memory_ratio:.2f}"
        )
    written = write_json_artifact(path, [table], extra=extra)
    return written, table, extra


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Script entry point: print the table, write the JSON artifact."""
    parser = argparse.ArgumentParser(
        description="fused vs staged join+group-by pipeline"
    )
    parser.add_argument("--scale", type=int, default=None,
                        help="divide workload A's 128M tuples by this")
    parser.add_argument("--partitions", type=int,
                        default=DEFAULT_PARTITIONS)
    parser.add_argument("--output", default="BENCH_pipeline.json")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing")
    parser.add_argument("--check", action="store_true",
                        help="fail unless fused >= 1.3x and lower peak")
    args = parser.parse_args(argv)
    written, table, extra = write_artifact(
        args.output,
        scale=args.scale,
        num_partitions=args.partitions,
        quick=args.quick,
        check=args.check,
    )
    print(table.render())
    print(
        f"\nfused speedup: {extra['fused_speedup']:.2f}x, "
        f"staged/fused peak memory: "
        f"{extra['staged_over_fused_peak_memory']:.2f}x"
    )
    print(f"wrote {written}")
    return 0


def test_pipeline_quick(benchmark):
    """Benchmark-harness entry: quick-size fused vs staged table."""
    table = benchmark.pedantic(
        lambda: pipeline_table(quick=True), rounds=1, iterations=1
    )
    table.emit()
    executors = {row[0] for row in table.rows}
    shape_check(
        executors == {"fused", "staged"},
        EXPERIMENT,
        "both executors must be measured",
    )
    matches = {row[4] for row in table.rows}
    shape_check(
        len(matches) == 1,
        EXPERIMENT,
        "fused and staged must report the same match count",
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
