"""Table 4 — the evaluation workloads, validated and timed.

Table 4 defines workloads A-E (sizes and key distributions).  This
bench regenerates the definition table, validates the generators'
invariants at a scaled size, and times key generation itself (the one
part of Table 4 that is real work for this library).

Table 3 (the cost-model notation) has no independent content to
reproduce — its symbols are the constants of ``repro.constants`` and
the equations of ``repro.core.model``, pinned by the Section 4.8 bench.
"""

import numpy as np

from repro.bench import ExperimentTable, shape_check
from repro.workloads.distributions import KeyDistribution, generate_keys
from repro.workloads.relations import WORKLOAD_SPECS, make_workload

EXPERIMENT = "Table 4"


def table4() -> ExperimentTable:
    rows = []
    for name, spec in sorted(WORKLOAD_SPECS.items()):
        wl = make_workload(name, scale=20000)
        unique = np.unique(wl.r.keys).size
        rows.append(
            [
                name,
                f"{spec.r_tuples:,}",
                f"{spec.s_tuples:,}",
                spec.distribution.value,
                len(wl.r),
                unique,
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="Workloads used in experiments (paper sizes; sample at "
        "1/20000)",
        headers=[
            "name",
            "#tuples R",
            "#tuples S",
            "distribution",
            "sample R",
            "distinct keys",
        ],
        rows=rows,
    )


def test_table4_definitions(benchmark):
    table = benchmark(table4)
    table.emit()

    by_name = {row[0]: row for row in table.rows}
    shape_check(
        by_name["A"][1] == "128,000,000"
        and by_name["B"][1] == f"{16 * 2**20:,}"
        and by_name["B"][2] == f"{256 * 2**20:,}",
        EXPERIMENT,
        "paper sizes transcribed exactly",
    )
    shape_check(
        by_name["A"][3] == "linear"
        and by_name["C"][3] == "random"
        and by_name["D"][3] == "grid"
        and by_name["E"][3] == "reverse_grid",
        EXPERIMENT,
        "distribution per workload",
    )
    # linear and grid-family keys are unique by construction
    for name in ("A", "B", "D", "E"):
        shape_check(
            by_name[name][5] == by_name[name][4],
            EXPERIMENT,
            f"workload {name}'s keys are unique",
        )


def test_key_generation_rates(benchmark):
    """Times the generators (a real library kernel): one call per
    distribution over 1M keys."""

    def run():
        out = {}
        for dist in (
            KeyDistribution.LINEAR,
            KeyDistribution.RANDOM,
            KeyDistribution.GRID,
            KeyDistribution.REVERSE_GRID,
        ):
            out[dist.value] = generate_keys(dist, 1_000_000, seed=1)
        return out

    keys = benchmark(run)
    for name, column in keys.items():
        assert column.shape == (1_000_000,), name
