"""Extension — partitioned vs non-partitioned join crossover.

The paper builds on Schuh et al. [31]: partitioned radix joins beat
non-partitioned (NPO) joins "for large and non-skewed relations".  The
qualifier matters: when the build side's hash table fits in the L3,
skipping the partitioning pass wins.  This extension benchmark sweeps
the build-relation size and locates the crossover, with the NPO's
out-of-cache cost grounded in the paper's own Table 1 random-read
measurement.
"""

from repro.bench import ExperimentTable, shape_check
from repro.constants import CPU_L3_BYTES
from repro.cpu.cost_model import CpuCostModel
from repro.join.build_probe import BuildProbeCostModel
from repro.join.no_partition_join import NoPartitionCostModel

EXPERIMENT = "Extension: NPO crossover"
R_SIZES = (250_000, 1_000_000, 2_000_000, 8_000_000, 32_000_000, 128_000_000)
S_TUPLES = 128_000_000
THREADS = 10
PARTITIONS = 8192


def crossover_table() -> ExperimentTable:
    cpu = CpuCostModel()
    bp = BuildProbeCostModel()
    npo = NoPartitionCostModel()
    rows = []
    for r_tuples in R_SIZES:
        partition_seconds = cpu.partitioning_seconds(
            r_tuples + S_TUPLES, THREADS, num_partitions=PARTITIONS
        )
        radix_total = (
            partition_seconds
            + bp.estimate(
                r_tuples, S_TUPLES, PARTITIONS, threads=THREADS
            ).total_seconds
        )
        npo_estimate = npo.estimate(r_tuples, S_TUPLES, threads=THREADS)
        rows.append(
            [
                f"{r_tuples / 1e6:.2f}M",
                radix_total,
                npo_estimate.total_seconds,
                "in-L3" if npo_estimate.in_cache else "spills",
                "radix" if radix_total < npo_estimate.total_seconds else "NPO",
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=f"Radix join vs non-partitioned join, |S| = 128M, "
        f"{THREADS} threads",
        headers=["|R|", "radix total s", "NPO total s", "NPO table", "winner"],
        rows=rows,
        note="NPO out-of-cache cost = Table 1's single-thread random "
        "line rate x threads; crossover sits where 2x|R| tuples "
        f"outgrow the {CPU_L3_BYTES // 2**20} MB L3.",
    )


def test_npo_crossover(benchmark):
    table = benchmark(crossover_table)
    table.emit()

    winners = table.column("winner")
    cache_states = table.column("NPO table")
    shape_check(
        winners[0] == "NPO",
        EXPERIMENT,
        "a cache-resident build side favours skipping the partition pass",
    )
    shape_check(
        winners[-1] == "radix",
        EXPERIMENT,
        "[31]'s finding: radix wins for large relations",
    )
    # the winner flips exactly once along the sweep
    flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
    shape_check(flips == 1, EXPERIMENT, "a single crossover point")
    shape_check(
        all(
            (w == "NPO") <= (c == "in-L3")
            for w, c in zip(winners, cache_states)
        ),
        EXPERIMENT,
        "NPO only wins while its table is cache-resident",
    )
