"""Shared fixtures for the per-figure benchmarks.

All benchmarks run on scaled-down data (the ``SCALE`` divisor below)
while evaluating the calibrated timing models at the paper's full
relation sizes, so the printed tables are directly comparable to the
paper's figures.  Set ``REPRO_BENCH_SCALE`` to change the data scale.
"""

import os

import pytest

from repro.workloads.relations import WORKLOAD_SPECS, make_workload

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "20000"))

PAPER_SIZES = {
    name: (spec.r_tuples, spec.s_tuples) for name, spec in WORKLOAD_SPECS.items()
}


@pytest.fixture(scope="session")
def workload_a():
    return make_workload("A", scale=SCALE)


@pytest.fixture(scope="session")
def workload_b():
    return make_workload("B", scale=SCALE)


@pytest.fixture(scope="session")
def workload_c():
    return make_workload("C", scale=SCALE)


@pytest.fixture(scope="session")
def workload_d():
    return make_workload("D", scale=SCALE)


@pytest.fixture(scope="session")
def workload_e():
    return make_workload("E", scale=SCALE)
