"""Figure 12 — join time under different key distributions (C, D, E).

Each workload is joined three ways: CPU radix partitioning, CPU hash
partitioning, and hybrid with FPGA hash partitioning.  The functional
joins run on scaled data (all three must agree on the match count);
the build+probe *timing* is evaluated from the full-scale partition
histograms, streamed over the paper's 128e6 keys, because the grid
distributions' imbalance depends on the absolute relation size.

Shape expectations (Section 5.3):

* workload C (random keys): hash partitioning buys the build+probe
  phase nothing — radix already spreads random keys;
* workloads D/E (grid / reverse grid): hash partitioning improves
  build+probe (paper: 11% on D, 35% on E at 10 threads);
* CPU *partitioning* is slower with hash at 1 thread (up to ~50%) but
  free at 10 threads (memory bound);
* the FPGA computes the robust hash at no extra cost.
"""

import functools
import os

import pytest

from repro.analysis.histogram import partition_histogram_streamed
from repro.bench import ExperimentTable, shape_check
from repro.core.model import FpgaCostModel
from repro.core.modes import HashKind, OutputMode, PartitionerConfig
from repro.cpu.cost_model import CpuCostModel
from repro.join.build_probe import BuildProbeCostModel
from repro.join.radix_join import cpu_radix_join
from repro.join.hybrid_join import hybrid_join
from repro.workloads.relations import WORKLOAD_SPECS, make_workload

EXPERIMENT = "Figure 12"
THREADS = (1, 10)
NUM_PARTITIONS = 8192
SCALE = int(os.environ.get("REPRO_BENCH_FIG12_SCALE", "20000"))


@functools.lru_cache(maxsize=None)
def full_scale_shares(name: str, use_hash: bool):
    spec = WORKLOAD_SPECS[name]
    counts = partition_histogram_streamed(
        spec.distribution,
        spec.r_tuples,
        NUM_PARTITIONS,
        use_hash=use_hash,
        seed=11,
    )
    return counts / counts.sum()


def build_probe_seconds(name: str, use_hash: bool, threads: int,
                        fpga_partitioned: bool) -> float:
    spec = WORKLOAD_SPECS[name]
    shares = full_scale_shares(name, use_hash)
    estimate = BuildProbeCostModel().estimate(
        r_tuples=spec.r_tuples,
        s_tuples=spec.s_tuples,
        num_partitions=NUM_PARTITIONS,
        threads=threads,
        fpga_partitioned=fpga_partitioned,
        r_shares=shares,
        s_shares=shares,
    )
    return estimate.total_seconds


def figure12_table(name: str) -> ExperimentTable:
    spec = WORKLOAD_SPECS[name]
    n = spec.r_tuples + spec.s_tuples
    cpu_model = CpuCostModel()
    fpga_model = FpgaCostModel()
    fpga_config = PartitionerConfig(
        num_partitions=NUM_PARTITIONS,
        output_mode=OutputMode.PAD,
        hash_kind=HashKind.MURMUR,
    )
    rows = []
    for threads in THREADS:
        part = {
            kind: cpu_model.partitioning_seconds(
                n,
                threads,
                hash_kind=kind,
                distribution=spec.distribution,
                num_partitions=NUM_PARTITIONS,
            )
            for kind in (HashKind.RADIX, HashKind.MURMUR)
        }
        fpga_part = fpga_model.partitioning_seconds(
            n, fpga_config, calibrated=True
        )
        rows.append(
            [
                threads,
                part[HashKind.RADIX],
                build_probe_seconds(name, False, threads, False),
                part[HashKind.MURMUR],
                build_probe_seconds(name, True, threads, False),
                fpga_part,
                build_probe_seconds(name, True, threads, True),
            ]
        )
    return ExperimentTable(
        experiment_id=f"{EXPERIMENT} ({name})",
        title=f"Join time by partitioning method, workload {name}",
        headers=[
            "threads",
            "cpu radix part s",
            "b+p (radix) s",
            "cpu hash part s",
            "b+p (hash) s",
            "fpga hash part s",
            "hyb b+p s",
        ],
        rows=rows,
        note="Build+probe timed from the full-scale (128e6-key) "
        "partition histograms, streamed.",
    )


@pytest.mark.parametrize("name", ["C", "D", "E"])
def test_figure12_distributions(benchmark, name):
    table = benchmark.pedantic(
        figure12_table, args=(name,), rounds=1, iterations=1
    )
    table.emit()

    one_thread, ten_threads = table.rows

    # CPU hash partitioning costs extra at 1 thread, nothing at 10.
    shape_check(
        float(one_thread[3]) > 1.3 * float(one_thread[1]),
        EXPERIMENT,
        f"{name}: 1-thread hash partitioning is ~50% slower",
    )
    shape_check(
        abs(float(ten_threads[3]) - float(ten_threads[1]))
        / float(ten_threads[1])
        < 0.02,
        EXPERIMENT,
        f"{name}: hash costs nothing at 10 threads (memory bound)",
    )

    bp_radix = float(ten_threads[2])
    bp_hash = float(ten_threads[4])
    improvement = (bp_radix - bp_hash) / bp_radix
    if name == "C":
        shape_check(
            abs(improvement) < 0.05,
            EXPERIMENT,
            "C: random keys gain nothing from hash partitioning",
        )
    elif name == "D":
        shape_check(
            0.05 < improvement < 0.25,
            EXPERIMENT,
            f"D: hash partitioning improves build+probe (~11% in the "
            f"paper; got {improvement:.0%})",
        )
    else:
        shape_check(
            0.2 < improvement < 0.6,
            EXPERIMENT,
            f"E: reverse grid benefits most (~35% in the paper; got "
            f"{improvement:.0%})",
        )


@pytest.mark.parametrize("name", ["C", "D", "E"])
def test_figure12_functional_agreement(benchmark, name):
    """All three partitioning methods must produce the same join
    result on the (scaled) data."""
    workload = make_workload(name, scale=SCALE)

    def run():
        radix = cpu_radix_join(
            workload, NUM_PARTITIONS, threads=2, hash_kind=HashKind.RADIX
        )
        hashed = cpu_radix_join(
            workload, NUM_PARTITIONS, threads=2, hash_kind=HashKind.MURMUR
        )
        fpga = hybrid_join(
            workload,
            PartitionerConfig(
                num_partitions=NUM_PARTITIONS, output_mode=OutputMode.PAD
            ),
            threads=2,
        )
        return radix.matches, hashed.matches, fpga.matches

    radix_matches, hash_matches, fpga_matches = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    shape_check(
        radix_matches == hash_matches == fpga_matches,
        EXPERIMENT,
        "radix, hash and FPGA joins agree on the match count",
    )
