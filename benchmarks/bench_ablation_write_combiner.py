"""Ablation — what the write combiner buys (Section 4.2).

The paper's arithmetic: without write combining, every tuple entering a
partition costs a 64 B read + 64 B write of its destination cache line
— ``(64 + 64) * T`` bytes; with combining the writes shrink to
``64 * T / 8``, a 16x total-traffic reduction for 8 B tuples.  This
benchmark regenerates that table across tuple widths, from both the
naive-scatter model and the measured byte counters of the functional
partitioner, including the dummy-padding overhead combining introduces.
"""

import numpy as np

from repro.bench import ExperimentTable, shape_check
from repro.core.modes import OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.cpu.naive import naive_partition
from repro.workloads.distributions import random_keys

EXPERIMENT = "Ablation: write combiner"
N = 200_000


def ablation_table() -> ExperimentTable:
    keys = random_keys(N, seed=3)
    payloads = np.arange(N, dtype=np.uint32)
    rows = []
    for width in (8, 16, 32, 64):
        _, _, _, naive_stats = naive_partition(
            keys, payloads, 256, tuple_bytes=width
        )
        config = PartitionerConfig(
            num_partitions=256,
            tuple_bytes=width,
            output_mode=OutputMode.PAD,
        )
        combined = FpgaPartitioner(config).partition(keys, payloads)
        rows.append(
            [
                f"{width}B",
                naive_stats.scatter_bytes / 1e6,
                combined.bytes_written / 1e6,
                naive_stats.scatter_bytes / combined.bytes_written,
                100 * combined.padding_fraction,
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="Scatter traffic with and without write combining "
        f"({N} tuples, 256 partitions)",
        headers=[
            "tuple",
            "naive RMW MB",
            "combined MB",
            "reduction x",
            "padding %",
        ],
        rows=rows,
        note="Naive = fetch + write back one cache line per tuple; "
        "combined = the partitioner's measured write bytes including "
        "dummy padding.",
    )


def test_write_combining_traffic_reduction(benchmark):
    table = benchmark(ablation_table)
    table.emit()

    reductions = [float(row[3]) for row in table.rows]
    shape_check(
        reductions[0] > 14.0,
        EXPERIMENT,
        "8 B tuples see ~16x traffic reduction (padding costs a little)",
    )
    shape_check(
        reductions == sorted(reductions, reverse=True),
        EXPERIMENT,
        "the gain shrinks as tuples widen (fewer tuples per line)",
    )
    shape_check(
        float(table.rows[-1][3]) <= 2.01,
        EXPERIMENT,
        "64 B tuples cap at 2x (write combining only saves the read)",
    )
    shape_check(
        all(float(row[4]) < 10 for row in table.rows),
        EXPERIMENT,
        "dummy padding stays under 10% at this partition density",
    )
