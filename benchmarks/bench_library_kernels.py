"""Library-kernel regression benchmarks.

Not a paper figure: these time the reproduction's own hot kernels —
the vectorised murmur finalizer, functional partitioning, the
bucket-chaining probe, group-by aggregation, and the cycle simulator's
tuples/second — so performance regressions in the library itself are
caught.  Throughput assertions are deliberately loose (an order of
magnitude below typical) to avoid flaky failures on slow machines.
"""

import numpy as np
import pytest

from repro.core.hashing import murmur3_finalizer
from repro.core.circuit import PartitionerCircuit
from repro.core.modes import OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.join.hash_table import BucketChainingHashTable
from repro.ops import partitioned_groupby
from repro.workloads.distributions import random_keys

N = 1_000_000


@pytest.fixture(scope="module")
def keys():
    return random_keys(N, seed=3)


@pytest.fixture(scope="module")
def payloads():
    return np.arange(N, dtype=np.uint32)


def test_murmur_throughput(benchmark, keys):
    result = benchmark(murmur3_finalizer, keys)
    assert result.shape == keys.shape


def test_functional_partitioner_throughput(benchmark, keys, payloads):
    partitioner = FpgaPartitioner(
        PartitionerConfig(num_partitions=1024, output_mode=OutputMode.HIST)
    )
    out = benchmark(partitioner.partition, keys, payloads)
    assert out.num_tuples == N


def test_hash_table_build_and_probe(benchmark, keys):
    build_keys = keys[: N // 4]

    def run():
        table = BucketChainingHashTable(build_keys)
        return table.probe(keys[: N // 4])

    probe_idx, _, _ = benchmark(run)
    assert probe_idx.shape[0] >= build_keys.shape[0] * 0.9


def test_groupby_throughput(benchmark, keys):
    values = np.ones(N, dtype=np.uint32)
    grouped_keys = (keys % np.uint32(10000)).astype(np.uint32)
    result = benchmark(
        partitioned_groupby, grouped_keys, values, "sum", 256
    )
    assert int(result.values.sum()) == N


def test_cycle_simulator_rate(benchmark, keys, payloads):
    """The cycle simulator's own speed (simulated tuples per wall
    second) — it must stay usable for test-sized inputs."""
    config = PartitionerConfig(
        num_partitions=16, output_mode=OutputMode.PAD, pad_tuples=8192
    )
    small_keys = keys[:4096]
    small_payloads = payloads[:4096]

    def run():
        return PartitionerCircuit(config).run(small_keys, small_payloads)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert sum(len(k) for k in result.partitions_keys) == 4096
