"""Tracing overhead benchmark — the observability layer's cost contract.

Drives the open-loop service-load workload of
``bench_service_load.py`` three ways:

* **untraced** — no tracer argument anywhere (the pre-observability
  code path);
* **null** — an explicit :class:`~repro.obs.tracing.NullTracer` wired
  through the stack, measuring what the instrumentation *points* cost
  when tracing is off (the answer the <2% acceptance criterion is
  about);
* **traced** — a real :class:`~repro.obs.tracing.Tracer`, measuring
  the full price of span recording (informational; tracing on is
  expected to cost real time).

Each configuration runs ``--rounds`` times with the order rotated
every round (A,B,C / B,C,A / ...) so positional drift hits all three
equally, and overhead is the **median of per-round paired ratios**
(``1 - other/untraced`` within the same round), which cancels drift
between rounds.  Even so, scheduler noise on a shared box resolves the
end-to-end comparison to only a few percent — repeated runs land
anywhere in roughly ±7% — so the <2% acceptance budget is validated by
a second, deterministic measurement: the per-request wall cost of the
exact disabled-path instrumentation operations (attribute checks,
no-op spans, no-op events), micro-timed in isolation and expressed as
a fraction of the measured untraced request time.  That bound is
stable to well under 0.1% and is what the table's note reports
against the budget.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py
"""

import argparse
import statistics
import time
from typing import Optional, Sequence

from repro.bench import ExperimentTable, shape_check, write_json_artifact
from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.service import PartitionService

from bench_service_load import DEFAULT_BATCH, make_requests

EXPERIMENT = "Trace overhead"

#: the acceptance bar: tracing *disabled* must stay within this
#: fraction of untraced throughput
OVERHEAD_BUDGET = 0.02

DEFAULT_REQUESTS = 400
QUICK_REQUESTS = 120


#: back-to-back submit/drain passes folded into one timed sample; a
#: single pass is ~50 ms of wall time, which thread-scheduling noise
#: dominates — several passes through one service amortise it
PASSES_PER_SAMPLE = 5


def _run_once(requests, tracer) -> float:
    """One timed sample (several open-loop passes); requests/second."""
    service = PartitionService(
        max_queue_requests=len(requests) + 1,
        max_batch_requests=DEFAULT_BATCH,
        linger_s=0.0,
        tracer=tracer,
    )
    with service:
        start = time.perf_counter()
        for _ in range(PASSES_PER_SAMPLE):
            tickets = [service.submit(request) for request in requests]
            for ticket in tickets:
                response = ticket.result(timeout=600)
                assert response.ok
        elapsed = time.perf_counter() - start
    return PASSES_PER_SAMPLE * len(requests) / elapsed


def disabled_cost_per_request_s() -> float:
    """Deterministic wall cost of the disabled-path instrumentation.

    Micro-times exactly the operations a request passes through when
    tracing is off — ``tracer.enabled`` checks, ``span is not None``
    guards, a no-op scheduler event, and the per-batch no-op spans
    amortised over ``DEFAULT_BATCH`` requests.  Unlike the end-to-end
    throughput comparison this is stable to nanoseconds, so it is the
    number the <2% budget is checked against.
    """
    tracer = NULL_TRACER
    span = None
    per_request_iters = 200_000
    start = time.perf_counter()
    for _ in range(per_request_iters):
        if tracer.enabled:  # submit's start_span gate
            pass
        if span is not None:  # queue_wait record guard
            pass
        if span is not None:  # resolution end guard
            pass
        tracer.add_event(  # scheduler coalesce event
            "scheduler.coalesce", batch=0, requests=1, tuples=0
        )
    per_request = (time.perf_counter() - start) / per_request_iters

    per_batch_iters = 50_000
    start = time.perf_counter()
    for _ in range(per_batch_iters):
        with tracer.span("schedule") as s:
            s.set_attributes(requests=64, batches=1)
        with tracer.span("batch", requests=64, tuples=0, split=False):
            pass
        with tracer.span("execute") as s:
            s.set_attributes(backend="fpga", attempts=1, degraded=False)
        with tracer.span("resolve", requests=64):
            pass
        with tracer.span(
            "fpga.partition_many", requests=64, tuples=0,
            partitions=64, mode="PAD/VRID",
        ) as s:
            s.set_attributes(bytes_read=0, bytes_written=0)
    per_batch = (time.perf_counter() - start) / per_batch_iters
    return per_request + per_batch / DEFAULT_BATCH


def overhead_table(
    requests: Optional[int] = None,
    rounds: int = 11,
    quick: bool = False,
) -> ExperimentTable:
    """Throughput untraced vs null-traced vs fully traced.

    Individual paired ratios on a shared box swing +-10-20%; the
    median over ``rounds`` pairs converges, so the default round
    count is deliberately odd-and-large rather than 3.
    """
    count = requests or (QUICK_REQUESTS if quick else DEFAULT_REQUESTS)
    stream = make_requests(count)
    configs = (
        ("untraced", lambda: None),
        ("null", NullTracer),
        ("traced", Tracer),
    )
    samples = {label: [] for label, _ in configs}
    _run_once(stream, None)  # warm-up: imports, allocator, caches
    for round_index in range(rounds):
        # rotate the order every round so positional drift (thermal,
        # allocator state) is shared instead of biasing one config
        for offset in range(len(configs)):
            label, make_tracer = configs[
                (round_index + offset) % len(configs)
            ]
            samples[label].append(_run_once(stream, make_tracer()))
    def paired_overhead(label: str) -> float:
        """Median over rounds of ``1 - label/untraced`` (same round)."""
        return statistics.median(
            1.0 - sample / baseline
            for sample, baseline in zip(
                samples[label], samples["untraced"]
            )
        )

    rows = [
        [
            label,
            len(samples[label]),
            statistics.median(samples[label]),
            max(samples[label]),
            100.0 * paired_overhead(label),
        ]
        for label, _ in configs
    ]
    disabled_overhead = paired_overhead("null")
    cost_s = disabled_cost_per_request_s()
    request_s = 1.0 / statistics.median(samples["untraced"])
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=(
            f"{count} open-loop requests x {rounds} rounds: "
            "tracing off must be free, tracing on pays for what it keeps"
        ),
        headers=["tracer", "rounds", "median req/s", "best req/s",
                 "overhead %"],
        rows=rows,
        note=(
            f"deterministic disabled-path cost {cost_s * 1e9:.0f} "
            f"ns/request = {100 * cost_s / request_s:.3f}% of request "
            f"time (budget {100 * OVERHEAD_BUDGET:.0f}%); end-to-end "
            f"paired overhead {100 * disabled_overhead:.2f}% "
            "(scheduler-noise resolution ~7%)"
        ),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Script entry point: print the table, write the JSON artifact."""
    parser = argparse.ArgumentParser(description="tracing overhead")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=11)
    parser.add_argument("--output", default="BENCH_trace_overhead.json")
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    table = overhead_table(
        requests=args.requests, rounds=args.rounds, quick=args.quick
    )
    print(table.render())
    written = write_json_artifact(args.output, [table])
    print(f"\nwrote {written}")
    return 0


def test_trace_overhead_quick(benchmark):
    """Benchmark-harness entry: disabled tracing stays within budget."""
    table = benchmark.pedantic(
        lambda: overhead_table(quick=True, rounds=3), rounds=1, iterations=1
    )
    table.emit()
    by_label = {row[0]: row for row in table.rows}
    # the budget check uses the deterministic micro-measurement: the
    # end-to-end paired column is context only (scheduler noise on a
    # shared box swamps a 2% effect), while the instrumentation-point
    # cost against the measured untraced request time is stable
    request_s = 1.0 / by_label["untraced"][2]
    shape_check(
        disabled_cost_per_request_s() / request_s < OVERHEAD_BUDGET,
        EXPERIMENT,
        "disabled-path instrumentation must cost <2% of request time",
    )


if __name__ == "__main__":
    raise SystemExit(main())
