"""Service-layer load benchmark — batching scheduler vs naive dispatch.

Drives a :class:`~repro.service.service.PartitionService` with the
workload the service layer was built for: a high-rate stream of small
mixed-size partition requests (the "many concurrent clients, modest
relations" regime where per-call fixed costs dominate).  Two load
shapes:

* **open loop** — all requests submitted up front, arrival rate
  independent of completion (the saturating inference-server drill);
* **closed loop** — K client threads, each waiting for its response
  before sending the next (latency-oriented).

Each shape runs against two service configurations:

* **naive** — ``max_batch_requests=1``: one engine invocation per
  request, the baseline any serving tier starts from;
* **batched** — the :class:`~repro.service.scheduler.BatchingScheduler`
  coalescing up to 64 compatible requests into one
  ``partition_many`` kernel pass (one hash, one histogram, one radix
  sort for the whole batch).

Every batched response is compared byte-for-byte against a direct
:class:`~repro.core.partitioner.FpgaPartitioner` call — the speedup
only counts if correctness divergence is exactly zero.

Run as a script to write the standard JSON artifact::

    PYTHONPATH=src python benchmarks/bench_service_load.py \
        --output BENCH_service.json

or quick sizes via the CLI registry: ``python -m repro experiment
service``.
"""

import argparse
import threading
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bench import ExperimentTable, shape_check, write_json_artifact
from repro.core.modes import PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.service import (
    PartitionRequest,
    PartitionService,
    Priority,
    RequestStatus,
)

EXPERIMENT = "Service load"

#: acceptance-criteria workload: 1k mixed-size requests, fan-out 64
DEFAULT_REQUESTS = 1000
DEFAULT_SIZE_RANGE = (256, 4096)
DEFAULT_PARTITIONS = 64
DEFAULT_BATCH = 64

#: quick-mode sizes for smoke tests and the CLI experiment registry
QUICK_REQUESTS = 120

_PRIORITIES = (Priority.LOW, Priority.NORMAL, Priority.HIGH)


def make_requests(
    count: int,
    size_range: Tuple[int, int] = DEFAULT_SIZE_RANGE,
    num_partitions: int = DEFAULT_PARTITIONS,
    seed: int = 0,
) -> List[PartitionRequest]:
    """A mixed-size, mixed-priority request stream (deterministic)."""
    rng = np.random.default_rng(seed)
    config = PartitionerConfig(num_partitions=num_partitions)
    sizes = rng.integers(size_range[0], size_range[1], size=count)
    return [
        PartitionRequest(
            relation=rng.integers(
                0, 2**32, size=int(size), dtype=np.uint64
            ).astype(np.uint32),
            config=config,
            priority=_PRIORITIES[i % len(_PRIORITIES)],
        )
        for i, size in enumerate(sizes)
    ]


def _make_service(batched: bool, queue_slack: int) -> PartitionService:
    if batched:
        return PartitionService(
            max_queue_requests=queue_slack,
            max_batch_requests=DEFAULT_BATCH,
            linger_s=0.0,
        )
    return PartitionService(
        max_queue_requests=queue_slack, max_batch_requests=1, linger_s=0.0
    )


def run_open_loop(
    requests: Sequence[PartitionRequest], batched: bool
) -> Tuple[float, list, PartitionService]:
    """Submit everything up front; returns (seconds, responses, service)."""
    with _make_service(batched, queue_slack=len(requests) + 1) as service:
        start = time.perf_counter()
        tickets = [service.submit(request) for request in requests]
        responses = [ticket.result(timeout=600) for ticket in tickets]
        elapsed = time.perf_counter() - start
    return elapsed, responses, service


def run_closed_loop(
    requests: Sequence[PartitionRequest], batched: bool, clients: int = 8
) -> Tuple[float, list, PartitionService]:
    """K clients, one outstanding request each."""
    responses = [None] * len(requests)

    def client(worker: int, service: PartitionService) -> None:
        for index in range(worker, len(requests), clients):
            ticket = service.submit(requests[index])
            responses[index] = ticket.result(timeout=600)

    with _make_service(batched, queue_slack=len(requests) + 1) as service:
        start = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(w, service))
            for w in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    return elapsed, responses, service


def count_divergences(
    requests: Sequence[PartitionRequest], responses: Sequence
) -> int:
    """Outputs that differ from a direct solo partitioner call."""
    reference: dict = {}
    divergences = 0
    for request, response in zip(requests, responses):
        if response.status is not RequestStatus.OK:
            divergences += 1
            continue
        partitioner = reference.get(request.config)
        if partitioner is None:
            partitioner = FpgaPartitioner(request.config)
            reference[request.config] = partitioner
        direct = partitioner.partition(request.relation, request.payloads)
        same = np.array_equal(response.output.counts, direct.counts) and all(
            np.array_equal(a, b)
            for a, b in zip(
                response.output.partition_keys, direct.partition_keys
            )
        ) and all(
            np.array_equal(a, b)
            for a, b in zip(
                response.output.partition_payloads,
                direct.partition_payloads,
            )
        )
        divergences += 0 if same else 1
    return divergences


def service_table(
    requests: Optional[int] = None,
    size_range: Tuple[int, int] = DEFAULT_SIZE_RANGE,
    num_partitions: int = DEFAULT_PARTITIONS,
    quick: bool = False,
    verify: bool = True,
) -> ExperimentTable:
    """Naive vs batched dispatch, open and closed loop."""
    count = requests or (QUICK_REQUESTS if quick else DEFAULT_REQUESTS)
    stream = make_requests(count, size_range, num_partitions)
    rows = []
    open_rps = {}
    for label, runner in (("open", run_open_loop), ("closed", run_closed_loop)):
        for batched in (False, True):
            elapsed, responses, service = runner(stream, batched)
            divergences = (
                count_divergences(stream, responses) if verify else -1
            )
            snapshot = service.metrics.to_dict()
            mode = "batched" if batched else "naive"
            if label == "open":
                open_rps[mode] = count / elapsed
            rows.append(
                [
                    label,
                    mode,
                    count,
                    snapshot["counters"]["completed"],
                    count / elapsed,
                    service.metrics.mean_batch_size(),
                    1e3 * snapshot["latency"]["total"]["p95_s"],
                    divergences,
                ]
            )
    speedup = open_rps["batched"] / open_rps["naive"]
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=(
            f"{count} requests of {size_range[0]}-{size_range[1]} tuples, "
            f"fan-out {num_partitions}: batching scheduler vs naive dispatch"
        ),
        headers=[
            "loop", "dispatch", "req", "ok", "req/s", "batch", "p95 ms",
            "diverged",
        ],
        rows=rows,
        note=f"open-loop batching speedup {speedup:.2f}x "
             f"(acceptance floor 2x); diverged must be 0",
    )


def write_artifact(
    path: str,
    requests: Optional[int] = None,
    quick: bool = False,
):
    """Measure and write the ``BENCH_service.json`` artifact."""
    table = service_table(requests=requests, quick=quick)
    by_mode = {f"{row[0]}/{row[1]}": row for row in table.rows}
    # one more batched open-loop run, kept for its full metrics export
    stream = make_requests(
        requests or (QUICK_REQUESTS if quick else DEFAULT_REQUESTS)
    )
    _, _, service = run_open_loop(stream, batched=True)
    extra = {
        "schema": "repro-bench/1",
        "benchmark": "service_load",
        "quick": quick,
        "requests": int(by_mode["open/naive"][2]),
        "open_naive_rps": float(by_mode["open/naive"][4]),
        "open_batched_rps": float(by_mode["open/batched"][4]),
        "batching_speedup": float(
            by_mode["open/batched"][4] / by_mode["open/naive"][4]
        ),
        "divergences": int(
            sum(row[7] for row in table.rows if row[7] > 0)
        ),
        "service_metrics": service.metrics.to_dict(),
    }
    written = write_json_artifact(path, [table], extra=extra)
    return written, table


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Script entry point: print the table, write the JSON artifact."""
    parser = argparse.ArgumentParser(
        description="partition-service load benchmark"
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--output", default="BENCH_service.json")
    parser.add_argument("--quick", action="store_true",
                        help="small request count for smoke testing")
    args = parser.parse_args(argv)
    written, table = write_artifact(
        args.output, requests=args.requests, quick=args.quick
    )
    print(table.render())
    print(f"\nwrote {written}")
    return 0


def test_service_load_quick(benchmark):
    """Benchmark-harness entry: quick-size service load table."""
    table = benchmark.pedantic(
        lambda: service_table(quick=True), rounds=1, iterations=1
    )
    table.emit()
    by_mode = {f"{row[0]}/{row[1]}": row for row in table.rows}
    shape_check(
        all(row[7] == 0 for row in table.rows),
        EXPERIMENT,
        "service outputs must match direct partitioner calls exactly",
    )
    shape_check(
        by_mode["open/batched"][4] > by_mode["open/naive"][4],
        EXPERIMENT,
        "batched dispatch must beat naive one-at-a-time dispatch",
    )


if __name__ == "__main__":
    raise SystemExit(main())
