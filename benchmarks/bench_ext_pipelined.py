"""Extension — sequential vs pipelined hybrid-join schedule.

Should the CPU start building over R's partitions while the FPGA is
still partitioning S?  Overlap hides work but drops both agents to
their interfered Figure 2 bandwidths.  This benchmark sweeps the
build+probe thread count and maps where each schedule wins — showing
the paper's sequential schedule is the right call for its 10-thread
configuration, and where that flips.
"""

from repro.bench import ExperimentTable, shape_check
from repro.join.pipelined_hybrid import pipelined_hybrid_timing

EXPERIMENT = "Extension: pipelined hybrid"
PAPER_N = 128 * 10**6
THREADS = (1, 2, 4, 8, 10)


def schedule_table() -> ExperimentTable:
    rows = []
    for threads in THREADS:
        timing = pipelined_hybrid_timing(PAPER_N, PAPER_N, threads=threads)
        rows.append(
            [
                threads,
                timing.sequential.total_seconds,
                timing.pipelined_seconds,
                timing.overlap_seconds,
                timing.interference_cost_seconds,
                "pipelined" if timing.worthwhile else "sequential",
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="Hybrid join schedules, workload A geometry (HIST/RID)",
        headers=[
            "threads",
            "sequential s",
            "pipelined s",
            "hidden s",
            "interference s",
            "winner",
        ],
        rows=rows,
        note="Overlap pays only while the CPU build is long enough to "
        "cover S's partitioning; at 10 threads the interference tax "
        "wins — the paper's sequential schedule is right for its "
        "configuration.",
    )


def test_schedule_crossover(benchmark):
    table = benchmark(schedule_table)
    table.emit()

    winners = dict(zip(table.column("threads"), table.column("winner")))
    shape_check(
        winners[1] == "pipelined" and winners[2] == "pipelined",
        EXPERIMENT,
        "overlap wins while the build phase is long",
    )
    shape_check(
        winners[10] == "sequential",
        EXPERIMENT,
        "the paper's 10-thread configuration prefers its sequential "
        "schedule",
    )
    hidden = [float(v) for v in table.column("hidden s")]
    shape_check(
        hidden == sorted(hidden, reverse=True),
        EXPERIMENT,
        "the hideable build shrinks monotonically with threads",
    )
