"""Hot-path kernel primitives — native (C) vs NumPy throughput.

Per-primitive single-thread throughput of the four inner kernels
behind :mod:`repro.kernels`:

1. ``hash_histogram``        — fused murmur hash + radix histogram;
2. ``hash_histogram+lanes``  — the same with the per-(partition, lane)
   matrix the FPGA cache-line accounting needs;
3. ``stable_scatter``        — sequential cursor scatter (the morsel
   engine's phase 2);
4. ``swwc_scatter``          — the scatter driven through cache-line
   software write-combine buffers (Code 2).

Each primitive is timed on both backends over identical inputs, so the
``speedup`` column is the native kernels' win over the vectorised
NumPy fallback at that fan-out.  Outputs are byte-identical by test
(``tests/test_kernels.py``); this benchmark only measures.

Run as a script to write the standard JSON artifact::

    PYTHONPATH=src python benchmarks/bench_kernels.py \
        --output BENCH_kernels.json

The pytest entry point uses benchmark-scaled sizes and skips the
native rows when no compiler is available.
"""

import argparse
import time
from typing import Optional, Sequence

import numpy as np

from repro import kernels
from repro.bench import ExperimentTable, shape_check, write_json_artifact
from repro.exec.morsels import parts_dtype

EXPERIMENT = "Kernel primitives"

DEFAULT_TUPLES = 1 << 22
QUICK_TUPLES = 1 << 16
DEFAULT_PARTITIONS = 256
DEFAULT_LANES = 8
DEFAULT_BUFFER_TUPLES = 16


def _make_input(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(np.uint32)
    payloads = np.arange(n, dtype=np.uint32)
    return keys, payloads


def _best_seconds(fn, repeats: int) -> float:
    fn()  # warm up (native: triggers the one-time build/load)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def kernels_table(
    tuples: Optional[int] = None,
    num_partitions: int = DEFAULT_PARTITIONS,
    repeats: int = 3,
    quick: bool = False,
) -> ExperimentTable:
    """Per-primitive Mtuples/s for every available backend."""
    if tuples is None:
        tuples = QUICK_TUPLES if quick else DEFAULT_TUPLES
    n = tuples
    keys, payloads = _make_input(n)
    parts = np.empty(n, dtype=parts_dtype(num_partitions))
    _, hist, _ = kernels.hash_histogram(
        keys, num_partitions, True, parts_out=parts
    )
    dest_base = np.zeros(num_partitions, dtype=np.int64)
    np.cumsum(hist[:-1], out=dest_base[1:])
    out_keys = np.empty(n, dtype=np.uint32)
    out_payloads = np.empty(n, dtype=np.uint32)

    primitives = [
        (
            "hash_histogram",
            lambda: kernels.hash_histogram(
                keys, num_partitions, True, parts_out=parts
            ),
        ),
        (
            "hash_histogram+lanes",
            lambda: kernels.hash_histogram(
                keys,
                num_partitions,
                True,
                lanes=DEFAULT_LANES,
                parts_out=parts,
            ),
        ),
        (
            "stable_scatter",
            lambda: kernels.stable_scatter(
                keys,
                payloads,
                parts,
                dest_base,
                num_partitions,
                out_keys,
                out_payloads,
            ),
        ),
        (
            "swwc_scatter",
            lambda: kernels.swwc_scatter(
                keys,
                payloads,
                parts,
                dest_base,
                num_partitions,
                DEFAULT_BUFFER_TUPLES,
                out_keys,
                out_payloads,
            ),
        ),
    ]

    backends = ["numpy"]
    if kernels.native_available():
        backends.insert(0, "native")

    rows = []
    numpy_seconds = {}
    for backend in reversed(backends):  # numpy first to fill the baseline
        with kernels.using_backend(backend):
            for name, fn in primitives:
                seconds = _best_seconds(fn, repeats)
                if backend == "numpy":
                    numpy_seconds[name] = seconds
                rows.append(
                    [
                        name,
                        backend,
                        seconds,
                        n / seconds / 1e6,
                        numpy_seconds[name] / seconds,
                    ]
                )
    rows.sort(key=lambda row: (row[0], row[1]))
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=f"kernel primitives, {n:,} tuples, "
        f"{num_partitions} partitions, single thread",
        headers=["primitive", "backend", "seconds", "Mtuples/s", "speedup"],
        rows=rows,
        note="speedup is native vs the NumPy fallback on identical "
        "inputs; outputs are byte-identical (tests/test_kernels.py).",
    )


def write_artifact(
    path: str,
    tuples: Optional[int] = None,
    quick: bool = False,
):
    """Measure the table and write the ``BENCH_kernels.json`` artifact."""
    table = kernels_table(tuples=tuples, quick=quick)
    native = {r[0]: float(r[3]) for r in table.rows if r[1] == "native"}
    numpy_rows = {r[0]: float(r[3]) for r in table.rows if r[1] == "numpy"}
    extra = {
        "schema": "repro-bench/1",
        "benchmark": "kernels",
        "quick": quick,
        "kernel_backend": kernels.backend_name(),
        "native_available": kernels.native_available(),
        "native_mtuples": native,
        "numpy_mtuples": numpy_rows,
        "native_speedup": {
            name: native[name] / numpy_rows[name]
            for name in native
            if numpy_rows.get(name)
        },
    }
    written = write_json_artifact(path, [table], extra=extra)
    return written, table


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Script entry point: print the table, write the JSON artifact."""
    parser = argparse.ArgumentParser(
        description="native vs NumPy kernel primitive throughput"
    )
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--output", default="BENCH_kernels.json")
    parser.add_argument("--quick", action="store_true",
                        help="tiny sizes for smoke testing")
    args = parser.parse_args(argv)
    written, table = write_artifact(
        args.output, tuples=args.tuples, quick=args.quick
    )
    print(table.render())
    print(f"\nwrote {written}")
    return 0


def test_kernels_quick(benchmark):
    """Benchmark-harness entry: quick-size kernel primitive table."""
    table = benchmark.pedantic(
        lambda: kernels_table(quick=True), rounds=1, iterations=1
    )
    table.emit()
    backends = {row[1] for row in table.rows}
    shape_check(
        "numpy" in backends,
        EXPERIMENT,
        "the NumPy fallback must always be measurable",
    )
    if kernels.native_available():
        shape_check(
            "native" in backends,
            EXPERIMENT,
            "native kernels are available but were not measured",
        )
        hash_rows = [
            float(row[4])
            for row in table.rows
            if row[0] == "hash_histogram" and row[1] == "native"
        ]
        shape_check(
            hash_rows and hash_rows[0] > 1.0,
            EXPERIMENT,
            "the fused native hash+histogram must beat NumPy dispatch",
        )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
