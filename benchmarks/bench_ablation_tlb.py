"""Ablation — TLB behaviour of the partitioning strategies (Section 3.1).

The two-sentence history of CPU partitioning, measured: the naive
scatter thrashes the TLB once the fan-out exceeds its reach; Manegold's
multi-pass scheme fixes the TLB at the price of re-scanning the data;
software-managed buffers fix it in a single pass.  The FPGA needs none
of this — its write combiner plays the buffers' role in hardware and
its own page table covers the whole working set (4 MB pages).
"""

from repro.bench import ExperimentTable, shape_check
from repro.cpu.tlb import (
    multipass_scatter_tlb_misses,
    naive_scatter_tlb_misses,
    swwc_scatter_tlb_misses,
)
from repro.workloads.distributions import random_keys

EXPERIMENT = "Ablation: TLB"
N = 30_000
FANOUTS = (16, 64, 256, 1024, 4096)


def tlb_table() -> ExperimentTable:
    keys = random_keys(N, seed=12)
    rows = []
    for fanout in FANOUTS:
        naive = naive_scatter_tlb_misses(keys, fanout)
        swwc = swwc_scatter_tlb_misses(keys, fanout)
        multipass = multipass_scatter_tlb_misses(keys, fanout, passes=2)
        rows.append(
            [
                fanout,
                naive.misses_per_tuple,
                swwc.misses_per_tuple,
                multipass.misses_per_tuple,
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=f"Scatter dTLB misses per tuple ({N} tuples, 64-entry "
        "TLB, 4 KB pages)",
        headers=[
            "fan-out",
            "naive (Code 1)",
            "SWWC (Code 2)",
            "2-pass [21]",
        ],
        rows=rows,
        note="Multi-pass pays its low misses with a full extra scan "
        "per pass (see the multi-pass ablation); SWWC gets both: one "
        "pass, bounded misses.",
    )


def test_tlb_ablation(benchmark):
    table = benchmark.pedantic(tlb_table, rounds=1, iterations=1)
    table.emit()

    by_fanout = {row[0]: row for row in table.rows}
    shape_check(
        float(by_fanout[16][1]) < 0.05,
        EXPERIMENT,
        "small fan-outs are TLB-resident for everyone",
    )
    shape_check(
        float(by_fanout[4096][1]) > 0.8,
        EXPERIMENT,
        "the naive scatter misses on nearly every tuple at 4096-way",
    )
    shape_check(
        float(by_fanout[4096][2]) < 0.35 * float(by_fanout[4096][1]),
        EXPERIMENT,
        "software-managed buffers cut the misses by several fold",
    )
    shape_check(
        float(by_fanout[4096][3]) < 0.05,
        EXPERIMENT,
        "two bounded passes keep each pass TLB-resident",
    )
    naive_col = [float(r[1]) for r in table.rows]
    shape_check(
        naive_col == sorted(naive_col),
        EXPERIMENT,
        "naive misses grow monotonically with fan-out",
    )
