"""Section 4.8 / Conclusion — the future-platform projection.

"The validated model shows that, if ... a high enough bandwidth around
25.6 GB/s [is provided] to the FPGA, the first term would define the
throughput, which will become 1.6 Billion tuples/s — 45% faster than
the highest absolute partitioning throughput reported by a 64-threaded
CPU solution."

This benchmark sweeps the link bandwidth through Equation 7 and locates
the crossover where the partitioner flips from memory-bound to
compute-bound, for PAD and HIST modes, plus the clocked-up what-if the
paper floats (the design hardened on the CPU die at GHz clocks).
"""

from repro.bench import ExperimentTable, shape_check
from repro.constants import FIGURE9_MEASURED_MTUPLES
from repro.core.model import FpgaCostModel
from repro.core.modes import OutputMode, PartitionerConfig
from repro.platform.bandwidth import BandwidthModel

EXPERIMENT = "Future platforms (Sec 4.8)"
BANDWIDTHS = (6.5, 12.8, 19.2, 25.6, 38.4, 51.2)
PAPER_N = 128 * 10**6


def _model_at(bandwidth_gbs: float, clock_hz: float = 200e6) -> FpgaCostModel:
    flat = BandwidthModel(
        fpga_points={0.0: bandwidth_gbs, 1.0: bandwidth_gbs}
    )
    return FpgaCostModel(bandwidth=flat, clock_hz=clock_hz)


def sweep_table() -> ExperimentTable:
    pad = PartitionerConfig(output_mode=OutputMode.PAD)
    hist = PartitionerConfig(output_mode=OutputMode.HIST)
    rows = []
    for bandwidth in BANDWIDTHS:
        model = _model_at(bandwidth)
        pad_pred = model.predict(pad, PAPER_N)
        hist_pred = model.predict(hist, PAPER_N)
        rows.append(
            [
                bandwidth,
                pad_pred.mtuples_per_second,
                "memory" if pad_pred.memory_bound else "circuit",
                hist_pred.mtuples_per_second,
                "memory" if hist_pred.memory_bound else "circuit",
            ]
        )
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title="Equation 7 across hypothetical link bandwidths "
        "(8 B tuples, 200 MHz)",
        headers=[
            "link GB/s",
            "PAD Mt/s",
            "PAD bound",
            "HIST Mt/s",
            "HIST bound",
        ],
        rows=rows,
        note="PAD saturates the circuit at 25.6 GB/s (1 read + 1 write "
        "line per cycle); beyond that only a faster clock helps.",
    )


def test_bandwidth_crossover(benchmark):
    table = benchmark(sweep_table)
    table.emit()

    by_bandwidth = {float(r[0]): r for r in table.rows}
    shape_check(
        by_bandwidth[6.5][2] == "memory",
        EXPERIMENT,
        "today's QPI leaves the partitioner memory bound",
    )
    shape_check(
        by_bandwidth[25.6][2] == "circuit",
        EXPERIMENT,
        "at 25.6 GB/s PAD becomes circuit bound",
    )
    shape_check(
        abs(float(by_bandwidth[25.6][1]) - 1593) < 20,
        EXPERIMENT,
        "...at ~1.6 Gtuples/s",
    )
    shape_check(
        float(by_bandwidth[25.6][1])
        > 1.4 * FIGURE9_MEASURED_MTUPLES["polychroniou_32cores"],
        EXPERIMENT,
        "45% above the best 32-core CPU number [27]",
    )
    shape_check(
        float(by_bandwidth[51.2][1]) == float(by_bandwidth[25.6][1]),
        EXPERIMENT,
        "extra bandwidth beyond the circuit rate buys nothing",
    )


def test_hardened_macro_projection(benchmark):
    """'If the provided design is hardened as a macro on the CPU die,
    which can then be clocked in the GHz range, one could expect an
    even higher throughput' — with bandwidth to match."""

    def run():
        pad = PartitionerConfig(output_mode=OutputMode.PAD)
        fpga_200mhz = _model_at(25.6).predict(pad, PAPER_N)
        # 2 GHz macro with proportionally scaled (on-die) bandwidth
        macro_2ghz = _model_at(256.0, clock_hz=2e9).predict(pad, PAPER_N)
        return fpga_200mhz, macro_2ghz

    fpga, macro = benchmark(run)
    shape_check(
        macro.tuples_per_second > 9 * fpga.tuples_per_second,
        EXPERIMENT,
        "a GHz-clocked macro scales the circuit rate ~10x",
    )
    shape_check(
        macro.mtuples_per_second > 10_000,
        EXPERIMENT,
        "near-memory integration projects past 10 Gtuples/s",
    )
