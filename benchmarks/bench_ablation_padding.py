"""Ablation — PAD-mode padding size vs skew tolerance (Section 5.4).

PAD mode trades intermediate memory for a single pass: every partition
gets ``n/fanout + padding`` slots, and "as the padding gets larger, the
partitioner becomes more robust against skew".  This benchmark maps the
overflow boundary: for each padding size (as a fraction of the fair
share), the largest Zipf factor that still fits — reproducing the
paper's observation that realistic paddings fail above ~0.25.
"""

import numpy as np

from repro.bench import ExperimentTable, shape_check
from repro.core.modes import OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.errors import PartitionOverflowError
from repro.workloads.distributions import zipf_keys

EXPERIMENT = "Ablation: PAD padding vs skew"
N = 262_144
NUM_PARTITIONS = 64
ZIPFS = (0.0, 0.25, 0.5, 0.75, 1.0)
PAD_FRACTIONS = (0.25, 0.5, 1.0, 2.0, 4.0)


def fits(zipf: float, pad_fraction: float) -> bool:
    keys = zipf_keys(N, zipf_factor=zipf, key_space=N, seed=9)
    fair = N // NUM_PARTITIONS
    config = PartitionerConfig(
        num_partitions=NUM_PARTITIONS,
        output_mode=OutputMode.PAD,
        pad_tuples=int(fair * pad_fraction),
    )
    try:
        FpgaPartitioner(config).partition(
            keys, np.arange(N, dtype=np.uint32)
        )
        return True
    except PartitionOverflowError:
        return False


def ablation_table() -> ExperimentTable:
    rows = []
    for pad_fraction in PAD_FRACTIONS:
        row = [f"{pad_fraction:.2f}x fair share"]
        for zipf in ZIPFS:
            row.append("fits" if fits(zipf, pad_fraction) else "OVERFLOW")
        rows.append(row)
    return ExperimentTable(
        experiment_id=EXPERIMENT,
        title=f"PAD-mode overflow map ({N} murmur-hashed Zipf keys, "
        f"{NUM_PARTITIONS} partitions)",
        headers=["padding"] + [f"zipf {z}" for z in ZIPFS],
        rows=rows,
        note="Section 5.4: PAD 'should happen very rarely and only "
        "under large skews with a Zipf factor of more than 0.25'.",
    )


def test_padding_skew_boundary(benchmark):
    table = benchmark.pedantic(ablation_table, rounds=1, iterations=1)
    table.emit()

    by_padding = {row[0]: row[1:] for row in table.rows}
    # unskewed input fits at every padding
    shape_check(
        all(row[0] == "fits" for row in by_padding.values()),
        EXPERIMENT,
        "uniform input always fits",
    )
    # small padding breaks under heavy skew
    smallest = table.rows[0][1:]
    shape_check(
        "OVERFLOW" in smallest,
        EXPERIMENT,
        "a small padding overflows under skew",
    )
    # robustness is monotone in the padding: once a (padding, zipf)
    # cell fits, every larger padding fits that zipf too
    for col in range(len(ZIPFS)):
        column = [row[1 + col] for row in table.rows]
        first_fit = next(
            (i for i, v in enumerate(column) if v == "fits"), len(column)
        )
        shape_check(
            all(v == "fits" for v in column[first_fit:]),
            EXPERIMENT,
            "larger padding is never less robust",
        )
