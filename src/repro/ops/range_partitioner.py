"""Range partitioning (the third strategy of [27]; Wu et al. [41]).

Range partitioning assigns tuple ``t`` to the partition whose key
interval contains ``t.key``, preserving global key order across
partitions — the property sort-based operators need and hash/radix
destroy.  The splitters are chosen equi-depth from a sample, so the
partitions come out balanced on *any* key distribution (like hashing,
unlike radix), at the cost of a search per tuple instead of a mask.

Wu et al. [41] built this as an ASIC (a pipelined comparator tree);
here the comparator tree is ``numpy.searchsorted``, which performs the
same binary search over the splitter array.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.core.hashing import fanout_bits
from repro.errors import ConfigurationError
from repro.workloads.relations import Relation


@dataclasses.dataclass
class RangePartitionedOutput:
    """Partitions plus the splitters that define them."""

    partition_keys: List[np.ndarray]
    partition_payloads: List[np.ndarray]
    counts: np.ndarray
    splitters: np.ndarray

    @property
    def num_partitions(self) -> int:
        return len(self.partition_keys)

    def partition(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """(keys, payloads) of one partition."""
        return self.partition_keys[index], self.partition_payloads[index]


class RangePartitioner:
    """Equi-depth range partitioner with sampled splitters.

    Args:
        num_partitions: fan-out (power of two, for parity with the
            other partitioners; the algorithm itself has no such
            constraint).
        sample_size: number of keys sampled to pick the splitters.
        seed: sampling seed.
    """

    def __init__(
        self,
        num_partitions: int = 256,
        sample_size: int = 16384,
        seed: int = 0,
    ):
        fanout_bits(num_partitions)
        if sample_size < num_partitions:
            raise ConfigurationError(
                f"sample_size {sample_size} must cover the "
                f"{num_partitions}-way fan-out"
            )
        self.num_partitions = num_partitions
        self.sample_size = sample_size
        self.seed = seed

    def choose_splitters(self, keys: np.ndarray) -> np.ndarray:
        """Equi-depth splitters from a uniform sample of the keys."""
        rng = np.random.default_rng(self.seed)
        n = keys.shape[0]
        if n <= self.sample_size:
            sample = np.sort(keys)
        else:
            sample = np.sort(
                rng.choice(keys, size=self.sample_size, replace=False)
            )
        positions = (
            np.arange(1, self.num_partitions)
            * sample.shape[0]
            // self.num_partitions
        )
        return sample[positions].astype(np.uint64)

    def partition(
        self,
        relation: Relation | np.ndarray,
        payloads: Optional[np.ndarray] = None,
    ) -> RangePartitionedOutput:
        """Partition by key ranges; partitions are globally ordered."""
        if isinstance(relation, Relation):
            keys, payloads = relation.keys, relation.payloads
        else:
            keys = np.ascontiguousarray(relation, dtype=np.uint32)
            if payloads is None:
                payloads = np.arange(keys.shape[0], dtype=np.uint32)
        if keys.shape[0] == 0:
            raise ConfigurationError("cannot partition an empty relation")

        splitters = self.choose_splitters(keys)
        # the ASIC's comparator tree == binary search over splitters
        parts = np.searchsorted(splitters, keys.astype(np.uint64), side="right")

        order = np.argsort(parts, kind="stable")
        counts = np.bincount(parts, minlength=self.num_partitions)
        bounds = np.zeros(self.num_partitions + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        sorted_keys = keys[order]
        sorted_payloads = payloads[order]
        partition_keys = [
            sorted_keys[bounds[p] : bounds[p + 1]]
            for p in range(self.num_partitions)
        ]
        partition_payloads = [
            sorted_payloads[bounds[p] : bounds[p + 1]]
            for p in range(self.num_partitions)
        ]
        return RangePartitionedOutput(
            partition_keys=partition_keys,
            partition_payloads=partition_payloads,
            counts=counts,
            splitters=splitters,
        )
