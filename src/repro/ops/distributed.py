"""Network-attached partitioning for distributed joins (Section 6).

The paper's second future-work use case: "have the FPGA partitioner
directly connected to the network to distribute the data across
machines using RDMA for highly scaled distributed joins" (Barthels et
al. [6, 7]).  The mechanics are the rack-scale radix join: every node
hash-partitions its local chunk of the relation, partition ``p`` is
owned by node ``p mod nodes`` (or contiguous ranges), and an all-to-all
exchange ships each partition to its owner; afterwards every node holds
a disjoint, complete slice of the key space and can join locally.

:class:`DistributedPartitioner` implements the plan (exchange matrix,
volumes, skew), the functional execution (verified against the
single-node partitioning), and a timing model where each node's
partitioning runs at the local partitioner rate (FPGA or CPU) and the
exchange runs at the per-node RDMA bandwidth — the paper's point being
that an FPGA at the NIC can partition at line rate while the data is
already in flight.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.core.model import FpgaCostModel
from repro.core.modes import PartitionerConfig
from repro.errors import ConfigurationError
from repro.workloads.relations import Relation


@dataclasses.dataclass
class ExchangePlan:
    """Who sends how much to whom."""

    nodes: int
    bytes_matrix: np.ndarray        # [sender, receiver] bytes
    partition_owner: np.ndarray     # partition -> node
    #: global per-partition tuple counts (summed over senders); the
    #: cluster router's placement policy consumes these as a skew
    #: signal, so the all-to-all planner's histogram is reused rather
    #: than recomputed
    partition_counts: Optional[np.ndarray] = None

    @property
    def total_bytes(self) -> int:
        off_diagonal = self.bytes_matrix.sum() - np.trace(self.bytes_matrix)
        return int(off_diagonal)

    @property
    def max_receiver_bytes(self) -> int:
        """The hot node's inbound volume — the exchange bottleneck."""
        inbound = self.bytes_matrix.sum(axis=0) - np.diag(self.bytes_matrix)
        return int(inbound.max())

    @property
    def receive_imbalance(self) -> float:
        """``max / mean`` inbound bytes across receivers (1.0 = flat).

        An all-local plan (every partition already on its owner, zero
        off-diagonal inbound everywhere) has ``mean == 0``; dividing
        would produce ``nan``/``inf`` or raise under strict numpy error
        state, so it is reported explicitly as the perfectly balanced
        1.0 — no node receives more than any other.
        """
        inbound = self.bytes_matrix.sum(axis=0) - np.diag(self.bytes_matrix)
        mean = float(inbound.mean())
        if mean <= 0.0:
            return 1.0
        return float(inbound.max() / mean)

    def exchange_seconds(self, link_gbs: float) -> float:
        """All-to-all time, bounded by the busiest inbound link."""
        if link_gbs <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        return self.max_receiver_bytes / (link_gbs * 1e9)


@dataclasses.dataclass
class DistributedResult:
    """Per-node partition slices after the exchange."""

    node_partition_keys: List[Dict[int, np.ndarray]]
    node_partition_payloads: List[Dict[int, np.ndarray]]
    plan: ExchangePlan

    def node_tuples(self, node: int) -> int:
        """Total tuples this node owns after the exchange."""
        return sum(
            int(k.shape[0]) for k in self.node_partition_keys[node].values()
        )


class DistributedPartitioner:
    """Partition-and-exchange across a cluster of nodes.

    Args:
        nodes: cluster size.
        config: local partitioner configuration (fan-out must be at
            least the node count).
        link_gbs: per-node RDMA bandwidth (e.g. 4.5 for FDR InfiniBand,
            the platform of [6]).
    """

    def __init__(
        self,
        nodes: int,
        config: Optional[PartitionerConfig] = None,
        link_gbs: float = 4.5,
    ):
        # validate eagerly and precisely: a float or bool node count
        # would otherwise survive until np.zeros() inside plan() and
        # die with an unrelated numpy TypeError
        if isinstance(nodes, bool) or not isinstance(nodes, (int, np.integer)):
            raise ConfigurationError(
                f"nodes must be an integer, got {nodes!r}"
            )
        if nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1, got {nodes}")
        self.nodes = int(nodes)
        self.config = config or PartitionerConfig(num_partitions=256)
        if self.config.num_partitions < nodes:
            raise ConfigurationError(
                f"{self.config.num_partitions} partitions cannot be "
                f"spread over {nodes} nodes"
            )
        if link_gbs <= 0:
            raise ConfigurationError(
                f"link bandwidth must be positive, got {link_gbs}"
            )
        self.link_gbs = link_gbs

    def owner_of(self, partition: int) -> int:
        """Round-robin partition ownership (the [6] assignment)."""
        return partition % self.nodes

    # ------------------------------------------------------------------

    def split_relation(self, relation: Relation) -> List[Relation]:
        """Deal the relation's tuples across nodes (row-wise chunks)."""
        n = len(relation)
        bounds = [n * i // self.nodes for i in range(self.nodes + 1)]
        return [
            Relation(
                keys=relation.keys[bounds[i] : bounds[i + 1]].copy(),
                payloads=relation.payloads[bounds[i] : bounds[i + 1]].copy(),
                tuple_bytes=relation.tuple_bytes,
                name=f"{relation.name}@node{i}",
            )
            for i in range(self.nodes)
        ]

    def plan(self, chunks: List[Relation]) -> ExchangePlan:
        """Exchange matrix from each node's local partition histogram.

        Runs the fused hash+histogram kernel per chunk (native dispatch
        when available) — planning needs only the counts, so no tuple
        is moved and no scatter is paid.
        """
        if len(chunks) != self.nodes:
            raise ConfigurationError(
                f"expected {self.nodes} chunks, got {len(chunks)}"
            )
        partitions = self.config.num_partitions
        owner = np.arange(partitions, dtype=np.int64) % self.nodes
        matrix = np.zeros((self.nodes, self.nodes), dtype=np.int64)
        partition_counts = np.zeros(partitions, dtype=np.int64)
        for sender, chunk in enumerate(chunks):
            if len(chunk) == 0:
                continue
            keys = np.ascontiguousarray(chunk.keys, dtype=np.uint32)
            _, counts, _ = kernels.hash_histogram(
                keys, partitions, self.config.uses_hash
            )
            counts = counts.astype(np.int64, copy=False)
            partition_counts += counts
            per_owner = np.bincount(
                owner, weights=counts.astype(np.float64),
                minlength=self.nodes,
            ).astype(np.int64)
            matrix[sender] += per_owner * chunk.tuple_bytes
        return ExchangePlan(
            nodes=self.nodes,
            bytes_matrix=matrix,
            partition_owner=owner,
            partition_counts=partition_counts,
        )

    def execute(self, chunks: List[Relation]) -> DistributedResult:
        """Partition every chunk locally and perform the exchange.

        The per-node functional partitioning runs on the compiled
        kernel primitives (fused hash+histogram, then one stable
        scatter per chunk) — the same data plane as
        :class:`~repro.core.partitioner.FpgaPartitioner`, so each
        chunk's per-partition slices are byte-identical to what a
        local ``partition()`` call would produce.
        """
        plan = self.plan(chunks)
        partitions = self.config.num_partitions
        node_keys: List[Dict[int, List[np.ndarray]]] = [
            {} for _ in range(self.nodes)
        ]
        node_payloads: List[Dict[int, List[np.ndarray]]] = [
            {} for _ in range(self.nodes)
        ]
        for chunk in chunks:
            if len(chunk) == 0:
                continue
            keys = np.ascontiguousarray(chunk.keys, dtype=np.uint32)
            payloads = np.ascontiguousarray(chunk.payloads, dtype=np.uint32)
            parts, counts, _ = kernels.hash_histogram(
                keys, partitions, self.config.uses_hash
            )
            counts = counts.astype(np.int64, copy=False)
            base = np.zeros(partitions, dtype=np.int64)
            np.cumsum(counts[:-1], out=base[1:])
            n = int(keys.shape[0])
            sorted_keys = np.empty(n, dtype=np.uint32)
            sorted_payloads = np.empty(n, dtype=np.uint32)
            kernels.stable_scatter(
                keys, payloads, parts, base, partitions,
                sorted_keys, sorted_payloads,
            )
            bounds = np.zeros(partitions + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            for p in np.nonzero(counts)[0]:
                p = int(p)
                owner = int(plan.partition_owner[p])
                node_keys[owner].setdefault(p, []).append(
                    sorted_keys[bounds[p]:bounds[p + 1]]
                )
                node_payloads[owner].setdefault(p, []).append(
                    sorted_payloads[bounds[p]:bounds[p + 1]]
                )
        merged_keys = [
            {p: np.concatenate(parts) for p, parts in per_node.items()}
            for per_node in node_keys
        ]
        merged_payloads = [
            {p: np.concatenate(parts) for p, parts in per_node.items()}
            for per_node in node_payloads
        ]
        return DistributedResult(
            node_partition_keys=merged_keys,
            node_partition_payloads=merged_payloads,
            plan=plan,
        )

    # ------------------------------------------------------------------

    def estimate_seconds(
        self,
        tuples_per_node: int,
        fpga_cost_model: Optional[FpgaCostModel] = None,
    ) -> Tuple[float, float]:
        """(partition_seconds, exchange_seconds) per node.

        With the partitioner at the NIC the two overlap; the paper's
        pitch is that partitioning at 400-500 Mtuples/s outruns the
        ~4.5 GB/s RDMA link, so the exchange fully hides it.
        """
        model = fpga_cost_model or FpgaCostModel()
        partition_seconds = model.partitioning_seconds(
            tuples_per_node, self.config, calibrated=True
        )
        send_fraction = (self.nodes - 1) / self.nodes
        exchange_bytes = (
            tuples_per_node * self.config.tuple_bytes * send_fraction
        )
        exchange_seconds = exchange_bytes / (self.link_gbs * 1e9)
        return partition_seconds, exchange_seconds
