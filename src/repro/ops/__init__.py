"""Operators built on top of the partitioner (Section 6).

The paper's discussion section points out that the partitioner is not
join-specific: "the partitioning we have described can also be used for
a hardware conscious group by aggregation [1] and in other operators
involving partitioning [27]".  This package provides two such
consumers:

* :func:`partitioned_groupby` — cache-conscious group-by aggregation
  driven by the FPGA (or CPU) partitioner;
* :class:`RangePartitioner` — the third partitioning flavour of
  Polychroniou et al. [27] (and the Wu et al. [41] ASIC), with
  sampled equi-depth splitters.
"""

from repro.ops.groupby import GroupByResult, partitioned_groupby
from repro.ops.range_partitioner import RangePartitioner

__all__ = ["partitioned_groupby", "GroupByResult", "RangePartitioner"]
