"""Partitioned group-by aggregation (Section 6, following [1]).

The same trick that makes the radix join fast makes aggregation fast:
hash-partition the input so each partition's group set fits in cache,
then aggregate each partition independently (every key lives in exactly
one partition, so no cross-partition merge is needed).

Supported aggregates: sum, count, min, max, mean — all computed
vectorised per partition.  Any partitioner exposing the
:class:`~repro.core.partitioner.PartitionedOutput` contract can drive
the partitioning step, so the FPGA and CPU partitioners are drop-in
interchangeable here exactly as they are for joins.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.modes import PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.errors import ConfigurationError
from repro.workloads.relations import Relation

_AGGREGATES: Dict[str, Callable] = {
    "sum": np.add.reduceat,
    "count": None,
    "min": np.minimum.reduceat,
    "max": np.maximum.reduceat,
    "mean": None,
}


@dataclasses.dataclass
class GroupByResult:
    """Aggregation output: one row per distinct key."""

    keys: np.ndarray
    values: np.ndarray
    aggregate: str
    num_partitions_used: int

    @property
    def num_groups(self) -> int:
        return int(self.keys.shape[0])

    def as_dict(self) -> Dict[int, float]:
        """Small-result convenience (tests, examples)."""
        return {int(k): v for k, v in zip(self.keys, self.values)}


def partitioned_groupby(
    keys: np.ndarray | Relation,
    values: Optional[np.ndarray] = None,
    aggregate: str = "sum",
    num_partitions: int = 256,
    partitioner: Optional[FpgaPartitioner] = None,
    engine=None,
    threads: Optional[int] = None,
    fused: bool = False,
) -> GroupByResult:
    """Group-by aggregation via hash partitioning.

    Args:
        keys: uint32 group keys, or a :class:`Relation` whose payloads
            are the values.
        values: the column to aggregate (defaults to the relation's
            payloads, or all-ones for ``count``).
        aggregate: one of ``sum``, ``count``, ``min``, ``max``, ``mean``.
        num_partitions: partitioning fan-out (power of two).
        partitioner: partitioner to drive the split; defaults to an
            FPGA partitioner in HIST mode with murmur hashing (the
            robust choice — grouped keys are exactly the structured
            inputs radix bits mishandle).
        engine: execution-engine spec, as the joins accept it — ``None``
            (sequential), ``"serial"``/``"parallel"``/``"thread"``/
            ``"process"``, or a shared
            :class:`~repro.exec.engine.ExecutionEngine`.  Drives both
            the partitioning morsels and the per-partition aggregation
            fan-out.  Ignored when ``partitioner`` is given (a supplied
            partitioner keeps its own engine) except for the
            aggregation fan-out.
        threads: worker count for string engine specs.
        fused: route through the plan layer's fused one-pass executor
            (:func:`repro.plan.execute_plan`) — partition and aggregate
            in a single morsel pass with no materialized
            ``PartitionedOutput``.  Identical rows either way.

    Returns:
        A :class:`GroupByResult` with one entry per distinct key,
        sorted by key.
    """
    if aggregate not in _AGGREGATES:
        raise ConfigurationError(
            f"unknown aggregate {aggregate!r}; "
            f"expected one of {sorted(_AGGREGATES)}"
        )
    if isinstance(keys, Relation):
        if values is None:
            values = keys.payloads
        keys = keys.keys
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    if values is None:
        values = np.ones(keys.shape[0], dtype=np.uint32)
    values = np.asarray(values)
    if values.shape != keys.shape:
        raise ConfigurationError("values must align with keys")

    from repro.exec.engine import resolve_engine

    engine = resolve_engine(engine, threads)

    if fused:
        from repro.plan import execute_plan, groupby_query

        config = (
            partitioner.config
            if partitioner is not None
            else PartitionerConfig(num_partitions=num_partitions)
        )
        result = execute_plan(
            groupby_query(keys, values=values, aggregate=aggregate,
                          config=config),
            engine=engine,
        )
        return GroupByResult(
            keys=result.group_keys,
            values=result.group_values,
            aggregate=aggregate,
            num_partitions_used=result.num_partitions,
        )

    if partitioner is None:
        partitioner = FpgaPartitioner(
            PartitionerConfig(num_partitions=num_partitions), engine=engine
        )
    else:
        num_partitions = partitioner.config.num_partitions

    # Partition <key, row-id> so values can be gathered per partition;
    # row ids play the role VRIDs play in the column-store mode.
    row_ids = np.arange(keys.shape[0], dtype=np.uint32)
    out = partitioner.partition(keys, row_ids)

    def _one(p: int):
        p_keys, p_rows = out.partition(p)
        if p_keys.shape[0] == 0:
            return None
        p_values = values[p_rows]
        uniques, starts = _group_starts(p_keys, p_values)
        return uniques, _aggregate_runs(
            aggregate, starts["values"], starts["bounds"]
        )

    if engine is not None:
        outcomes = engine.map_tasks(_one, range(out.num_partitions))
    else:
        outcomes = [_one(p) for p in range(out.num_partitions)]
    group_keys: List[np.ndarray] = [o[0] for o in outcomes if o is not None]
    group_values: List[np.ndarray] = [o[1] for o in outcomes if o is not None]

    if group_keys:
        all_keys = np.concatenate(group_keys)
        all_values = np.concatenate(group_values)
    else:
        all_keys = np.empty(0, dtype=np.uint32)
        all_values = np.empty(0)
    order = np.argsort(all_keys, kind="stable")
    return GroupByResult(
        keys=all_keys[order],
        values=all_values[order],
        aggregate=aggregate,
        num_partitions_used=num_partitions,
    )


def _group_starts(p_keys: np.ndarray, p_values: np.ndarray):
    """Sort one partition by key and find the run boundaries."""
    order = np.argsort(p_keys, kind="stable")
    sorted_keys = p_keys[order]
    sorted_values = p_values[order]
    boundaries = np.empty(sorted_keys.shape[0], dtype=bool)
    boundaries[0] = True
    boundaries[1:] = sorted_keys[1:] != sorted_keys[:-1]
    starts = np.nonzero(boundaries)[0]
    return sorted_keys[starts], {"values": sorted_values, "bounds": starts}


def _aggregate_runs(aggregate: str, values: np.ndarray, starts: np.ndarray):
    if aggregate == "count":
        ends = np.append(starts[1:], values.shape[0])
        return (ends - starts).astype(np.int64)
    if aggregate == "mean":
        sums = np.add.reduceat(values.astype(np.float64), starts)
        ends = np.append(starts[1:], values.shape[0])
        return sums / (ends - starts)
    if aggregate == "sum":
        return np.add.reduceat(values.astype(np.int64), starts)
    reducer = _AGGREGATES[aggregate]
    return reducer(values, starts)
