"""Skew-aware execution: heavy hitters get dedicated exact-fit regions.

Section 3.2's unavoidable fact is that every repeat of a key lands in
one partition, so a single hot key defeats PAD mode's fixed-capacity
regions: its partition overflows and the run aborts.  The classic
answer is to give up on PAD and rerun in HIST — paying the failed pass
*plus* the two-pass mode.  :func:`partition_isolated` does better when
the hot keys are known in advance (from the ingest sketches): the
partitions those keys hash into are carved out of the PAD grid and
given **exact-fit regions appended after it** — sized from the same
histogram pass PAD already runs — while every cold partition keeps its
fixed-capacity slot.  The PAD overflow check then applies to cold
partitions only, so a hot key cannot trigger the overflow path at all.

The output is **byte-identical in contents and traffic** to what the
static partitioner produces: partition contents and ``counts`` never
depended on the output mode in the first place, and both PAD and
isolated layouts write exactly the filled cache lines (padding is
accounted per lane, not per region), so ``bytes_read``/
``bytes_written``/``dummy_slots`` all agree.  Only ``base_lines`` —
where each region *starts* — differs, which is precisely the knob the
hardware's region allocator owns.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import kernels
from repro.core.modes import OutputMode
from repro.core.partitioner import (
    FpgaPartitioner,
    OverflowPolicy,
    PartitionedOutput,
)
from repro.errors import PartitionOverflowError
from repro.workloads.relations import Relation

__all__ = ["hot_partitions", "partition_isolated"]


def hot_partitions(
    hot_keys: Sequence[int],
    num_partitions: int,
    uses_hash: bool,
) -> np.ndarray:
    """Partition ids the hot keys map to (sorted, unique)."""
    if not len(hot_keys):
        return np.empty(0, dtype=np.int64)
    keys = np.asarray(list(hot_keys), dtype=np.uint32)
    parts = kernels.hash_only(keys, num_partitions, uses_hash)
    return np.unique(parts.astype(np.int64))


def partition_isolated(
    partitioner: FpgaPartitioner,
    relation: Relation | np.ndarray,
    payloads: Optional[np.ndarray] = None,
    hot_keys: Sequence[int] = (),
    on_overflow: OverflowPolicy = "hist",
) -> PartitionedOutput:
    """Partition with sketch-detected heavy hitters isolated.

    Args:
        partitioner: the configured :class:`FpgaPartitioner` whose
            static output this run must match in contents.
        relation: per the :meth:`FpgaPartitioner.partition` contract.
        payloads: payload column when ``relation`` is a bare array.
        hot_keys: keys to isolate; their partitions get exact-fit
            regions and are exempt from the PAD capacity check.
        on_overflow: policy if a *cold* partition still overflows —
            the sketch can only vouch for the keys it retained.

    Returns:
        A :class:`PartitionedOutput` with ``produced_by`` set to
        ``"fpga-isolated"`` and ``isolated_partitions`` counting the
        carved-out regions.  In HIST mode (or with no hot keys) this
        degenerates to the plain partitioner — HIST has no overflow
        path to protect.
    """
    cfg = partitioner.config
    if cfg.output_mode is not OutputMode.PAD or not len(hot_keys):
        return partitioner.partition(relation, payloads, on_overflow)

    keys, payloads = partitioner._extract_columns(relation, payloads)
    n = int(keys.shape[0])
    per_line = cfg.tuples_per_line

    with partitioner.tracer.span(
        "fpga.partition_isolated",
        tuples=n,
        partitions=cfg.num_partitions,
        mode=cfg.mode_label,
        hot_keys=len(hot_keys),
    ) as span:
        parts, counts, lane_counts = kernels.hash_histogram(
            keys, cfg.num_partitions, cfg.uses_hash, lanes=cfg.num_lanes
        )
        lines_per_partition = (-(-lane_counts // per_line)).sum(axis=1)
        hot = hot_partitions(hot_keys, cfg.num_partitions, cfg.uses_hash)

        # PAD capacity check on cold partitions only — the isolated
        # regions are exact-fit by construction and cannot overflow.
        capacity_lines = cfg.partition_capacity(n) // per_line
        cold_over = np.nonzero(lines_per_partition > capacity_lines)[0]
        cold_over = np.setdiff1d(cold_over, hot, assume_unique=False)
        if cold_over.size:
            if on_overflow == "raise":
                raise PartitionOverflowError(
                    partition=int(cold_over[0]),
                    capacity=capacity_lines * per_line,
                    tuples_seen=n,
                )
            return partitioner._handle_overflow(
                keys,
                payloads,
                int(cold_over[0]),
                capacity_lines * per_line,
                on_overflow,
            )

        partition_base = np.zeros(cfg.num_partitions, dtype=np.int64)
        np.cumsum(counts[:-1], out=partition_base[1:])
        sorted_keys = np.empty(n, dtype=np.uint32)
        sorted_payloads = np.empty(n, dtype=np.uint32)
        kernels.stable_scatter(
            keys, payloads, parts, partition_base,
            cfg.num_partitions, sorted_keys, sorted_payloads,
        )

        output = partitioner._finalize_output(
            n, counts, lines_per_partition, sorted_keys, sorted_payloads
        )
        # Re-point the isolated regions: cold partitions keep their PAD
        # grid slot, hot partitions move to exact-fit regions appended
        # after the grid.  Contents, counts and traffic are untouched.
        base_lines = output.base_lines.copy()
        grid_end = cfg.num_partitions * capacity_lines
        hot_lines = lines_per_partition[hot]
        offsets = np.zeros(hot.size, dtype=np.int64)
        np.cumsum(hot_lines[:-1], out=offsets[1:])
        base_lines[hot] = grid_end + offsets
        output.base_lines = base_lines
        output.produced_by = "fpga-isolated"
        output.isolated_partitions = int(hot.size)
        partitioner._account_platform(output, None)
        span.set_attributes(
            isolated_partitions=output.isolated_partitions,
            bytes_read=output.bytes_read,
            bytes_written=output.bytes_written,
        )
        return output
