"""Sketch-driven adaptive optimization (ROADMAP item 4).

* :class:`~repro.optimize.profile.WorkloadProfile` — frozen sketch
  summary decisions are pure functions of;
* :class:`~repro.optimize.optimizer.AdaptiveOptimizer` — cost-model
  driven backend/mode/isolation decisions with online recalibration;
* :class:`~repro.optimize.optimizer.StaticOptimizer` — the escape
  hatch (every knob stays at the static configuration);
* :func:`~repro.optimize.isolation.partition_isolated` — skew-aware
  execution giving sketch-hot keys dedicated exact-fit regions.
"""

from repro.optimize.isolation import hot_partitions, partition_isolated
from repro.optimize.optimizer import (
    AdaptiveOptimizer,
    Decision,
    StaticOptimizer,
)
from repro.optimize.profile import WorkloadProfile

__all__ = [
    "AdaptiveOptimizer",
    "Decision",
    "StaticOptimizer",
    "WorkloadProfile",
    "hot_partitions",
    "partition_isolated",
]
