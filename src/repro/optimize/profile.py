"""The optimizer's view of a workload: one frozen, comparable summary.

Decisions must be pure functions of *something*, or the optimizer can
never be property-tested.  :class:`WorkloadProfile` is that something:
the handful of numbers the ingest sketches (:mod:`repro.analysis`)
already measure — tuple count, distinct-key estimate, heavy-hitter
shares — flattened into a frozen dataclass.  Everything the
:class:`~repro.optimize.optimizer.AdaptiveOptimizer` decides is a
deterministic function of a profile plus its calibration state, so the
monotonicity and determinism properties in ``tests/test_optimizer.py``
can be stated exactly.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

import numpy as np

from repro.analysis.sketch import StreamSketch
from repro.core.hashing import murmur3_finalizer
from repro.errors import ConfigurationError

__all__ = ["WorkloadProfile"]

#: cap on how many keys one request feeds the heavy-hitter estimate;
#: the same bound the placement policy uses.
_PROFILE_SAMPLE = 1 << 12

#: linear-counting bins for the distinct-key estimate (one bincount
#: over the high hash bits).  The estimate saturates near the bin
#: count, which is exactly acceptable: the decision rules only need
#: cardinality resolution at the *low* end, where the cold-key spread
#: factor matters.
_DISTINCT_BINS = 1 << 16


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """What the sketches say about one request (or one shard's slice).

    Attributes:
        num_tuples: exact tuple count.
        distinct_keys: HLL cardinality estimate (rounded).
        hot_keys: retained heavy-hitter keys, largest share first.
        hot_shares: input-share lower bounds aligned with ``hot_keys``.
        tuple_bytes: tuple width the workload will be partitioned at.
    """

    num_tuples: int
    distinct_keys: int
    hot_keys: Tuple[int, ...] = ()
    hot_shares: Tuple[float, ...] = ()
    tuple_bytes: int = 8

    def __post_init__(self):
        if self.num_tuples < 0:
            raise ConfigurationError(
                f"num_tuples must be >= 0, got {self.num_tuples}"
            )
        if len(self.hot_keys) != len(self.hot_shares):
            raise ConfigurationError(
                "hot_keys and hot_shares must align "
                f"({len(self.hot_keys)} vs {len(self.hot_shares)})"
            )

    @property
    def max_key_share(self) -> float:
        """Largest single-key share (lower bound); 0.0 when unknown."""
        return self.hot_shares[0] if self.hot_shares else 0.0

    def isolation_keys(
        self, num_partitions: int, skew_factor: float = 2.0
    ) -> Tuple[int, ...]:
        """Keys whose share alone exceeds ``skew_factor`` fair shares.

        This is the monotone core of skew-aware execution: the
        threshold is a fixed fraction of the input, so raising any
        key's share can only add it to (never remove it from) the
        isolation set.
        """
        if num_partitions < 1:
            raise ConfigurationError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        threshold = skew_factor / num_partitions
        return tuple(
            key
            for key, share in zip(self.hot_keys, self.hot_shares)
            if share > threshold
        )

    @classmethod
    def from_sketch(
        cls, sketch: StreamSketch, tuple_bytes: int = 8
    ) -> "WorkloadProfile":
        """Build from an ingest-pass :class:`StreamSketch` bundle."""
        total = max(1, sketch.num_tuples)
        ranked = sketch.heavy.top(k=len(sketch.heavy.counters) or 1)
        pairs = [
            (int(key), count / total) for key, count in ranked if count > 0
        ]
        return cls(
            num_tuples=sketch.num_tuples,
            distinct_keys=int(round(sketch.cardinality())),
            hot_keys=tuple(k for k, _ in pairs),
            hot_shares=tuple(s for _, s in pairs),
            tuple_bytes=tuple_bytes,
        )

    @classmethod
    def from_keys(
        cls,
        keys: np.ndarray,
        tuple_bytes: int = 8,
        rng: Optional[np.random.Generator] = None,
        heavy_hitter_capacity: int = 64,
    ) -> "WorkloadProfile":
        """Profile a key column on the service's submit path.

        This runs per request ahead of admission, so it must cost a
        small fraction of the kernel pass it informs.  Cardinality
        comes from linear counting over the high murmur bits (one hash
        pass + one ``bincount`` — far cheaper than the streaming HLL's
        register scatter, and saturation near the bin count is fine
        because the decision rules only need resolution at low
        cardinality).  Heavy hitters come from *exact* counts over a
        bounded uniform sample (seeded via ``rng``) — strictly more
        informative than a Misra–Gries pass over the same sample, and
        fully vectorised.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        n = int(keys.shape[0])
        if n == 0:
            return cls(
                num_tuples=0, distinct_keys=0, tuple_bytes=tuple_bytes
            )
        occupied_bins = np.zeros(_DISTINCT_BINS, dtype=bool)
        occupied_bins[murmur3_finalizer(keys) >> np.uint32(16)] = True
        empty = _DISTINCT_BINS - int(np.count_nonzero(occupied_bins))
        distinct = (
            n
            if empty == 0
            else min(
                n,
                int(round(_DISTINCT_BINS * math.log(_DISTINCT_BINS / empty))),
            )
        )
        sample = keys
        if n > _PROFILE_SAMPLE:
            rng = rng or np.random.default_rng(0)
            sample = keys[rng.integers(0, n, size=_PROFILE_SAMPLE)]
        total = int(sample.shape[0])
        unique, counts = np.unique(sample, return_counts=True)
        # a once-seen sample key carries no share information
        seen = counts >= 2
        unique, counts = unique[seen], counts[seen]
        if unique.size > heavy_hitter_capacity:
            top = np.argpartition(counts, -heavy_hitter_capacity)[
                -heavy_hitter_capacity:
            ]
            unique, counts = unique[top], counts[top]
        order = np.argsort(-counts, kind="stable")
        return cls(
            num_tuples=n,
            distinct_keys=max(1, distinct),
            hot_keys=tuple(int(k) for k in unique[order]),
            hot_shares=tuple(float(c) / total for c in counts[order]),
            tuple_bytes=tuple_bytes,
        )
