"""Sketch-driven adaptive optimizer (ROADMAP item 4).

The repo already *measures* everything a partitioning decision needs:
the ingest sketches estimate cardinality and heavy-hitter shares
(:mod:`repro.analysis.sketch`), the Section 4.6 cost models predict
fpga/cpu rates (:mod:`repro.core.model`, :mod:`repro.cpu.cost_model`),
and the service records observed per-stage latencies.  The
:class:`AdaptiveOptimizer` closes the loop: it turns a
:class:`~repro.optimize.profile.WorkloadProfile` into a
:class:`Decision` — backend route, single- vs multi-pass, PAD rescue
strategy, heavy-hitter isolation set — and recalibrates its rate
estimates online from the latencies the service observes.

Two invariants shape the design:

* **Byte-identity.**  Partition contents and counts never depend on
  the execution plane (output mode, backend, isolation), so the
  optimizer may re-route freely without changing what a response
  contains — pinned by ``tests/test_optimizer.py``.  On the service
  path the request's fan-out/layout/hash are therefore kept; the
  standalone planner (:meth:`AdaptiveOptimizer.plan_config`) is where
  fan-out and HIST-vs-PAD are chosen from scratch.
* **Determinism.**  A decision is a pure function of (profile,
  config, calibration state, seed); two optimizers built with the same
  seed and fed the same observation sequence decide identically.

The escape hatch is :class:`StaticOptimizer` (or simply not attaching
an optimizer): every knob stays at the caller's static configuration.
"""

from __future__ import annotations

import collections
import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.core.model import FpgaCostModel
from repro.core.modes import (
    HashKind,
    LayoutMode,
    OutputMode,
    PartitionerConfig,
)
from repro.cpu.cost_model import CpuCostModel
from repro.errors import ConfigurationError
from repro.optimize.profile import WorkloadProfile

__all__ = [
    "AdaptiveOptimizer",
    "Decision",
    "StaticOptimizer",
    "plan_fused_fanout",
]


def plan_fused_fanout(
    build_tuples: int,
    tuple_bytes: int = 8,
    cache_budget_bytes: Optional[int] = None,
    min_partitions: int = 16,
    max_partitions: int = 8192,
) -> int:
    """Fan-out for a fused partition→join→aggregate chain.

    The fused executor runs build, probe and reduceat per partition
    while the scattered data is still hot, so the fan-out must make the
    per-partition *build table* (keys + payloads + chain index) fit the
    cache budget the build+probe cost model charges against
    (``BP_CACHE_BUDGET_BYTES``).  Returns the smallest power of two
    whose fair build share fits, clamped to
    ``[min_partitions, max_partitions]``.
    """
    if cache_budget_bytes is None:
        from repro.constants import BP_CACHE_BUDGET_BYTES

        cache_budget_bytes = BP_CACHE_BUDGET_BYTES
    if cache_budget_bytes < 1:
        raise ConfigurationError(
            f"cache_budget_bytes must be >= 1, got {cache_budget_bytes}"
        )
    n = max(1, int(build_tuples))
    want = max(1, -(-(n * tuple_bytes) // cache_budget_bytes))
    fanout = 1 << max(0, (want - 1).bit_length())
    return max(min_partitions, min(max_partitions, fanout))

#: PAD rescue strategies a decision may pick for a PAD-mode request.
#: ``keep``: run PAD as configured; ``isolate``: carve exact-fit
#: regions for the sketch-hot keys; ``hist``: go straight to the
#: two-pass HIST layout instead of paying a doomed PAD attempt first.
PAD_STRATEGIES = ("keep", "isolate", "hist")


@dataclasses.dataclass(frozen=True)
class Decision:
    """One request's chosen execution plan.

    ``backend`` routes between the fpga data plane, the cpu fallback
    and the out-of-core spill engine (the multi-pass path).
    ``pad_strategy`` is the PAD-overflow insurance (see
    :data:`PAD_STRATEGIES`); ``isolate_keys`` is non-empty exactly when
    it is ``"isolate"``.  ``est_seconds`` is the calibrated cost-model
    prediction the choice was based on.
    """

    backend: str
    pad_strategy: str
    isolate_keys: Tuple[int, ...]
    multi_pass: bool
    est_seconds: float
    reason: str

    def __post_init__(self):
        if self.backend not in ("fpga", "cpu", "spill"):
            raise ConfigurationError(f"unknown backend {self.backend!r}")
        if self.pad_strategy not in PAD_STRATEGIES:
            raise ConfigurationError(
                f"unknown pad strategy {self.pad_strategy!r}"
            )

    @property
    def label(self) -> str:
        """Compact tag for decision counters and log lines."""
        return f"{self.backend}/{self.pad_strategy}"

    @property
    def batch_token(self) -> Tuple:
        """Hashable facet for the scheduler's batch signature.

        Requests with different decisions must not share a coalesced
        kernel pass (an isolated request's scatter differs from a
        plain one), so the token joins the batch key.
        """
        return (self.backend, self.pad_strategy, self.isolate_keys)


#: static escape-hatch decision: fpga, plain PAD/HIST, single pass.
STATIC_DECISION = Decision(
    backend="fpga",
    pad_strategy="keep",
    isolate_keys=(),
    multi_pass=False,
    est_seconds=0.0,
    reason="static",
)


class StaticOptimizer:
    """The escape hatch: every request keeps its static configuration.

    Implements the optimizer interface so ``optimizer=`` call sites
    need no special-casing, but never re-routes, never isolates and
    ignores observations.
    """

    def plan_for(
        self,
        profile: WorkloadProfile,
        config: PartitionerConfig,
    ) -> Decision:
        """Always the identity decision."""
        return STATIC_DECISION

    def decide(
        self,
        keys: np.ndarray,
        config: PartitionerConfig,
        reuse: bool = True,
    ) -> Decision:
        """Always the identity decision (keys are not even sketched)."""
        return STATIC_DECISION

    def observe(self, backend: str, num_tuples: int, seconds: float) -> None:
        """Observations are ignored."""

    def snapshot(self) -> dict:
        """Empty decision accounting."""
        return {"decisions": {}, "rates": {}, "observations": 0}


class AdaptiveOptimizer:
    """Decides execution plans from sketches + calibrated cost models.

    Args:
        seed: seed for the profiling sample RNG; two optimizers with
            the same seed and observation sequence decide identically.
        memory_budget_bytes: working-set ceiling for a single-pass run;
            a request whose in+out traffic estimate exceeds it is
            routed multi-pass through the spill engine.
        skew_factor: a key is isolation-worthy when its share exceeds
            ``skew_factor`` fair shares (matches the sketch and
            placement thresholds).
        cpu_margin: the cpu route must beat the fpga prediction by
            this factor before a request is re-routed — hysteresis so
            model noise cannot flap the service off its coalesced
            fpga batch path.
        cpu_threads: thread count assumed for the cpu cost model.
        ema: weight of the newest observation in the per-backend
            calibrated-rate moving average.
        reprofile_interval: a single-pass fpga decision may be reused
            for this many further same-config requests before the key
            column is profiled again — profiling costs a fraction of a
            kernel pass, and a stable workload need not pay it on
            every request.  Only byte-identical execution planes are
            ever cached (a stale plan can cost a hist rescue, never
            correctness), and callers can force a fresh profile per
            request (the service does, whenever a stale plan could
            surface an overflow raise).  ``0`` disables reuse.
        fpga_model / cpu_model: cost models (defaults constructed).
    """

    def __init__(
        self,
        seed: int = 0,
        memory_budget_bytes: int = 1 << 31,
        skew_factor: float = 2.0,
        cpu_margin: float = 1.25,
        cpu_threads: int = 10,
        ema: float = 0.3,
        reprofile_interval: int = 32,
        fpga_model: Optional[FpgaCostModel] = None,
        cpu_model: Optional[CpuCostModel] = None,
    ):
        if memory_budget_bytes < 1:
            raise ConfigurationError(
                f"memory_budget_bytes must be >= 1, got {memory_budget_bytes}"
            )
        if not 0.0 < ema <= 1.0:
            raise ConfigurationError(f"ema must be in (0, 1], got {ema}")
        if reprofile_interval < 0:
            raise ConfigurationError(
                f"reprofile_interval must be >= 0, got {reprofile_interval}"
            )
        self.seed = seed
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.skew_factor = float(skew_factor)
        self.cpu_margin = float(cpu_margin)
        self.cpu_threads = int(cpu_threads)
        self.ema = float(ema)
        self.reprofile_interval = int(reprofile_interval)
        self.fpga_model = fpga_model or FpgaCostModel()
        self.cpu_model = cpu_model or CpuCostModel()
        self._rng = np.random.default_rng(seed)
        #: observed tuples/s EMA per backend; None until first sample
        self._observed: Dict[str, float] = {}
        self._observations = 0
        #: per-config reusable plan: config -> [decision, uses]
        self._plan_cache: Dict[PartitionerConfig, list] = {}
        self.decision_counts: collections.Counter = collections.Counter()

    # -- calibration ----------------------------------------------------

    def observe(self, backend: str, num_tuples: int, seconds: float) -> None:
        """Fold one executed request into the calibrated rates.

        Called by the service after each batch with the measured
        execute-stage latency; the per-backend EMA then overrides the
        pure model prediction in later decisions.  Degenerate samples
        (no tuples, non-positive wall time) are dropped.
        """
        if num_tuples <= 0 or seconds <= 0.0:
            return
        rate = num_tuples / seconds
        prev = self._observed.get(backend)
        self._observed[backend] = (
            rate if prev is None else (1 - self.ema) * prev + self.ema * rate
        )
        self._observations += 1

    def calibrated_rate(
        self, backend: str, config: PartitionerConfig, num_tuples: int
    ) -> float:
        """Tuples/s estimate: observed EMA if any, else the cost model."""
        observed = self._observed.get(backend)
        if observed is not None:
            return observed
        if backend == "cpu":
            return self.cpu_model.estimate(
                self.cpu_threads,
                HashKind.MURMUR if config.uses_hash else HashKind.RADIX,
                num_partitions=config.num_partitions,
                tuple_bytes=config.tuple_bytes,
            ).tuples_per_second
        rate = self.fpga_model.predict(
            config, max(1, num_tuples)
        ).tuples_per_second
        if backend == "spill":
            # the spill engine pays an extra disk round trip on top of
            # the in-memory pass; without an observation, assume half.
            return rate / 2.0
        return rate

    # -- decisions ------------------------------------------------------

    def plan_for(
        self,
        profile: WorkloadProfile,
        config: PartitionerConfig,
    ) -> Decision:
        """The pure decision core: (profile, config, state) → Decision.

        Service callers keep the request's fan-out/layout/hash (so the
        response stays byte-identical to the static path); this method
        only picks the execution plane.  All choices are monotone in
        the profile: raising a key's share never shrinks the isolation
        set, and growing the input never flips multi-pass back to
        single-pass at a fixed memory budget.
        """
        n = profile.num_tuples
        pad_strategy = "keep"
        isolate: Tuple[int, ...] = ()
        reasons: List[str] = []
        if config.output_mode is OutputMode.PAD and n > 0:
            isolate = self._isolation_set(profile, config)
            if self._predicts_cold_overflow(profile, config, isolate):
                # even isolation cannot save PAD: the *cold* mass alone
                # overflows, so skip the doomed PAD attempt entirely.
                pad_strategy, isolate = "hist", ()
                reasons.append("cold-overflow->hist")
            elif isolate:
                pad_strategy = "isolate"
                reasons.append(f"isolate:{len(isolate)}")

        # one pass streams the input in and the partitions out; HIST
        # reads the input twice (mode factor 2).
        est_bytes = (1 + config.mode_factor) * n * config.tuple_bytes
        multi_pass = est_bytes > self.memory_budget_bytes
        if multi_pass:
            backend = "spill"
            reasons.append(
                f"{est_bytes >> 20}MiB>" f"{self.memory_budget_bytes >> 20}MiB"
            )
        else:
            backend = "fpga"
            # cross-backend routing trusts only *measured* rates: the
            # two cost models rank configurations well within their own
            # backend, but their absolute scales are not comparable, so
            # the optimizer never routes away from the service's
            # default plane on model priors alone.
            if "cpu" in self._observed:
                fpga = self.calibrated_rate("fpga", config, n)
                cpu = self.calibrated_rate("cpu", config, n)
                if cpu > self.cpu_margin * fpga:
                    backend = "cpu"
                    reasons.append(f"cpu {cpu / max(fpga, 1.0):.2f}x")
        est_seconds = (
            n / self.calibrated_rate(backend, config, n) if n else 0.0
        )
        decision = Decision(
            backend=backend,
            pad_strategy=pad_strategy,
            isolate_keys=isolate,
            multi_pass=multi_pass,
            est_seconds=est_seconds,
            reason=";".join(reasons) or "default",
        )
        self.decision_counts[decision.label] += 1
        return decision

    def decide(
        self,
        keys: np.ndarray,
        config: PartitionerConfig,
        reuse: bool = True,
    ) -> Decision:
        """Profile a key column and plan its execution.

        With ``reuse`` (the default) a recent single-pass fpga decision
        for the same config is returned without re-profiling, up to
        ``reprofile_interval`` times.  Those decisions (``keep``,
        ``isolate``, ``hist``) are all byte-identical execution planes,
        so a stale one can never cost correctness — at worst a stale
        ``isolate`` set lets a cold partition overflow, which degrades
        that entry to the hist rescue (exactly the static path), and a
        stale ``keep`` *is* the static path.  Re-routing decisions
        (cpu, spill/multi-pass) are never reused: they should track
        fresh calibration.  Pass ``reuse=False`` when even the
        staleness window is unacceptable (the service does for
        raise-policy PAD requests).
        """
        if reuse and self.reprofile_interval:
            cached = self._plan_cache.get(config)
            if cached is not None and cached[1] < self.reprofile_interval:
                cached[1] += 1
                self.decision_counts[cached[0].label] += 1
                return cached[0]
        profile = WorkloadProfile.from_keys(
            keys, tuple_bytes=config.tuple_bytes, rng=self._rng
        )
        decision = self.plan_for(profile, config)
        if decision.backend == "fpga" and not decision.multi_pass:
            self._plan_cache[config] = [decision, 0]
        else:
            self._plan_cache.pop(config, None)
        return decision

    def _isolation_set(
        self, profile: WorkloadProfile, config: PartitionerConfig
    ) -> Tuple[int, ...]:
        """Retained hot keys whose partitions need exact-fit regions.

        Two signals, unioned:

        * the share rule — a key above ``skew_factor`` fair shares is
          isolation-worthy on its own (matches the sketch/placement
          threshold);
        * the capacity rule — hash every retained key to its partition
          and isolate *all* retained keys of any partition whose
          predicted mass (one full cold fair share plus the retained
          hot mass) exceeds the PAD capacity.  Several mid-weight keys
          sharing a partition overflow it just as surely as one giant
          key.

        Both rules are monotone non-decreasing in every share (the
        cold mass is upper-bounded by a share-independent fair share),
        so more skew can only grow the isolation set.
        """
        n = profile.num_tuples
        if not profile.hot_keys or n == 0:
            return ()
        P = config.num_partitions
        by_share = set(profile.isolation_keys(P, self.skew_factor))
        keys = np.asarray(profile.hot_keys, dtype=np.uint32)
        parts = kernels.hash_only(keys, P, config.uses_hash)
        hot_mass = np.zeros(P, dtype=np.float64)
        np.add.at(
            hot_mass,
            parts.astype(np.int64),
            np.asarray(profile.hot_shares) * n,
        )
        capacity = config.partition_capacity(n)
        dangerous = hot_mass + n / P > capacity
        return tuple(
            int(key)
            for key, part in zip(profile.hot_keys, parts)
            if key in by_share or dangerous[part]
        )

    def _predicts_cold_overflow(
        self,
        profile: WorkloadProfile,
        config: PartitionerConfig,
        isolate: Tuple[int, ...],
    ) -> bool:
        """Would the non-isolated mass alone overflow a PAD region?

        The cold mass spreads over all partitions; its expected largest
        share is one fair share inflated by a low-cardinality spread
        factor (fewer distinct keys per partition → higher variance of
        the largest).  Monotone *decreasing* in the hot shares — so
        more skew can only move a profile toward isolation, never away
        from it — and scale-free in ``n``.
        """
        n = profile.num_tuples
        if n == 0:
            return False
        isolated = set(isolate)
        hot_share = sum(
            share
            for key, share in zip(profile.hot_keys, profile.hot_shares)
            if key in isolated
        )
        cold = (1.0 - min(1.0, hot_share)) * n
        keys_per_partition = max(
            1.0, profile.distinct_keys / config.num_partitions
        )
        spread = 1.0 + 4.0 / math.sqrt(keys_per_partition)
        expected_max = (cold / config.num_partitions) * spread
        return expected_max > config.partition_capacity(n)

    # -- standalone planning -------------------------------------------

    def plan_config(
        self,
        profile: WorkloadProfile,
        layout_mode: LayoutMode = LayoutMode.RID,
        target_partition_tuples: int = 1 << 15,
        min_partitions: int = 16,
        max_partitions: int = 8192,
    ) -> PartitionerConfig:
        """Choose fan-out and output mode for a fresh workload.

        Fan-out: the smallest power of two keeping the expected fair
        share under ``target_partition_tuples`` (a cache-resident
        partition for the downstream join), clamped to
        ``[min_partitions, max_partitions]``.  Mode: PAD (single pass)
        unless the profile predicts PAD cannot survive even with
        isolation, in which case HIST's two-pass exact layout wins.
        """
        n = max(1, profile.num_tuples)
        want = max(1, -(-n // target_partition_tuples))
        fanout = 1 << max(0, (want - 1).bit_length())
        fanout = max(min_partitions, min(max_partitions, fanout))
        config = PartitionerConfig(
            num_partitions=fanout,
            output_mode=OutputMode.PAD,
            layout_mode=layout_mode,
            tuple_bytes=profile.tuple_bytes,
        )
        isolate = profile.isolation_keys(fanout, self.skew_factor)
        if self._predicts_cold_overflow(profile, config, isolate):
            config = dataclasses.replace(
                config, output_mode=OutputMode.HIST
            )
        return config

    def plan_chain_config(
        self,
        build_tuples: int,
        tuple_bytes: int = 8,
        layout_mode: LayoutMode = LayoutMode.RID,
        max_partitions: int = 8192,
    ) -> PartitionerConfig:
        """Config for a fused partition→join→aggregate chain.

        Unlike :meth:`plan_config` (which sizes partitions for a
        *staged* downstream join), the fused chain consumes each
        partition immediately, so the binding constraint is the build
        table fitting the build+probe cache budget — delegated to
        :func:`plan_fused_fanout`.  HIST mode: the fused executor keeps
        partitions as lazy slices, so PAD's single-pass layout buys
        nothing while its overflow risk would still apply.
        """
        return PartitionerConfig(
            num_partitions=plan_fused_fanout(
                build_tuples,
                tuple_bytes=tuple_bytes,
                max_partitions=max_partitions,
            ),
            output_mode=OutputMode.HIST,
            layout_mode=layout_mode,
            tuple_bytes=tuple_bytes,
        )

    def explain(
        self,
        workloads: Dict[str, WorkloadProfile],
        config: Optional[PartitionerConfig] = None,
    ) -> List[dict]:
        """Decision table for a set of workloads (the CLI's view).

        With ``config`` given, decisions are planned against it (the
        service situation); without, each workload also gets a freshly
        planned fan-out/mode via :meth:`plan_config`.
        """
        rows = []
        for name, profile in sorted(workloads.items()):
            chosen = config or self.plan_config(profile)
            decision = self.plan_for(profile, chosen)
            rows.append(
                {
                    "workload": name,
                    "tuples": profile.num_tuples,
                    "distinct": profile.distinct_keys,
                    "max_share": round(profile.max_key_share, 4),
                    "config": chosen.mode_label,
                    "fanout": chosen.num_partitions,
                    "backend": decision.backend,
                    "pad_strategy": decision.pad_strategy,
                    "isolated_keys": len(decision.isolate_keys),
                    "multi_pass": decision.multi_pass,
                    "est_seconds": round(decision.est_seconds, 6),
                    "reason": decision.reason,
                }
            )
        return rows

    # -- observability --------------------------------------------------

    def snapshot(self) -> dict:
        """Decision counters + calibrated rates for the obs exporter."""
        return {
            "decisions": dict(self.decision_counts),
            "rates": {k: float(v) for k, v in sorted(self._observed.items())},
            "observations": self._observations,
        }
