"""Benchmark-harness support: table formatting and shape checks.

The ``benchmarks/`` directory reproduces every table and figure of the
paper's evaluation; this package provides the shared plumbing — ASCII
table rendering, paper-vs-measured comparison rows, and qualitative
shape assertions (who wins, monotonicity, crossovers).
"""

from repro.bench.reporting import (
    ExperimentTable,
    format_table,
    monotonically_decreasing,
    monotonically_increasing,
    relative_error,
    shape_check,
    write_json_artifact,
)

__all__ = [
    "ExperimentTable",
    "format_table",
    "shape_check",
    "relative_error",
    "monotonically_increasing",
    "monotonically_decreasing",
    "write_json_artifact",
]
