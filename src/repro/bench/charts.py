"""Dependency-free ASCII charts for the reproduced figures.

The paper's evaluation is all bar charts and line plots; these helpers
render the same data in a terminal: horizontal bars (the Figure 9
ladder), and multi-series line grids (the Figure 4/10/13 sweeps).
Used by the CLI's ``--chart`` option and available for notebooks or
reports that want a quick visual without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

_SERIES_MARKS = "ox+*#@%&"


def bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 56,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one bar per (label, value)."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must align")
    if not values:
        raise ConfigurationError("nothing to chart")
    if any(v < 0 for v in values):
        raise ConfigurationError("bar charts take non-negative values")
    peak = max(values) or 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = [title, "=" * len(title)]
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(
            f"{str(label).rjust(label_width)} | "
            f"{bar.ljust(width)} {value:g}{unit}"
        )
    return "\n".join(lines)


def series_chart(
    title: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 16,
    width: int = 64,
    y_label: str = "",
) -> str:
    """Multi-series scatter/line grid.

    Each series gets a mark character; x positions are spread linearly
    over the grid (the paper's sweeps are small and near-uniform).
    """
    if not series:
        raise ConfigurationError("no series to chart")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points for "
                f"{len(x_values)} x values"
            )
    if len(x_values) < 2:
        raise ConfigurationError("need at least two x positions")

    all_values = [v for ys in series.values() for v in ys]
    top = max(all_values)
    bottom = min(0.0, min(all_values))
    span = (top - bottom) or 1.0

    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    for mark, (name, ys) in zip(_SERIES_MARKS, series.items()):
        for i, value in enumerate(ys):
            col = round(i * (width - 1) / (len(x_values) - 1))
            row = height - 1 - round(
                (value - bottom) / span * (height - 1)
            )
            grid[row][col] = mark

    lines = [title, "=" * len(title)]
    axis_width = max(len(f"{top:g}"), len(f"{bottom:g}"))
    for r, row in enumerate(grid):
        if r == 0:
            tick = f"{top:g}".rjust(axis_width)
        elif r == height - 1:
            tick = f"{bottom:g}".rjust(axis_width)
        else:
            tick = " " * axis_width
        lines.append(f"{tick} |{''.join(row)}")
    lines.append(" " * axis_width + " +" + "-" * width)
    x_axis = (
        f"{x_values[0]:g}".ljust(width // 2)
        + f"{x_values[-1]:g}".rjust(width - width // 2)
    )
    lines.append(" " * (axis_width + 2) + x_axis)
    legend = "   ".join(
        f"{mark} {name}"
        for mark, name in zip(_SERIES_MARKS, series.keys())
    )
    lines.append(legend)
    if y_label:
        lines.append(f"(y: {y_label})")
    return "\n".join(lines)


def chart_table_column(
    table,
    value_column: str,
    label_column: Optional[str] = None,
    width: int = 56,
) -> str:
    """Bar chart of one numeric column of an ExperimentTable."""
    labels = table.column(label_column or table.headers[0])
    raw = table.column(value_column)
    values = []
    kept_labels = []
    for label, value in zip(labels, raw):
        try:
            values.append(float(value))
            kept_labels.append(str(label))
        except (TypeError, ValueError):
            continue  # skip non-numeric rows ("-" reference cells)
    return bar_chart(
        f"[{table.experiment_id}] {value_column}",
        kept_labels,
        values,
        width=width,
    )
