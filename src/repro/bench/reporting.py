"""Reporting helpers for the per-figure benchmarks.

Each benchmark reproduces one table or figure.  Its output is an
:class:`ExperimentTable` — the same rows/series the paper plots — which
renders as an aligned ASCII table and can be asserted against *shape*
expectations (who wins, monotonicity, crossovers) without pinning
absolute numbers the simulation cannot promise.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import List, Optional, Sequence, Union

from repro.errors import ConfigurationError


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(h) for h in headers]] + [
        [_fmt(v) for v in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


@dataclasses.dataclass
class ExperimentTable:
    """One reproduced table/figure, ready to print and to check."""

    experiment_id: str          # e.g. "Figure 9"
    title: str
    headers: List[str]
    rows: List[List[object]]
    note: Optional[str] = None

    def render(self) -> str:
        """The aligned ASCII rendering of the table."""
        return format_table(
            f"[{self.experiment_id}] {self.title}",
            self.headers,
            self.rows,
            self.note,
        )

    def emit(self) -> None:
        """Print the table (pytest shows it with ``-s``; pytest-benchmark
        runs keep it in the captured output)."""
        print()
        print(self.render())

    def column(self, header: str) -> List[object]:
        """Values of one column, by header name."""
        if header not in self.headers:
            raise ConfigurationError(
                f"no column {header!r} in {self.experiment_id}; "
                f"have {self.headers}"
            )
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-serialisable representation (see :func:`write_json_artifact`)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "note": self.note,
        }


def write_json_artifact(
    path: Union[str, pathlib.Path],
    tables: Sequence[ExperimentTable],
    extra: Optional[dict] = None,
) -> pathlib.Path:
    """Write benchmark tables (plus free-form metadata) as one JSON file.

    The artifact schema is ``{"tables": [table.to_dict(), ...], **extra}``
    — the standard machine-readable companion to the ASCII rendering,
    used e.g. by ``benchmarks/bench_parallel_scaling.py`` to emit
    ``BENCH_parallel.json``.  Values must already be JSON-native
    (int/float/str/bool/None); NumPy scalars should be converted by the
    caller.  Returns the path written.
    """
    path = pathlib.Path(path)
    payload = {"tables": [t.to_dict() for t in tables]}
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def shape_check(
    condition: bool, experiment_id: str, description: str
) -> None:
    """Assert a qualitative property of a reproduced figure.

    Raises AssertionError with a message naming the experiment, so a
    failed shape check reads like a reproduction report.
    """
    assert condition, f"{experiment_id}: shape expectation violated — {description}"


def relative_error(model: float, measured: float) -> float:
    """``|model - measured| / |measured|``."""
    if measured == 0:
        raise ConfigurationError("measured value must be nonzero")
    return abs(model - measured) / abs(measured)


def monotonically_increasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True when the sequence never drops by more than ``tolerance``."""
    return all(
        b >= a * (1.0 - tolerance) for a, b in zip(values, values[1:])
    )


def monotonically_decreasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True when the sequence never rises by more than ``tolerance``."""
    return all(
        b <= a * (1.0 + tolerance) for a, b in zip(values, values[1:])
    )
