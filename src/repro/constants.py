"""Platform constants and calibration data.

Every timing figure in the paper is produced on one specific machine:
the Intel Xeon+FPGA (HARP v1) prototype — a 10-core Xeon E5-2680 v2
(2.8 GHz) on one socket and an Altera Stratix V FPGA on the other,
connected by QPI.  Since we reproduce the paper in simulation, the
machine's measured characteristics become *model inputs*.  This module
collects them in one place, each with provenance (the paper section,
table or figure the value comes from).

Values that the paper reports directly (clock frequency, cache-line
width, latency cycle counts, Table 1 timings, Figure 9 throughputs) are
transcribed.  Values that the paper only shows as plots (the Figure 2
bandwidth curves) are digitised into interpolation tables anchored by
the exact `B(r)` values quoted in Section 4.8 (7.05, 6.97 and
5.94 GB/s for r = 2, 1 and 0.5).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Universal geometry (Section 2.1, Table 3)
# ---------------------------------------------------------------------------

CACHE_LINE_BYTES = 64
"""QPI / memory transfer granularity (Table 3, ``CL``)."""

PAGE_BYTES = 4 * 1024 * 1024
"""Shared-memory allocation granularity: 4 MB pages (Section 2.1)."""

SHARED_MEMORY_BYTES = 96 * 1024 * 1024 * 1024
"""Main memory on the CPU socket reachable by the FPGA (Section 2.1)."""

SUPPORTED_TUPLE_WIDTHS = (8, 16, 32, 64)
"""Tuple widths the partitioner circuit supports (Section 4, Table 3)."""

KEY_BYTES_8B_TUPLE = 4
"""8 B tuples are <4 B key, 4 B payload> (Section 4)."""

# ---------------------------------------------------------------------------
# FPGA circuit (Sections 2.1, 4.6, Table 3)
# ---------------------------------------------------------------------------

FPGA_CLOCK_HZ = 200_000_000
"""``f_FPGA`` — 200 MHz (Table 3)."""

FPGA_CLOCK_PERIOD_S = 1.0 / FPGA_CLOCK_HZ
"""``T_FPGA`` — 5 ns (Table 3)."""

FPGA_CACHE_BYTES = 128 * 1024
"""FPGA-local two-way associative cache in the QPI end-point."""

FPGA_CACHE_WAYS = 2

CYCLES_HASHING = 5
"""``c_hashing`` — murmur pipeline depth (Table 3, Section 4.1)."""

CYCLES_WRITE_COMBINER = 65_540
"""``c_writecomb`` (Table 3).

Dominated by the end-of-run flush: 8192 partitions x 8 BRAM slots are
drained sequentially, plus the few cycles of fill-rate lookup.
"""

CYCLES_FIFOS = 4
"""``c_fifos`` — FIFO traversal cycles (Table 3)."""

PAGE_TABLE_TRANSLATION_CYCLES = 2
"""Pipelined virtual-to-physical translation latency (Section 2.1)."""

RAW_WRAPPER_BANDWIDTH_GBS = 25.6
"""The internal wrapper used for 'raw FPGA' numbers emulates QPI with
a combined 25.6 GB/s read+write bandwidth (Section 4.7)."""

# ---------------------------------------------------------------------------
# CPU socket (Section 2.1)
# ---------------------------------------------------------------------------

CPU_CORES = 10
CPU_CLOCK_HZ = 2_800_000_000
CPU_L3_BYTES = 25 * 1024 * 1024
CPU_L2_BYTES = 256 * 1024
CPU_L1D_BYTES = 32 * 1024

# ---------------------------------------------------------------------------
# Figure 2 — memory bandwidth vs sequential-read / random-write mix
# ---------------------------------------------------------------------------
# Keys are the *read fraction* of total bytes moved (1.0 = all sequential
# reads, 0.0 = all random writes); values are GB/s of total traffic.
# FPGA points are anchored to Section 4.8: B(r=2)=7.05 at read fraction
# 2/3, B(r=1)=6.97 at 1/2, B(r=0.5)=5.94 at 1/3; the rest follows the
# Figure 2 shape (flat near read-heavy, sagging when writes dominate).

FPGA_BANDWIDTH_ALONE_GBS = {
    1.0: 7.10,
    0.9: 7.08,
    0.8: 7.06,
    2.0 / 3.0: 7.05,   # r = 2   (Section 4.8)
    0.6: 7.02,
    0.5: 6.97,         # r = 1   (Section 4.8)
    0.4: 6.50,
    1.0 / 3.0: 5.94,   # r = 0.5 (Section 4.8)
    0.2: 5.40,
    0.1: 5.10,
    0.0: 4.90,
}

# CPU curve: starts near the socket's sequential-read ceiling and decays
# as random non-temporal writes take over.  Anchored so that the CPU
# partitioner's memory-bound ceiling reproduces the 506 Mtuples/s
# 10-thread figure (Figure 9): histogram pass at read fraction 1.0 plus
# a shuffle pass at read fraction 0.5 must combine to ~506 Mtuples/s for
# 8 B tuples (see repro.cpu.cost_model).

CPU_BANDWIDTH_ALONE_GBS = {
    1.0: 28.5,
    0.9: 20.0,
    0.8: 15.5,
    0.7: 12.5,
    0.6: 10.8,
    0.5: 9.5,
    0.4: 9.2,
    0.3: 9.0,
    0.2: 8.8,
    0.1: 8.7,
    0.0: 8.6,
}

# Interference factors ("interfered" curves in Figure 2): both agents
# hammering memory at once costs each a significant share.
CPU_INTERFERED_FACTOR = 0.65
FPGA_INTERFERED_FACTOR = 0.70

# ---------------------------------------------------------------------------
# Table 1 — cache-coherence (snoop) penalty
# ---------------------------------------------------------------------------
# Single-threaded CPU reads of a 512 MB region, by who wrote it last.

TABLE1_SECONDS = {
    ("cpu", "sequential"): 0.1381,
    ("cpu", "random"): 1.1537,
    ("fpga", "sequential"): 0.1533,
    ("fpga", "random"): 2.4876,
}

COHERENCE_SEQ_READ_PENALTY = TABLE1_SECONDS[("fpga", "sequential")] / \
    TABLE1_SECONDS[("cpu", "sequential")]
"""~1.11x — sequential reads of FPGA-written memory (Table 1)."""

COHERENCE_RANDOM_READ_PENALTY = TABLE1_SECONDS[("fpga", "random")] / \
    TABLE1_SECONDS[("cpu", "random")]
"""~2.16x — random reads of FPGA-written memory (Table 1)."""

# ---------------------------------------------------------------------------
# Figure 9 — measured end-to-end partitioning throughput (Mtuples/s,
# 8 B tuples, 8192 partitions)
# ---------------------------------------------------------------------------

FIGURE9_MEASURED_MTUPLES = {
    "polychroniou_32cores": 1100,   # [27], 32-core CPU
    "wang_fpga": 256,               # [37], best prior FPGA partitioner
    "HIST/RID": 299,
    "HIST/VRID": 391,
    "PAD/RID": 436,
    "PAD/VRID": 514,
    "cpu_10threads": 506,
    "raw_fpga_hist": 799,
    "raw_fpga_pad": 1597,
}

# ---------------------------------------------------------------------------
# CPU partitioning cost model anchors (Figures 4, 9; Sections 3.2, 5.3)
# ---------------------------------------------------------------------------

CPU_RADIX_TUPLES_PER_SEC_PER_THREAD = 130e6
"""Single-thread compute-bound radix partitioning rate at 8192
partitions.  Chosen so the thread-scaling curve saturates against the
memory ceiling around 4-8 threads as in Figure 4."""

CPU_HASH_TUPLES_PER_SEC_PER_THREAD = 87e6
"""Single-thread murmur-hash partitioning rate: the paper reports up to
~50% longer partitioning time when hashing at low thread counts
(Section 5.3), vanishing once memory-bound."""

CPU_RADIX_DISTRIBUTION_FACTOR = {
    "linear": 1.00,
    "random": 0.98,
    "grid": 0.93,
    "reverse_grid": 0.88,
}
"""Mild compute-rate degradation of radix partitioning under the skewed
partition sizes the grid-family distributions induce (Figure 4)."""

CPU_PARTITION_COUNT_REFERENCE = 8192
CPU_PARTITION_COUNT_SLOWDOWN_PER_DOUBLING = 0.05
"""Single-thread radix partitioning slows a few percent per fan-out
doubling (more software-managed buffers competing for L1); Figure 10a.
Rates above are quoted at the 8192-partition reference point."""

# ---------------------------------------------------------------------------
# Build + probe cost model anchors (Figures 10-13, Section 5.2)
# ---------------------------------------------------------------------------

BUILD_CYCLES_PER_TUPLE = 12.0
"""In-cache build cost per R-tuple (bucket-chaining table, [21])."""

PROBE_CYCLES_PER_TUPLE = 6.0
"""In-cache probe cost per S-tuple."""

BP_CACHE_BUDGET_BYTES = 192 * 1024
"""Partition size below which build+probe runs at in-cache speed
(roughly L2 minus working-set overheads)."""

BP_MISS_PENALTY_PER_DOUBLING = 0.35
"""Build+probe slowdown factor per doubling of partition size beyond
the cache budget (drives the Figure 10 'too few partitions' regime)."""

HYBRID_BUILD_PROBE_PENALTY = COHERENCE_RANDOM_READ_PENALTY
"""Probe slowdown when the partitions were written by the FPGA: the
probe's chain walks are random reads into FPGA-homed memory, so they
pay the Table 1 random-read snoop factor (~2.16x); the build's
sequential scan pays the mild ~1.11x.  With these, the hybrid join on
workload A lands at ~414 Mtuples/s against the CPU join's ~435 —
within 2% of the paper's 406 vs 436 (Section 5.2)."""

# ---------------------------------------------------------------------------
# Default experiment geometry (Section 5, Table 4)
# ---------------------------------------------------------------------------

DEFAULT_NUM_PARTITIONS = 8192
WORKLOAD_A_TUPLES = 128 * 10**6
WORKLOAD_B_R_TUPLES = 16 * 2**20
WORKLOAD_B_S_TUPLES = 256 * 2**20
