"""Workload and key-distribution generators (Sections 3.2 and 5).

The paper evaluates partitioning and joins on four key distributions
(linear, random, grid, reverse grid) plus Zipf-skewed variants, packaged
into five named workloads A-E (Table 4).
"""

from repro.workloads.distributions import (
    KeyDistribution,
    linear_keys,
    random_keys,
    grid_keys,
    reverse_grid_keys,
    zipf_keys,
    generate_keys,
)
from repro.workloads.arrivals import (
    ArrivalPattern,
    burst_arrivals,
    diurnal_arrivals,
    generate_arrivals,
    poisson_arrivals,
    ramp_arrivals,
)
from repro.workloads.relations import (
    Relation,
    Workload,
    make_relation,
    make_workload,
    WORKLOAD_SPECS,
)

__all__ = [
    "ArrivalPattern",
    "burst_arrivals",
    "diurnal_arrivals",
    "generate_arrivals",
    "poisson_arrivals",
    "ramp_arrivals",
    "KeyDistribution",
    "linear_keys",
    "random_keys",
    "grid_keys",
    "reverse_grid_keys",
    "zipf_keys",
    "generate_keys",
    "Relation",
    "Workload",
    "make_relation",
    "make_workload",
    "WORKLOAD_SPECS",
]
