"""Relations and the Table 4 workloads.

A :class:`Relation` is a columnar <key, payload> table — keys are
``uint32`` and payloads are ``uint32`` record identifiers by default,
matching the 8 B <4 B key, 4 B payload> tuples used throughout the
paper's evaluation.  Wider tuples are represented by a payload width in
bytes; the payload column itself stays a ``uint32`` RID (the extra
bytes never influence partitioning or join logic, only the byte
accounting done by the platform and cost models).

Table 4 of the paper defines five workloads:

========  ==========  ==========  ==================
Name      #Tuples R   #Tuples S   Key distribution
========  ==========  ==========  ==================
A         128e6       128e6       Linear
B         16*2^20     256*2^20    Linear
C         128e6       128e6       Random
D         128e6       128e6       Grid
E         128e6       128e6       Reverse grid
========  ==========  ==========  ==================

Because a pure-Python reproduction cannot comfortably materialise
128 million tuples inside unit tests, :func:`make_workload` accepts a
``scale`` divisor: the *shape* experiments (partition balance, join
correctness) are stable at much smaller sizes, and the timing figures
come from the calibrated cost models which take tuple counts as
parameters rather than materialised data.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.distributions import KeyDistribution, generate_keys, zipf_keys


@dataclasses.dataclass(frozen=True)
class Relation:
    """A columnar relation of <key, payload> tuples.

    Attributes:
        keys: ``uint32`` join keys.
        payloads: ``uint32`` record identifiers (position by default).
        tuple_bytes: logical tuple width used for byte accounting
            (8, 16, 32 or 64 in the paper).
        name: optional label for reports.
    """

    keys: np.ndarray
    payloads: np.ndarray
    tuple_bytes: int = 8
    name: str = ""

    def __post_init__(self) -> None:
        if self.keys.dtype != np.uint32:
            raise ConfigurationError("relation keys must be uint32")
        if self.payloads.dtype != np.uint32:
            raise ConfigurationError("relation payloads must be uint32")
        if self.keys.shape != self.payloads.shape:
            raise ConfigurationError(
                "keys and payloads must have identical shapes, got "
                f"{self.keys.shape} vs {self.payloads.shape}"
            )
        if self.tuple_bytes not in (8, 16, 32, 64):
            raise ConfigurationError(
                f"tuple_bytes must be one of 8/16/32/64, got {self.tuple_bytes}"
            )

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    @property
    def num_tuples(self) -> int:
        return len(self)

    @property
    def total_bytes(self) -> int:
        """Bytes the relation occupies at its logical tuple width."""
        return self.num_tuples * self.tuple_bytes

    @property
    def key_bytes(self) -> int:
        """Bytes of the key column alone (what VRID mode reads)."""
        return self.num_tuples * 4

    def head(self, n: int) -> "Relation":
        """First ``n`` tuples as a new relation (for examples/tests)."""
        return Relation(
            keys=self.keys[:n].copy(),
            payloads=self.payloads[:n].copy(),
            tuple_bytes=self.tuple_bytes,
            name=self.name,
        )


@dataclasses.dataclass(frozen=True)
class Workload:
    """A join workload: a build relation R and a probe relation S."""

    name: str
    r: Relation
    s: Relation
    distribution: KeyDistribution

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "distribution", KeyDistribution(self.distribution)
        )

    @property
    def total_tuples(self) -> int:
        return len(self.r) + len(self.s)


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Static description of a Table 4 workload."""

    name: str
    r_tuples: int
    s_tuples: int
    distribution: KeyDistribution


WORKLOAD_SPECS: Dict[str, WorkloadSpec] = {
    "A": WorkloadSpec("A", 128 * 10**6, 128 * 10**6, KeyDistribution.LINEAR),
    "B": WorkloadSpec("B", 16 * 2**20, 256 * 2**20, KeyDistribution.LINEAR),
    "C": WorkloadSpec("C", 128 * 10**6, 128 * 10**6, KeyDistribution.RANDOM),
    "D": WorkloadSpec("D", 128 * 10**6, 128 * 10**6, KeyDistribution.GRID),
    "E": WorkloadSpec(
        "E", 128 * 10**6, 128 * 10**6, KeyDistribution.REVERSE_GRID
    ),
}
"""Table 4 of the paper."""


def make_relation(
    n: int,
    distribution: KeyDistribution | str = KeyDistribution.LINEAR,
    tuple_bytes: int = 8,
    seed: int = 0,
    zipf_factor: float = 0.0,
    name: str = "",
) -> Relation:
    """Generate a relation with ``n`` tuples of the given distribution.

    Payloads are the 0-based tuple positions, which makes join results
    easy to verify: probing S against R recovers the matching R
    positions.
    """
    keys = generate_keys(distribution, n, seed=seed, zipf_factor=zipf_factor)
    payloads = np.arange(n, dtype=np.uint32)
    return Relation(keys=keys, payloads=payloads, tuple_bytes=tuple_bytes, name=name)


def make_workload(
    name: str,
    scale: int = 1,
    tuple_bytes: int = 8,
    seed: int = 0,
    skew_s_zipf: Optional[float] = None,
) -> Workload:
    """Instantiate a Table 4 workload, optionally scaled down.

    Args:
        name: one of ``"A".."E"``.
        scale: divide the paper's tuple counts by this factor (>= 1).
            ``scale=1`` is the paper's size; tests typically use large
            scales (e.g. 10000).
        tuple_bytes: logical tuple width.
        seed: RNG seed for the random distribution.
        skew_s_zipf: if given, replace S's keys with a Zipf-skewed draw
            over R's key domain (the Section 5.4 skew experiment, where
            "one of the relations is skewed").

    Raises:
        ConfigurationError: unknown workload name or invalid scale.
    """
    if name not in WORKLOAD_SPECS:
        raise ConfigurationError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOAD_SPECS)}"
        )
    if scale < 1:
        raise ConfigurationError(f"scale must be >= 1, got {scale}")
    spec = WORKLOAD_SPECS[name]
    r_tuples = max(1, spec.r_tuples // scale)
    s_tuples = max(1, spec.s_tuples // scale)

    r = make_relation(
        r_tuples,
        spec.distribution,
        tuple_bytes=tuple_bytes,
        seed=seed,
        name=f"{name}.R",
    )
    if skew_s_zipf is not None:
        # Skewed probe relation: keys drawn Zipf over R's key domain so
        # every S tuple still has a join partner in R.
        s_keys = zipf_keys(
            s_tuples, zipf_factor=skew_s_zipf, key_space=r_tuples, seed=seed + 1
        )
        if spec.distribution is not KeyDistribution.LINEAR:
            raise ConfigurationError(
                "skewed S is only defined for linear-keyed workloads "
                "(R keys must equal 1..N for Zipf ranks to hit them)"
            )
        s = Relation(
            keys=s_keys,
            payloads=np.arange(s_tuples, dtype=np.uint32),
            tuple_bytes=tuple_bytes,
            name=f"{name}.S(zipf={skew_s_zipf})",
        )
    elif spec.distribution is KeyDistribution.RANDOM:
        # Foreign-key join semantics: S keys are drawn (with
        # replacement) from R's key set so every probe tuple has a
        # partner, while the key *values* keep the random distribution.
        rng = np.random.default_rng(seed + 1)
        s_keys = rng.choice(r.keys, size=s_tuples, replace=True)
        s = Relation(
            keys=s_keys.astype(np.uint32),
            payloads=np.arange(s_tuples, dtype=np.uint32),
            tuple_bytes=tuple_bytes,
            name=f"{name}.S",
        )
    else:
        s = make_relation(
            s_tuples,
            spec.distribution,
            tuple_bytes=tuple_bytes,
            seed=seed + 1,
            name=f"{name}.S",
        )
    return Workload(name=name, r=r, s=s, distribution=spec.distribution)
