"""Arrival-pattern generators for open-loop load (ROADMAP item 5).

Closed-loop benchmarks (send, wait, send) measure the system at its
own pace and hide queueing; production traffic does not wait.  These
generators produce deterministic *arrival timestamps* — monotonically
non-decreasing offsets in seconds from stream start — for open-loop
drivers (``benchmarks/bench_gateway.py``, ``repro gateway bench``):
the driver fires each request at its scheduled instant regardless of
how the last one fared, so admission backpressure and latency tails
become visible.

Four shapes cover the scenarios the service layer must survive:

* :func:`poisson_arrivals` — memoryless steady state, the baseline;
* :func:`burst_arrivals` — whole batches landing at once with quiet
  gaps between them (cache stampedes, cron fan-out);
* :func:`diurnal_arrivals` — a sinusoidally modulated rate (the
  day/night cycle, compressed to a configurable period);
* :func:`ramp_arrivals` — a linear rate sweep from cold to peak (load
  tests, gradual rollout).

All are seeded and dependency-free (NumPy only).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ArrivalPattern",
    "burst_arrivals",
    "diurnal_arrivals",
    "generate_arrivals",
    "poisson_arrivals",
    "ramp_arrivals",
]


class ArrivalPattern(str, enum.Enum):
    """Named arrival shapes (CLI / sweep-grid spelling)."""

    POISSON = "poisson"
    BURST = "burst"
    DIURNAL = "diurnal"
    RAMP = "ramp"


def _check_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")


def poisson_arrivals(
    num_events: int, rate: float, seed: int = 0
) -> np.ndarray:
    """Memoryless arrivals at ``rate`` events/second.

    Returns ``num_events`` non-decreasing offsets (float64 seconds).
    """
    _check_positive("rate", rate)
    if num_events <= 0:
        return np.empty(0, dtype=np.float64)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=num_events)
    return np.cumsum(gaps)


def burst_arrivals(
    num_events: int,
    rate: float,
    burst_size: int = 32,
    duty_cycle: float = 0.1,
    seed: int = 0,
) -> np.ndarray:
    """Bursty arrivals: ``burst_size`` events packed into the first
    ``duty_cycle`` fraction of each period, then silence.

    The *average* rate stays ``rate`` (each period lasts
    ``burst_size / rate`` seconds), so burst and Poisson runs of equal
    length are directly comparable — the burst run simply concentrates
    the same offered load into short salvos that slam the admission
    queue.
    """
    _check_positive("rate", rate)
    if burst_size < 1:
        raise ConfigurationError(
            f"burst_size must be >= 1, got {burst_size}"
        )
    if not 0.0 < duty_cycle <= 1.0:
        raise ConfigurationError(
            f"duty_cycle must be in (0, 1], got {duty_cycle}"
        )
    if num_events <= 0:
        return np.empty(0, dtype=np.float64)
    rng = np.random.default_rng(seed)
    period_s = burst_size / rate
    window_s = period_s * duty_cycle
    index = np.arange(num_events)
    period_of = index // burst_size
    # uniform jitter inside each burst window, sorted within the burst
    # so offsets stay non-decreasing
    jitter = rng.uniform(0.0, window_s, size=num_events)
    for start in range(0, num_events, burst_size):
        jitter[start:start + burst_size] = np.sort(
            jitter[start:start + burst_size]
        )
    return period_of * period_s + jitter


def diurnal_arrivals(
    num_events: int,
    mean_rate: float,
    period_s: float = 60.0,
    amplitude: float = 0.8,
    seed: int = 0,
) -> np.ndarray:
    """A day/night cycle: Poisson arrivals whose instantaneous rate is
    ``mean_rate * (1 + amplitude * sin(2*pi*t / period_s))``.

    ``amplitude`` in ``[0, 1)`` — at 0 this is plain Poisson; near 1
    the trough almost silences the stream while the crest doubles it.
    Sampled by time-rescaling: unit-rate exponential increments are
    inverted through the integrated rate function step by step.
    """
    _check_positive("mean_rate", mean_rate)
    _check_positive("period_s", period_s)
    if not 0.0 <= amplitude < 1.0:
        raise ConfigurationError(
            f"amplitude must be in [0, 1), got {amplitude}"
        )
    if num_events <= 0:
        return np.empty(0, dtype=np.float64)
    rng = np.random.default_rng(seed)
    increments = rng.exponential(1.0, size=num_events)
    out = np.empty(num_events, dtype=np.float64)
    t = 0.0
    omega = 2.0 * np.pi / period_s
    max_step = period_s / 64.0
    for i, target in enumerate(increments):
        # advance t until the integrated rate accrues `target` more
        # expected events; fixed coarse steps keep this dependency-free
        # and exact enough for load generation.  Each iteration either
        # finishes the event inside one step or burns a whole step's
        # accrual (bounded below by mean_rate * (1 - amplitude) *
        # max_step > 0), so the loop always terminates — no
        # remaining-driven step sizes that can underflow to zero.
        remaining = target
        while remaining > 0.0:
            instantaneous = mean_rate * (1.0 + amplitude * np.sin(omega * t))
            finish = remaining / instantaneous
            if finish <= max_step:
                t += finish
                break
            remaining -= instantaneous * max_step
            t += max_step
        out[i] = t
    return out


def ramp_arrivals(
    num_events: int,
    start_rate: float,
    end_rate: float,
    seed: int = 0,
) -> np.ndarray:
    """A linear rate sweep: event ``i``'s inter-arrival gap is drawn at
    the rate interpolated between ``start_rate`` and ``end_rate``
    across the event sequence — a cold-to-peak (or peak-to-cold) ramp.
    """
    _check_positive("start_rate", start_rate)
    _check_positive("end_rate", end_rate)
    if num_events <= 0:
        return np.empty(0, dtype=np.float64)
    rng = np.random.default_rng(seed)
    fractions = (
        np.arange(num_events) / max(1, num_events - 1)
        if num_events > 1
        else np.zeros(1)
    )
    rates = start_rate + (end_rate - start_rate) * fractions
    gaps = rng.exponential(1.0, size=num_events) / rates
    return np.cumsum(gaps)


def generate_arrivals(
    pattern: "ArrivalPattern | str",
    num_events: int,
    rate: float,
    seed: int = 0,
    **kwargs,
) -> np.ndarray:
    """Dispatch by :class:`ArrivalPattern` name (CLI entry point).

    ``rate`` is the mean rate for every pattern; pattern-specific knobs
    (``burst_size``, ``duty_cycle``, ``period_s``, ``amplitude``,
    ``end_rate``) pass through ``kwargs``.
    """
    pattern = ArrivalPattern(pattern)
    if pattern is ArrivalPattern.POISSON:
        return poisson_arrivals(num_events, rate, seed=seed, **kwargs)
    if pattern is ArrivalPattern.BURST:
        return burst_arrivals(num_events, rate, seed=seed, **kwargs)
    if pattern is ArrivalPattern.DIURNAL:
        return diurnal_arrivals(num_events, rate, seed=seed, **kwargs)
    end_rate = kwargs.pop("end_rate", rate * 4.0)
    return ramp_arrivals(num_events, rate, end_rate, seed=seed, **kwargs)
