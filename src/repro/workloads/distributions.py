"""Key-distribution generators from Section 3.2 of the paper.

The paper (following Richter et al. [29]) evaluates partitioning on
four 32-bit key distributions:

1. **Linear** — unique keys ``1..N``.
2. **Random** — pseudo-random keys over the full 32-bit integer range.
3. **Grid** — every byte of the 4-byte key cycles through ``1..128``,
   least-significant byte fastest.  Resembles address patterns/strings.
4. **Reverse grid** — like grid, but the *most* significant byte is
   incremented first.

Grid-family keys are the adversarial case for radix partitioning: the
low bits carry very little entropy (reverse grid) or highly regular
structure, so taking the N least-significant bits produces grossly
unbalanced partitions (Figure 3a), while a robust hash (murmur) stays
balanced (Figure 3b).

Zipf-skewed keys (Section 5.4) are used to stress the PAD mode of the
FPGA partitioner.

All generators return ``numpy.ndarray`` of dtype ``uint32`` and are
deterministic given a seed.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

_GRID_BYTE_CARDINALITY = 128  # each key byte takes values 1..128


class KeyDistribution(str, enum.Enum):
    """The key distributions of Section 3.2 (plus Zipf skew)."""

    LINEAR = "linear"
    RANDOM = "random"
    GRID = "grid"
    REVERSE_GRID = "reverse_grid"
    ZIPF = "zipf"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _require_positive(n: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"number of keys must be positive, got {n}")


def linear_keys(n: int) -> np.ndarray:
    """Unique keys in the range ``[1, n]`` (linear distribution)."""
    _require_positive(n)
    if n > 0xFFFFFFFF:
        raise ConfigurationError(
            f"linear distribution cannot produce {n} unique 32-bit keys"
        )
    return np.arange(1, n + 1, dtype=np.uint64).astype(np.uint32)


def random_keys(n: int, seed: int = 0) -> np.ndarray:
    """Pseudo-random keys over the full 32-bit range.

    The paper uses the C pseudo-random generator; any uniform 32-bit
    source has the same partitioning behaviour, so we use NumPy's PCG64.
    """
    _require_positive(n)
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**32, size=n, dtype=np.uint64).astype(np.uint32)


def _grid_column(n: int, byte_index: int, significance: str) -> np.ndarray:
    """Value of one key byte for grid-style enumeration.

    ``byte_index`` 0 is the byte that increments fastest.  For the grid
    distribution that is the least significant byte; for reverse grid it
    is the most significant byte.
    """
    period = _GRID_BYTE_CARDINALITY ** byte_index
    values = (np.arange(n, dtype=np.uint64) // period) % _GRID_BYTE_CARDINALITY
    values = values + 1  # bytes take values 1..128
    if significance == "lsb_first":
        shift = 8 * byte_index
    else:
        shift = 8 * (3 - byte_index)
    return (values << np.uint64(shift)).astype(np.uint64)


def _grid_family(n: int, significance: str) -> np.ndarray:
    if n > _GRID_BYTE_CARDINALITY**4:
        raise ConfigurationError(
            f"grid distribution supports at most 128^4 unique keys, got {n}"
        )
    keys = np.zeros(n, dtype=np.uint64)
    for byte_index in range(4):
        keys |= _grid_column(n, byte_index, significance)
    return keys.astype(np.uint32)


def grid_keys(n: int) -> np.ndarray:
    """Grid distribution: LSB cycles through 1..128 fastest."""
    _require_positive(n)
    return _grid_family(n, "lsb_first")


def reverse_grid_keys(n: int) -> np.ndarray:
    """Reverse grid distribution: MSB cycles through 1..128 fastest."""
    _require_positive(n)
    return _grid_family(n, "msb_first")


def zipf_keys(
    n: int,
    zipf_factor: float,
    key_space: Optional[int] = None,
    seed: int = 0,
) -> np.ndarray:
    """Zipf-skewed keys (Section 5.4).

    ``zipf_factor`` is the exponent of the Zipf distribution.  A factor
    of 0 degenerates to uniform over ``key_space`` distinct keys; the
    paper sweeps factors 0.25..1.75 (Figure 13) and notes the FPGA PAD
    mode starts failing above 0.25.

    The inverse-CDF method is used so the generator is vectorised and
    deterministic.  Rank ``k`` (1-based) receives probability
    proportional to ``k**-zipf_factor``, and rank ``k`` is mapped to key
    ``k`` — so low key values are the heavy hitters.
    """
    _require_positive(n)
    if zipf_factor < 0:
        raise ConfigurationError(f"zipf factor must be >= 0, got {zipf_factor}")
    if key_space is None:
        key_space = n
    if key_space <= 0:
        raise ConfigurationError(f"key space must be positive, got {key_space}")

    rng = np.random.default_rng(seed)
    ranks = np.arange(1, key_space + 1, dtype=np.float64)
    weights = ranks**-zipf_factor
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(n)
    keys = np.searchsorted(cdf, draws, side="left") + 1
    return keys.astype(np.uint32)


def _grid_family_range(
    start: int, stop: int, significance: str
) -> np.ndarray:
    """Grid-style keys for index range [start, stop) without
    materialising the prefix — used for streaming over paper-scale
    relations."""
    if stop > _GRID_BYTE_CARDINALITY**4:
        raise ConfigurationError(
            "grid distribution supports at most 128^4 unique keys"
        )
    indices = np.arange(start, stop, dtype=np.uint64)
    keys = np.zeros(stop - start, dtype=np.uint64)
    for byte_index in range(4):
        period = _GRID_BYTE_CARDINALITY**byte_index
        values = (indices // period) % _GRID_BYTE_CARDINALITY + 1
        if significance == "lsb_first":
            shift = 8 * byte_index
        else:
            shift = 8 * (3 - byte_index)
        keys |= (values << np.uint64(shift)).astype(np.uint64)
    return keys.astype(np.uint32)


def iter_key_chunks(
    distribution: KeyDistribution | str,
    n: int,
    chunk_size: int = 1 << 22,
    seed: int = 0,
):
    """Yield the key column of a paper-scale relation in chunks.

    Lets analyses (e.g. the full-scale partition histograms the
    Figure 12 timing needs) run over 128e6 keys without holding the
    relation in memory.  The concatenation of all chunks equals
    ``generate_keys(distribution, n, seed)`` for the deterministic
    distributions, and is distribution-identical for the random one.
    """
    distribution = KeyDistribution(distribution)
    _require_positive(n)
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    if distribution is KeyDistribution.RANDOM:
        rng = np.random.default_rng(seed)
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            yield rng.integers(
                0, 2**32, size=stop - start, dtype=np.uint64
            ).astype(np.uint32)
        return
    if distribution is KeyDistribution.ZIPF:
        raise ConfigurationError(
            "zipf keys are not index-addressable; generate them whole"
        )
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        if distribution is KeyDistribution.LINEAR:
            yield (
                np.arange(start + 1, stop + 1, dtype=np.uint64)
            ).astype(np.uint32)
        elif distribution is KeyDistribution.GRID:
            yield _grid_family_range(start, stop, "lsb_first")
        else:
            yield _grid_family_range(start, stop, "msb_first")


def generate_keys(
    distribution: KeyDistribution | str,
    n: int,
    seed: int = 0,
    zipf_factor: float = 0.0,
) -> np.ndarray:
    """Dispatch to the named key generator.

    Accepts either a :class:`KeyDistribution` or its string value.
    """
    distribution = KeyDistribution(distribution)
    if distribution is KeyDistribution.LINEAR:
        return linear_keys(n)
    if distribution is KeyDistribution.RANDOM:
        return random_keys(n, seed=seed)
    if distribution is KeyDistribution.GRID:
        return grid_keys(n)
    if distribution is KeyDistribution.REVERSE_GRID:
        return reverse_grid_keys(n)
    if distribution is KeyDistribution.ZIPF:
        return zipf_keys(n, zipf_factor=zipf_factor, seed=seed)
    raise ConfigurationError(f"unknown key distribution: {distribution}")
