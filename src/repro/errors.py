"""Exception hierarchy for the reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so
callers can catch library failures with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied by the caller."""


class PartitionOverflowError(ReproError):
    """A PAD-mode partition exceeded its preassigned fixed size.

    Mirrors the abort-and-fall-back behaviour described in Section 4.5
    of the paper: in PAD mode each partition gets ``n / fanout +
    padding`` slots; if a partition fills up, the hardware run aborts
    and the caller is expected to fall back to a CPU partitioner (or to
    HIST mode).
    """

    def __init__(self, partition: int, capacity: int, tuples_seen: int):
        self.partition = partition
        self.capacity = capacity
        self.tuples_seen = tuples_seen
        super().__init__(
            f"partition {partition} overflowed its PAD-mode capacity of "
            f"{capacity} tuples after {tuples_seen} input tuples"
        )


class SimulationError(ReproError):
    """The cycle-level simulation reached an inconsistent state."""


class FifoOverflowError(SimulationError):
    """A hardware FIFO was pushed while full.

    The paper's circuit guarantees this never happens because
    back-pressure is propagated to the read-request issue logic
    (Section 4.3).  The simulator raises instead of silently dropping
    data so that any back-pressure bug is loud.
    """


class FifoUnderflowError(SimulationError):
    """A hardware FIFO was popped while empty."""


class MemoryError_(ReproError):
    """Shared-memory pool errors (allocation, addressing)."""


class AddressTranslationError(MemoryError_):
    """A virtual address had no valid page-table entry."""
