"""Consistent-hash ring with virtual nodes — the cluster's address map.

The router needs a stable answer to one question: *which shard owns
partition ``p``?* — stable in the precise consistent-hashing sense
that adding or removing a shard moves only the keys that must move
(roughly a ``1 / shards`` fraction), never reshuffles the survivors.

Each shard contributes ``virtual_nodes`` points on a 32-bit ring; a
partition hashes to a ring position and is owned by the first shard
point clockwise from it.  Virtual nodes smooth the arc lengths, so the
per-shard load concentrates around the fair share with relative error
~``O(1 / sqrt(virtual_nodes))``; the property test in
``tests/test_cluster.py`` pins both the movement bound and the
smoothing.

Everything is deterministic under ``seed``: ring points come from the
partitioner's own :func:`~repro.core.hashing.murmur3_finalizer` over a
seed-salted encoding of ``(shard_id, vnode)``, so two routers built
with the same shard ids and seed agree on every ownership decision —
the property a real deployment needs for client-side routing.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hashing import murmur3_finalizer
from repro.errors import ConfigurationError

__all__ = ["ConsistentHashRing"]

#: golden-ratio odd constant for seed mixing (Knuth multiplicative)
_SEED_MIX = 0x9E3779B9


class ConsistentHashRing:
    """Consistent-hash ring mapping partition ids to shard ids.

    Args:
        shard_ids: initial shard identifiers (strings or ints); order
            does not matter — ownership depends only on the id set and
            the seed.
        virtual_nodes: ring points per shard.  More points mean
            smoother load and smaller movement variance on
            join/leave, at O(shards * virtual_nodes) lookup-table cost.
        seed: deterministic salt for every ring position.
    """

    def __init__(
        self,
        shard_ids: Sequence,
        virtual_nodes: int = 64,
        seed: int = 0,
    ):
        if virtual_nodes < 1:
            raise ConfigurationError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.virtual_nodes = int(virtual_nodes)
        self.seed = int(seed)
        self._shards: List = []
        self._points: np.ndarray = np.empty(0, dtype=np.uint32)
        self._point_shard: np.ndarray = np.empty(0, dtype=np.int64)
        #: cache of partition->position arrays, keyed by fan-out
        self._partition_positions: Dict[int, np.ndarray] = {}
        seen = set()
        for shard_id in shard_ids:
            if shard_id in seen:
                raise ConfigurationError(
                    f"duplicate shard id {shard_id!r} in ring"
                )
            seen.add(shard_id)
            self._shards.append(shard_id)
        if not self._shards:
            raise ConfigurationError("ring needs at least one shard")
        self._rebuild()

    # -- construction ---------------------------------------------------

    def _shard_points(self, shard_id) -> np.ndarray:
        """The ``virtual_nodes`` ring positions of one shard.

        Positions depend only on ``(shard_id, vnode, seed)`` — never on
        the other shards — which is exactly what bounds key movement:
        a join adds points, a leave removes points, nothing else on the
        ring shifts.
        """
        base = zlib.crc32(repr(shard_id).encode()) & 0xFFFFFFFF
        salt = (self.seed * _SEED_MIX) & 0xFFFFFFFF
        vnodes = np.arange(self.virtual_nodes, dtype=np.uint32)
        mixed = murmur3_finalizer(
            np.full(self.virtual_nodes, base, dtype=np.uint32)
            ^ np.uint32(salt)
        )
        return murmur3_finalizer(mixed + vnodes * np.uint32(_SEED_MIX))

    def _rebuild(self) -> None:
        points = np.concatenate(
            [self._shard_points(s) for s in self._shards]
        )
        shard_index = np.repeat(
            np.arange(len(self._shards), dtype=np.int64),
            self.virtual_nodes,
        )
        # sort by (point, shard index) so coincident points break ties
        # deterministically by shard order
        order = np.lexsort((shard_index, points))
        self._points = points[order]
        self._point_shard = shard_index[order]
        self._partition_positions.clear()

    # -- membership -----------------------------------------------------

    @property
    def shard_ids(self) -> List:
        """The current shard id list (insertion order)."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id) -> bool:
        return shard_id in self._shards

    def add_shard(self, shard_id) -> None:
        """Join a shard; only keys landing on its new points move."""
        if shard_id in self._shards:
            raise ConfigurationError(f"shard {shard_id!r} already in ring")
        self._shards.append(shard_id)
        self._rebuild()

    def remove_shard(self, shard_id) -> None:
        """Leave a shard; only its own keys move, to their successors."""
        if shard_id not in self._shards:
            raise ConfigurationError(f"shard {shard_id!r} not in ring")
        if len(self._shards) == 1:
            raise ConfigurationError("cannot remove the last shard")
        self._shards.remove(shard_id)
        self._rebuild()

    # -- lookup ---------------------------------------------------------

    def _positions_for(self, num_partitions: int) -> np.ndarray:
        """Ring positions of partitions ``0..P-1`` (cached per fan-out).

        Partition positions are independent of membership, so the cache
        survives join/leave — only the successor search repeats.
        """
        positions = self._partition_positions.get(num_partitions)
        if positions is None:
            if num_partitions < 1:
                raise ConfigurationError(
                    f"num_partitions must be >= 1, got {num_partitions}"
                )
            salt = (self.seed * _SEED_MIX + 1) & 0xFFFFFFFF
            positions = murmur3_finalizer(
                np.arange(num_partitions, dtype=np.uint32)
                ^ np.uint32(salt)
            )
            self._partition_positions[num_partitions] = positions
        return positions

    def owners(self, num_partitions: int) -> np.ndarray:
        """Primary shard *index* (into :attr:`shard_ids`) per partition.

        Vectorised successor search: one ``searchsorted`` against the
        sorted ring points, wrapping past the last point to the first.
        """
        positions = self._positions_for(num_partitions)
        slots = np.searchsorted(self._points, positions, side="left")
        slots %= len(self._points)
        return self._point_shard[slots]

    def owner_of(self, partition: int, num_partitions: int):
        """Primary shard *id* of one partition."""
        return self._shards[int(self.owners(num_partitions)[partition])]

    def preference(
        self, partition: int, num_partitions: int, count: Optional[int] = None
    ) -> List[int]:
        """Ordered failover/replica candidates for one partition.

        Walks the ring clockwise from the partition's position and
        collects the first ``count`` *distinct* shards (default: all of
        them).  The first entry is the primary; replica sets are
        disjoint from it and from each other by construction.
        """
        if count is None:
            count = len(self._shards)
        count = min(count, len(self._shards))
        positions = self._positions_for(num_partitions)
        start = int(
            np.searchsorted(
                self._points, positions[partition], side="left"
            )
        ) % len(self._points)
        chosen: List[int] = []
        seen = set()
        for step in range(len(self._points)):
            shard = int(self._point_shard[(start + step) % len(self._points)])
            if shard not in seen:
                seen.add(shard)
                chosen.append(shard)
                if len(chosen) == count:
                    break
        return chosen

    def preference_ids(
        self, partition: int, num_partitions: int, count: Optional[int] = None
    ) -> List:
        """:meth:`preference`, resolved to shard ids."""
        return [
            self._shards[i]
            for i in self.preference(partition, num_partitions, count)
        ]

    # -- diagnostics ----------------------------------------------------

    def load_shares(self, num_partitions: int) -> np.ndarray:
        """Fraction of partitions owned per shard (diagnostics)."""
        owners = self.owners(num_partitions)
        counts = np.bincount(owners, minlength=len(self._shards))
        return counts / float(num_partitions)

    def describe(self, num_partitions: int = 1024) -> List[Tuple]:
        """(shard_id, owned-partition share) pairs, for reports."""
        shares = self.load_shares(num_partitions)
        return [
            (shard, float(share))
            for shard, share in zip(self._shards, shares)
        ]
