"""Sharded partition cluster: many service nodes, one front door.

The "millions of users" layer: N in-process
:class:`~repro.service.service.PartitionService` shard nodes behind a
:class:`~repro.cluster.router.ShardRouter` that routes by
consistent-hash ring (:mod:`~repro.cluster.ring`), replicates hot
partitions RePart-style (:mod:`~repro.cluster.placement`), fails over
to replicas on shard death, and hands spill runs off to peers under
memory pressure (:mod:`~repro.cluster.handoff`) — while holding the
repo's invariant that cluster output is byte-identical to a
single-node ``partition()`` in every mode.
"""

from repro.cluster.handoff import HandoffResult, SpillHandoff
from repro.cluster.node import ShardNode, ShardStats
from repro.cluster.placement import PlacementPlan, PlacementPolicy
from repro.cluster.ring import ConsistentHashRing
from repro.cluster.router import (
    ClusterResponse,
    ShardRouter,
    shard_config,
)

__all__ = [
    "ClusterResponse",
    "ConsistentHashRing",
    "HandoffResult",
    "PlacementPlan",
    "PlacementPolicy",
    "ShardNode",
    "ShardRouter",
    "ShardStats",
    "SpillHandoff",
    "shard_config",
]
