"""RePart-style hot-partition placement over the consistent-hash ring.

Plain consistent hashing fixes each partition to one shard, so a
Zipf-skewed key column concentrates the heavy partitions on whichever
shards happen to own them.  RePart's observation (PAPERS.md) is that
*replicating* hot partitions — making them routable to any of R shards
instead of exactly one — trades a little memory for balanced traffic:
the router may then place each hot partition on the least-loaded of
its replica candidates.

:class:`PlacementPolicy` implements that twist with the repo's own
signals:

* the **request itself** — the router's accounting pass produces the
  exact per-partition histogram, so hot partitions of *this* request
  are known before any tuple moves;
* the **Misra–Gries heavy-hitter sketch**
  (:class:`~repro.analysis.sketch.HeavyHitterSketch`) accumulated over
  past requests' keys, so persistent hot keys stay replicated even when
  an individual request looks mild;
* **exchange-plan skew metrics** from
  :class:`~repro.ops.distributed.ExchangePlan` — a distributed plan's
  ``partition_counts`` and ``receive_imbalance`` feed the same policy,
  so the cluster reuses what the all-to-all planner already measured.

Placement is deterministic: hot partitions are spread greedily
(largest first, onto the least-loaded replica candidate), so two
routers with the same observations make the same decision.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Optional

import numpy as np

from repro import kernels
from repro.analysis.sketch import HeavyHitterSketch
from repro.errors import ConfigurationError

__all__ = ["PlacementPlan", "PlacementPolicy"]

#: cap on how many keys one request feeds the sketch (keeps the
#: per-request policy cost bounded on multi-million-tuple requests).
#: A uniform sample of 4k keys surfaces any key with more than
#: ~hot_factor/P of the stream with high probability regardless of how
#: the input is ordered, and the Misra–Gries update loops over *unique*
#: sampled keys in Python, so the cap is what bounds the policy's
#: per-request cost.
_SKETCH_SAMPLE = 1 << 12


@dataclasses.dataclass
class PlacementPlan:
    """One request's partition→shard decision.

    ``owner`` is what the router scatters by; ``primary`` is what plain
    consistent hashing would have chosen.  ``hot`` marks the partitions
    that were eligible for replication; ``replica_candidates`` records,
    for each hot partition, the shard set its traffic may use.
    """

    owner: np.ndarray
    primary: np.ndarray
    hot: np.ndarray
    replica_candidates: Dict[int, List[int]]

    @property
    def moved_partitions(self) -> int:
        """Hot partitions actually placed off their primary."""
        return int(np.count_nonzero(self.owner != self.primary))

    @property
    def replicated_partitions(self) -> int:
        return int(np.count_nonzero(self.hot))


class PlacementPolicy:
    """Decides which partitions are hot and where their traffic goes.

    Args:
        replicas: base replication degree R — a hot partition may run
            on any of the first R distinct shards in its ring
            preference order.  ``1`` disables replication (pure
            consistent hashing).
        hot_factor: a partition is request-hot when its tuple count
            exceeds ``hot_factor`` fair shares of the request.
        sketch_capacity: Misra–Gries counter budget for the historical
            key sketch.
        imbalance_boost: when observed exchange-plan
            ``receive_imbalance`` exceeds this, the effective
            replication degree is raised by one (clamped to the shard
            count) — the cluster replicates more aggressively exactly
            when the all-to-all planner reports skew.  ``None``
            disables the adaptation.
        sample_seed: seed for the uniform key-sampling RNG used by
            :meth:`observe_keys`.  Two policies built with the same
            seed and fed the same observation sequence draw identical
            samples, keeping placement deterministic across routers.
    """

    def __init__(
        self,
        replicas: int = 2,
        hot_factor: float = 2.0,
        sketch_capacity: int = 64,
        imbalance_boost: Optional[float] = 1.5,
        sample_seed: int = 0x5EED,
    ):
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        if hot_factor <= 0:
            raise ConfigurationError(
                f"hot_factor must be positive, got {hot_factor}"
            )
        self.replicas = int(replicas)
        self.hot_factor = float(hot_factor)
        self.imbalance_boost = imbalance_boost
        self.sketch = HeavyHitterSketch(capacity=sketch_capacity)
        self._sample_rng = np.random.default_rng(sample_seed)
        self._lock = threading.Lock()
        self._observed_imbalance = 1.0
        #: decayed per-partition counts from observed exchange plans,
        #: keyed by fan-out (plans of other fan-outs can't be reused)
        self._plan_counts: Dict[int, np.ndarray] = {}

    # -- observations ---------------------------------------------------

    def observe_keys(self, keys: np.ndarray) -> None:
        """Feed one request's keys into the heavy-hitter sketch.

        Samples uniformly at random (seeded) rather than with a stride:
        a stride aliases against sorted, periodic, or run-length-
        clustered inputs — e.g. Zipf keys arriving as runs shorter than
        the stride are systematically skipped or over-weighted — while
        a uniform sample sees every key with probability proportional
        to its true frequency no matter how the stream is ordered.
        """
        keys = np.asarray(keys)
        if keys.size > _SKETCH_SAMPLE:
            with self._lock:
                idx = self._sample_rng.integers(
                    0, keys.size, size=_SKETCH_SAMPLE
                )
            keys = keys[idx]
        with self._lock:
            self.sketch.add(keys)

    def observe_profile(self, profile, num_partitions: int = 64) -> None:
        """Absorb an optimizer :class:`~repro.optimize.profile.WorkloadProfile`.

        The optimizer's sketch-detected hot set feeds the replication
        decision twice over: each hot key joins the Misra–Gries
        counters at its share lower bound (so :meth:`hot_mask` flags
        its partition even before this policy has seen the key
        itself), and the implied partition imbalance — the top key's
        share times the fan-out — drives the same adaptive replication
        boost that exchange-plan skew does, raising the effective R.
        """
        if profile.num_tuples <= 0 or not profile.hot_keys:
            return
        with self._lock:
            counters = self.sketch.counters
            for key, share in zip(profile.hot_keys, profile.hot_shares):
                estimate = int(share * profile.num_tuples)
                if estimate <= 0:
                    continue
                counters[int(key)] = max(counters.get(int(key), 0), estimate)
            if len(counters) > self.sketch.capacity:
                ranked = sorted(counters.items(), key=lambda kv: -kv[1])
                shed = ranked[self.sketch.capacity][1]
                self.sketch.counters = {
                    k: v - shed for k, v in ranked if v > shed
                }
            implied = profile.max_key_share * num_partitions
            self._observed_imbalance = max(
                self._observed_imbalance, implied
            )

    def observe_plan(self, plan) -> None:
        """Absorb an :class:`~repro.ops.distributed.ExchangePlan`.

        Reuses the planner's skew metrics: ``partition_counts`` joins
        the historical per-partition signal (decayed 50/50 against what
        was already seen) and ``receive_imbalance`` drives the adaptive
        replication boost.
        """
        with self._lock:
            self._observed_imbalance = float(plan.receive_imbalance)
            counts = getattr(plan, "partition_counts", None)
            if counts is None:
                return
            counts = np.asarray(counts, dtype=np.float64)
            prior = self._plan_counts.get(len(counts))
            if prior is None:
                self._plan_counts[len(counts)] = counts.copy()
            else:
                self._plan_counts[len(counts)] = 0.5 * prior + 0.5 * counts

    def effective_replicas(self, num_shards: int) -> int:
        """Replication degree for the next placement decision."""
        replicas = self.replicas
        if (
            self.imbalance_boost is not None
            and self._observed_imbalance > self.imbalance_boost
        ):
            replicas += 1
        return max(1, min(replicas, num_shards))

    # -- hot detection --------------------------------------------------

    def hot_mask(
        self,
        counts: np.ndarray,
        num_partitions: int,
        uses_hash: bool = True,
    ) -> np.ndarray:
        """Boolean mask of partitions whose traffic deserves spreading.

        Union of the request-exact signal (count above ``hot_factor``
        fair shares), the sketch signal (a retained heavy-hitter key
        whose lower-bound share exceeds ``hot_factor / P`` maps into
        the partition), and the observed exchange-plan signal.
        """
        counts = np.asarray(counts, dtype=np.int64)
        total = int(counts.sum())
        hot = np.zeros(num_partitions, dtype=bool)
        if total > 0:
            hot |= counts > (self.hot_factor * total) / num_partitions
        with self._lock:
            counters = dict(self.sketch.counters)
            plan_counts = self._plan_counts.get(num_partitions)
            if plan_counts is not None:
                plan_counts = plan_counts.copy()
        if counters:
            sketch_total = sum(counters.values())
            threshold = (self.hot_factor * sketch_total) / num_partitions
            hot_keys = np.array(
                [k for k, v in counters.items() if v > threshold],
                dtype=np.uint32,
            )
            if hot_keys.size:
                hot[kernels.hash_only(hot_keys, num_partitions, uses_hash)] = (
                    True
                )
        if plan_counts is not None and plan_counts.sum() > 0:
            hot |= (
                plan_counts
                > (self.hot_factor * plan_counts.sum()) / num_partitions
            )
        return hot

    # -- placement ------------------------------------------------------

    def place(
        self,
        counts: np.ndarray,
        ring,
        uses_hash: bool = True,
    ) -> PlacementPlan:
        """Choose a serving shard per partition for one request.

        Cold partitions stay on their consistent-hash primary.  Hot
        partitions are spread greedily — largest first, each onto the
        currently least-loaded shard among its R replica candidates —
        which both preserves determinism and provably never increases
        the load of a shard beyond what keeping the partition home
        would have.
        """
        counts = np.asarray(counts, dtype=np.int64)
        num_partitions = len(counts)
        primary = ring.owners(num_partitions)
        owner = primary.copy()
        num_shards = len(ring)
        replicas = self.effective_replicas(num_shards)
        hot = self.hot_mask(counts, num_partitions, uses_hash)
        candidates: Dict[int, List[int]] = {}
        if replicas <= 1 or num_shards <= 1 or not hot.any():
            return PlacementPlan(
                owner=owner,
                primary=primary,
                hot=(
                    hot
                    if replicas > 1 and num_shards > 1
                    else np.zeros(num_partitions, dtype=bool)
                ),
                replica_candidates=candidates,
            )
        load = np.bincount(
            primary, weights=counts.astype(np.float64), minlength=num_shards
        )
        hot_ids = np.nonzero(hot)[0]
        # largest hot partition first: the greedy argmin choice then
        # packs the big rocks before the pebbles
        for p in hot_ids[np.argsort(-counts[hot_ids], kind="stable")]:
            p = int(p)
            cands = ring.preference(p, num_partitions, replicas)
            candidates[p] = cands
            load[owner[p]] -= counts[p]
            best = min(cands, key=lambda s: (load[s], s))
            owner[p] = best
            load[best] += counts[p]
        return PlacementPlan(
            owner=owner,
            primary=primary,
            hot=hot,
            replica_candidates=candidates,
        )
