"""One shard of the partition cluster: a service plus its health view.

A :class:`ShardNode` hosts a full
:class:`~repro.service.service.PartitionService` (its own admission
queue, batching scheduler, degradation policy and dispatcher thread) —
the same object a single-node deployment runs — and adds what the
router needs around it:

* a **router-side circuit breaker**
  (:class:`~repro.service.degradation.CircuitBreaker`): the shard's
  *internal* breaker guards its FPGA; this one guards the shard itself.
  Failed or timed-out shard calls trip it, and an OPEN breaker makes
  the router route around the shard until the cooldown's half-open
  probe succeeds.
* a **storage root** on which peers may land spill-handoff stores and
  runs (see :mod:`repro.cluster.handoff`).
* **shard-local counters** (requests, tuples, failovers, handoffs) the
  router aggregates into per-shard Prometheus series.
* a :meth:`kill` switch modelling a crashed shard: in-flight work
  drains, every later submit raises — which is exactly the failure the
  router's failover path must absorb.
"""

from __future__ import annotations

import dataclasses
import pathlib
import tempfile
import time
from typing import Optional

from repro.errors import ReproError
from repro.service.degradation import CircuitBreaker
from repro.service.service import PartitionRequest, PartitionService

__all__ = ["ShardNode", "ShardStats"]


@dataclasses.dataclass
class ShardStats:
    """Router-visible shard counters (all monotonic)."""

    requests: int = 0
    tuples: int = 0
    failures: int = 0
    rejections: int = 0
    failovers_in: int = 0
    handoffs_out: int = 0
    handoffs_in: int = 0

    def to_dict(self) -> dict:
        """Plain-dict view of the counters (snapshot/export friendly)."""
        return dataclasses.asdict(self)


class ShardNode:
    """An in-process cluster shard: one service, one identity.

    Args:
        shard_id: stable identifier; it is the shard's position on the
            consistent-hash ring and its Prometheus ``shard`` label.
        storage_root: directory for this shard's on-disk state
            (spill-handoff stores/runs land here); a temporary
            directory is created if omitted.
        service_kwargs: forwarded to :class:`PartitionService` (policy,
            queue bounds, batching, spill knobs ...).
        breaker: router-side circuit breaker; a short-cooldown default
            is built if omitted (shard failover should react in
            milliseconds, not the FPGA breaker's quarter second).
        handoff_tuples: memory-pressure threshold — the router hands a
            routed slice of at least this many tuples off to a peer's
            storage instead of submitting it here.  ``None`` disables
            pressure-triggered handoff for this shard.
        tracer: optional tracer, forwarded to the service.
        clock: injectable clock shared with the breaker.
    """

    def __init__(
        self,
        shard_id: str,
        storage_root=None,
        service_kwargs: Optional[dict] = None,
        breaker: Optional[CircuitBreaker] = None,
        handoff_tuples: Optional[int] = None,
        tracer=None,
        clock=time.monotonic,
    ):
        self.shard_id = str(shard_id)
        if storage_root is None:
            storage_root = tempfile.mkdtemp(prefix=f"repro-shard-{shard_id}-")
        self.storage_root = pathlib.Path(storage_root)
        self.storage_root.mkdir(parents=True, exist_ok=True)
        kwargs = dict(service_kwargs or {})
        kwargs.setdefault("tracer", tracer)
        kwargs.setdefault("clock", clock)
        self.service = PartitionService(**kwargs)
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=2, cooldown_s=0.05, clock=clock
        )
        self.handoff_tuples = handoff_tuples
        self.stats = ShardStats()
        self._started = False
        self._killed = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ShardNode":
        """Start the shard's service; a killed shard stays down."""
        if not self._killed:
            self.service.start()
            self._started = True
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Drain in-flight work and stop the shard's service."""
        self.service.stop(timeout)
        self._started = False

    def kill(self, timeout: Optional[float] = 30.0) -> None:
        """Take the shard down as a crash: drain in-flight work, then
        refuse everything.  (A real crash would also drop in-flight
        requests; those surface as FAILED responses, which the router
        handles the same way.)"""
        self._killed = True
        self.service.stop(timeout)
        self._started = False

    # -- health ---------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._started and not self._killed

    @property
    def healthy(self) -> bool:
        """Routable right now: alive and breaker not OPEN.

        Half-open counts as healthy — the next routed request *is* the
        probe, and its outcome closes or re-opens the breaker.
        """
        return self.alive and self.breaker.state != CircuitBreaker.OPEN

    # -- work -----------------------------------------------------------

    def submit(self, request: PartitionRequest):
        """Submit to this shard's service; raises
        :class:`~repro.errors.ReproError` when the shard is down."""
        if not self.alive:
            raise ReproError(f"shard {self.shard_id} is down")
        self.stats.requests += 1
        self.stats.tuples += request.num_tuples
        return self.service.submit(request)

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> dict:
        """Service metrics snapshot plus shard-level state."""
        snap = self.service.metrics.to_dict()
        snap["shard"] = {
            "id": self.shard_id,
            "alive": self.alive,
            "breaker": self.breaker.state,
            **self.stats.to_dict(),
        }
        return snap

    def prometheus(self) -> str:
        """This shard's exposition, every series labelled
        ``shard="<id>"`` so one scrape page covers the whole cluster."""
        from repro.obs.export import prometheus_from_snapshot

        return prometheus_from_snapshot(
            self.service.metrics.to_dict(), labels={"shard": self.shard_id}
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "down"
        return f"<ShardNode {self.shard_id} {state} {self.breaker.state}>"
