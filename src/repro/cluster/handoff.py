"""Cross-node spill handoff: borrow a peer's memory before shedding load.

When a shard is memory-pressured (a routed slice exceeds its
``handoff_tuples`` budget) or its admission queue rejects outright, the
cluster's last resort used to be shedding the request.  Handoff adds a
better one: drain the slice through a
:class:`~repro.storage.spill.SpillPartitioner` run whose store and
partition files live under a *peer's* storage root.  The donor shard
never materialises the slice; the peer lends disk and page cache; the
resulting :class:`~repro.storage.spill.PartitionSpill` serves the
partitions memmap-lazily, byte-identical to an in-memory run (the
PR 4 guarantee this module leans on).

The handoff is synchronous and owned by the router — the donor only
contributes its identity to the span and counters, which is what makes
the path usable even when the donor is the thing that's failing.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.tracing import resolve_tracer

__all__ = ["HandoffResult", "SpillHandoff"]

#: default in-memory budget for a handoff spill run — deliberately
#: small: the whole point is that the donor had no memory to spare
DEFAULT_HANDOFF_BYTES = 4 << 20


@dataclasses.dataclass
class HandoffResult:
    """One completed handoff: the spill handle plus its provenance."""

    donor_id: str
    peer_id: str
    spill: object  # storage.spill.PartitionSpill
    tuples: int

    @property
    def partition_keys(self):
        return self.spill.partition_keys

    @property
    def partition_payloads(self):
        return self.spill.partition_payloads

    def cleanup(self) -> None:
        """Drop the partition files from the peer's storage."""
        self.spill.cleanup()


class SpillHandoff:
    """Executes spill handoffs between shard nodes.

    Args:
        bytes_in_memory: buffering budget for the handoff spill run.
        chunk_tuples: staging-store chunk size; small slices produce a
            single chunk either way.
        tracer: optional tracer; each handoff records a ``handoff``
            span with donor/peer/tuples/bytes attributes.
    """

    def __init__(
        self,
        bytes_in_memory: int = DEFAULT_HANDOFF_BYTES,
        chunk_tuples: int = 1 << 18,
        tracer=None,
    ):
        if bytes_in_memory < 1:
            raise ConfigurationError(
                f"bytes_in_memory must be >= 1, got {bytes_in_memory}"
            )
        self.bytes_in_memory = int(bytes_in_memory)
        self.chunk_tuples = int(chunk_tuples)
        self.tracer = resolve_tracer(tracer)
        self._sequence = itertools.count()
        self._lock = threading.Lock()

    def execute(
        self,
        donor,
        peer,
        keys: np.ndarray,
        payloads: np.ndarray,
        config,
    ) -> HandoffResult:
        """Drain ``(keys, payloads)`` into ``peer``'s storage.

        ``config`` must already be the shard-plane HIST/RID clone (the
        router's :attr:`~repro.cluster.router.ShardRouter.shard_config`
        for the request): HIST never overflows and explicit payloads
        carry the global positions, so the run cannot fail for
        mode-specific reasons and its partition files hold exactly the
        global partitions' content for this slice.
        """
        from repro.storage import RelationStore, SpillPartitioner

        with self._lock:
            seq = next(self._sequence)
        tag = f"handoff-{donor.shard_id}-{seq:04d}"
        store_dir = peer.storage_root / f"{tag}-store"
        run_dir = peer.storage_root / f"{tag}-run"
        n = int(keys.shape[0])
        with self.tracer.span(
            "handoff",
            donor=donor.shard_id,
            peer=peer.shard_id,
            tuples=n,
            bytes=n * config.tuple_bytes,
        ):
            store = RelationStore.ingest(
                keys,
                store_dir,
                payloads=payloads,
                chunk_tuples=self.chunk_tuples,
            ).seal()
            spiller = SpillPartitioner(
                config=config,
                backend="fpga",
                max_bytes_in_memory=self.bytes_in_memory,
                tracer=self.tracer if self.tracer.enabled else None,
                # a handed-off slice is *expected* to be skewed — that
                # is usually why the donor was pressured; don't warn
                skew_warn_factor=float("inf"),
            )
            try:
                spill = spiller.run(store, run_dir)
            finally:
                spiller.close()
            # the staging store was scratch; the run's partition files
            # now hold the data
            store.delete()
        donor.stats.handoffs_out += 1
        peer.stats.handoffs_in += 1
        return HandoffResult(
            donor_id=donor.shard_id,
            peer_id=peer.shard_id,
            spill=spill,
            tuples=n,
        )
