"""The cluster front door: route, fail over, hand off, reassemble.

:class:`ShardRouter` makes N in-process
:class:`~repro.service.service.PartitionService` shard nodes look like
one partitioner.  The contract is the repo's standing invariant,
extended across the network boundary: for every HIST/PAD × RID/VRID
mode, :meth:`ShardRouter.partition` returns output **byte-identical**
to a single-node
:meth:`~repro.core.partitioner.FpgaPartitioner.partition` — same
partition contents in the same order, same counts, line layout, byte
traffic and padding — regardless of shard count, replication, replica
failover, or spill handoff.

How the identity is held:

* **Routing is by partition, with a stable scatter.**  The router runs
  one global :func:`repro.kernels.hash_histogram` pass (the same fused
  kernel the single-node path uses), so it knows every tuple's
  partition and the exact global histogram before anything moves.
  Tuples are scattered to shards with the stable scatter kernel, so
  each shard receives its partitions' tuples in input order.
* **Shards run a HIST/RID clone of the request config** (the same
  trick as :class:`~repro.storage.spill.SpillPartitioner`): per-shard
  PAD capacities or shard-local virtual record ids would be globally
  wrong, so shards always partition in the robust mode and the router
  supplies explicit global positions as payloads.  A shard's output
  partition ``p`` is then exactly the global partition ``p`` — which
  is also why *any* replica produces identical bytes, making failover
  and replication invisible in the output.
* **Accounting is computed globally by the router** from the lane-exact
  histogram, mirroring the single-node math — including the PAD
  overflow check, which runs against the *global* histogram before
  routing (the hardware aborts before scattering; so does the
  cluster), with the usual ``raise`` / ``hist`` / ``cpu`` policies.
* **The output columns are lazy**: a :class:`_ClusterColumn` maps
  partition ``p`` to the serving shard's (or handoff spill's) column,
  so reassembly copies nothing.

Failure handling: a dead shard (submit raises), a FAILED/timed-out
response, or an OPEN router-side breaker sends the affected partitions
to the next healthy shard in their ring preference order — replica
failover.  A REJECTED response or a slice above the shard's
``handoff_tuples`` budget triggers cross-node spill handoff
(:mod:`repro.cluster.handoff`) — borrow a peer's memory before
shedding load.  ``DegradationPolicy`` semantics are preserved end to
end: each shard's own policy still decides FPGA vs CPU, and every
shard-level downgrade surfaces on the :class:`ClusterResponse`.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import time
from typing import List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.cluster.handoff import DEFAULT_HANDOFF_BYTES, SpillHandoff
from repro.cluster.node import ShardNode
from repro.cluster.placement import PlacementPolicy
from repro.cluster.ring import ConsistentHashRing
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.core.partitioner import (
    OverflowPolicy,
    PartitionedOutput,
)
from repro.core.tuples import check_payloads_valid
from repro.errors import (
    ConfigurationError,
    PartitionOverflowError,
    ReproError,
)
from repro.obs.tracing import resolve_tracer
from repro.service.service import (
    PartitionRequest,
    RequestStatus,
)
from repro.workloads.relations import Relation

__all__ = ["ClusterResponse", "ShardRouter", "shard_config"]


def shard_config(config: PartitionerConfig) -> PartitionerConfig:
    """The shard-plane clone of a request config: HIST/RID.

    Same fan-out, tuple width and hash — so shard partition ``p`` is
    global partition ``p`` — but HIST output (no per-shard PAD
    capacities, no overflow) and RID layout (the router supplies
    explicit global positions; shard-local VRIDs would be wrong).
    """
    return dataclasses.replace(
        config, output_mode=OutputMode.HIST, layout_mode=LayoutMode.RID
    )


class _ClusterColumn(collections.abc.Sequence):
    """Lazy partition→serving-column dispatch, cluster flavour.

    The third sibling of
    :class:`~repro.core.partitioner.PartitionSlices` (one contiguous
    buffer) and :class:`~repro.storage.spill._SpillColumn` (memmapped
    files): entry ``p`` reads partition ``p`` of whichever shard output
    or handoff spill serves it.  Empty partitions need no source.
    """

    __slots__ = ("_sources", "_counts", "_overrides")

    def __init__(self, sources: List, counts: np.ndarray):
        self._sources = sources
        self._counts = counts
        self._overrides: Optional[dict] = None

    def __len__(self) -> int:
        return len(self._counts)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        if self._overrides is not None and index in self._overrides:
            return self._overrides[index]
        source = self._sources[index]
        if source is None:
            return np.empty(0, dtype=np.uint32)
        return source[index]

    def __setitem__(self, index: int, value: np.ndarray) -> None:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        if self._overrides is None:
            self._overrides = {}
        self._overrides[index] = value


@dataclasses.dataclass
class ClusterResponse:
    """Terminal result of one cluster-routed partition request."""

    status: RequestStatus
    output: Optional[PartitionedOutput] = None
    #: shard id serving each partition (None for empty partitions)
    shard_of_partition: Optional[List[Optional[str]]] = None
    replicated_partitions: int = 0
    moved_partitions: int = 0
    failovers: int = 0
    handoffs: int = 0
    #: backends reported by the shards ("fpga"/"cpu"/"spill"/"handoff")
    backends: Tuple[str, ...] = ()
    degraded: bool = False
    degrade_reasons: Tuple[str, ...] = ()
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.OK


@dataclasses.dataclass
class _Job:
    """One shard submission: a slice of the input plus its partitions."""

    shard: int
    partitions: np.ndarray
    keys: np.ndarray
    payloads: np.ndarray

    @property
    def tuples(self) -> int:
        return int(self.keys.shape[0])


class _RequestFailed(ReproError):
    """Internal: no healthy shard can serve some partition."""


class ShardRouter:
    """Consistent-hash front-end over N in-process shard services.

    Args:
        shards: cluster size (``int`` builds ``shard-0..N-1``), a
            sequence of shard-id strings, or a sequence of ready
            :class:`~repro.cluster.node.ShardNode` instances.
        virtual_nodes / seed: consistent-hash ring shape (see
            :class:`~repro.cluster.ring.ConsistentHashRing`).
        replicas: replication degree for hot partitions (forwarded to
            the default :class:`PlacementPolicy`).
        placement: a :class:`PlacementPolicy`, ``None`` for the default
            policy, or ``False`` for plain consistent hashing (no
            replication — the benchmark baseline).
        optimizer: optional
            :class:`~repro.optimize.optimizer.AdaptiveOptimizer`; when
            given, each request's key column is profiled and the
            sketch-hot set feeds the placement policy's adaptive
            replication degree (``observe_profile``).
        service_kwargs: forwarded to every shard's
            :class:`~repro.service.service.PartitionService`.
        handoff_tuples: default memory-pressure threshold applied to
            every built shard (per-node override via ``ShardNode``).
        handoff_bytes_in_memory: spill budget for handoff runs.
        storage_root: base directory for shard storage roots.
        request_timeout_s: per-shard-call resolve timeout before the
            router treats the shard as failed.
        tracer / clock: shared across router, shards and handoffs.
    """

    def __init__(
        self,
        shards=3,
        *,
        virtual_nodes: int = 64,
        seed: int = 0,
        replicas: int = 2,
        placement=None,
        service_kwargs: Optional[dict] = None,
        handoff_tuples: Optional[int] = None,
        handoff_bytes_in_memory: int = DEFAULT_HANDOFF_BYTES,
        storage_root=None,
        request_timeout_s: float = 30.0,
        tracer=None,
        clock=time.monotonic,
        optimizer=None,
    ):
        self.tracer = resolve_tracer(tracer)
        self.optimizer = optimizer
        self._clock = clock
        self.request_timeout_s = request_timeout_s
        self._nodes: List[ShardNode] = self._build_nodes(
            shards, storage_root, service_kwargs, handoff_tuples, clock
        )
        if len({node.shard_id for node in self._nodes}) != len(self._nodes):
            raise ConfigurationError("shard ids must be unique")
        self.ring = ConsistentHashRing(
            [node.shard_id for node in self._nodes],
            virtual_nodes=virtual_nodes,
            seed=seed,
        )
        if placement is False:
            self.placement: Optional[PlacementPolicy] = None
        elif placement is None:
            self.placement = PlacementPolicy(replicas=replicas)
        else:
            self.placement = placement
        self.handoff = SpillHandoff(
            bytes_in_memory=handoff_bytes_in_memory,
            tracer=tracer,
        )
        self._started = False
        #: router-level counters (see :meth:`snapshot`)
        self.stats = {
            "requests": 0,
            "completed": 0,
            "failed": 0,
            "failovers": 0,
            "handoffs": 0,
            "degraded": 0,
        }

    def _build_nodes(
        self, shards, storage_root, service_kwargs, handoff_tuples, clock
    ) -> List[ShardNode]:
        if isinstance(shards, int):
            if shards < 1:
                raise ConfigurationError(
                    f"shards must be >= 1, got {shards}"
                )
            shards = [f"shard-{i}" for i in range(shards)]
        shards = list(shards)
        if shards and isinstance(shards[0], ShardNode):
            return shards
        import pathlib
        import tempfile

        if storage_root is None:
            storage_root = tempfile.mkdtemp(prefix="repro-cluster-")
        root = pathlib.Path(storage_root)
        return [
            ShardNode(
                shard_id,
                storage_root=root / str(shard_id),
                service_kwargs=service_kwargs,
                handoff_tuples=handoff_tuples,
                tracer=self.tracer if self.tracer.enabled else None,
                clock=clock,
            )
            for shard_id in shards
        ]

    # -- lifecycle ------------------------------------------------------

    @property
    def nodes(self) -> List[ShardNode]:
        return list(self._nodes)

    def node(self, shard_id: str) -> ShardNode:
        """Look up a shard node by id; raises on an unknown id."""
        for node in self._nodes:
            if node.shard_id == str(shard_id):
                return node
        raise ConfigurationError(f"no shard {shard_id!r} in cluster")

    def start(self) -> "ShardRouter":
        """Start every shard node; returns self for chaining."""
        for node in self._nodes:
            node.start()
        self._started = True
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Stop every shard node (killed shards are already down)."""
        for node in self._nodes:
            node.stop(timeout)
        self._started = False

    def kill_shard(self, shard_id: str) -> None:
        """Crash one shard (drains in-flight, refuses new work)."""
        self.node(shard_id).kill()

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- observations ---------------------------------------------------

    def observe_plan(self, plan) -> None:
        """Feed an :class:`~repro.ops.distributed.ExchangePlan`'s skew
        metrics into the placement policy (no-op without one)."""
        if self.placement is not None:
            self.placement.observe_plan(plan)

    # -- the data plane -------------------------------------------------

    def partition(
        self,
        relation: "Relation | np.ndarray",
        payloads: Optional[np.ndarray] = None,
        config: Optional[PartitionerConfig] = None,
        on_overflow: OverflowPolicy = "raise",
        timeout: Optional[float] = None,
    ) -> ClusterResponse:
        """Partition through the cluster; single-node semantics.

        Mirrors :meth:`FpgaPartitioner.partition` including PAD
        overflow policies; the returned ``output`` is byte-identical to
        the single-node result.  Shard failures and rejections are
        absorbed by failover and handoff; only a cluster with no
        healthy shard left returns ``status=FAILED``.
        """
        if not self._started:
            raise ReproError("router is not running (use start() or `with`)")
        cfg = config or PartitionerConfig()
        keys, pays = _extract_columns(cfg, relation, payloads)
        n = int(keys.shape[0])
        self.stats["requests"] += 1
        with self.tracer.span(
            "cluster.partition",
            tuples=n,
            partitions=cfg.num_partitions,
            mode=cfg.mode_label,
            shards=len(self._nodes),
        ) as root:
            response = self._partition_traced(
                cfg, keys, pays, n, on_overflow, timeout
            )
            root.set_attributes(
                status=response.status.value,
                failovers=response.failovers,
                handoffs=response.handoffs,
                degraded=response.degraded,
            )
        if response.ok:
            self.stats["completed"] += 1
        else:
            self.stats["failed"] += 1
        self.stats["failovers"] += response.failovers
        self.stats["handoffs"] += response.handoffs
        if response.degraded:
            self.stats["degraded"] += 1
        return response

    def _partition_traced(
        self,
        cfg: PartitionerConfig,
        keys: np.ndarray,
        pays: np.ndarray,
        n: int,
        on_overflow: OverflowPolicy,
        timeout: Optional[float],
    ) -> ClusterResponse:
        P = cfg.num_partitions
        per_line = cfg.tuples_per_line

        # 1. Global accounting pass — the same fused kernel the
        # single-node path runs, so counts and lane matrix are exact.
        with self.tracer.span("cluster.route", tuples=n, partitions=P):
            parts, counts, lane_counts = kernels.hash_histogram(
                keys, P, cfg.uses_hash, lanes=cfg.num_lanes
            )
            counts = counts.astype(np.int64, copy=False)
            lines_per_partition = (-(-lane_counts // per_line)).sum(axis=1)

            # 2. PAD overflow — checked globally BEFORE routing, like
            # the hardware checks before scattering.
            effective_cfg = cfg
            extra_read = 0
            fallback = self._check_overflow(
                cfg, lines_per_partition, n, keys, pays, on_overflow
            )
            if isinstance(fallback, ClusterResponse):
                return fallback
            if fallback is not None:
                effective_cfg, extra_read = fallback

            # 3. Placement: primaries from the ring, hot partitions
            # spread over their replica sets; partitions whose chosen
            # shard is unhealthy move to their next healthy replica
            # before anything is scattered.
            if self.placement is not None:
                self.placement.observe_keys(keys)
                if self.optimizer is not None:
                    # the optimizer's sketch-hot set feeds the adaptive
                    # replication degree (see observe_profile)
                    from repro.optimize.profile import WorkloadProfile

                    self.placement.observe_profile(
                        WorkloadProfile.from_keys(
                            keys, tuple_bytes=cfg.tuple_bytes
                        ),
                        num_partitions=cfg.num_partitions,
                    )
            banned = {
                i
                for i, node in enumerate(self._nodes)
                if not node.healthy
            }
            owner, plan = self._place(counts, cfg, banned)
            if owner is None:
                return ClusterResponse(
                    status=RequestStatus.FAILED,
                    error="no healthy shard in the cluster",
                )

            # 4. Stable scatter to shards: each shard's slice holds its
            # partitions' tuples in input order.
            jobs = self._scatter_jobs(keys, pays, parts, counts, owner)

        # 5. Submit / failover / handoff rounds.
        try:
            (
                key_sources,
                pay_sources,
                serving,
                failovers,
                handoffs,
                backends,
                reasons,
            ) = self._drive_jobs(cfg, jobs, banned, timeout)
        except _RequestFailed as exc:
            return ClusterResponse(
                status=RequestStatus.FAILED,
                failovers=0,
                error=str(exc),
            )

        # 6. Assemble: lazy columns + global accounting identical to
        # FpgaPartitioner._finalize_output under the effective config.
        with self.tracer.span("cluster.assemble", partitions=P):
            if effective_cfg.output_mode is OutputMode.PAD:
                capacity_lines = (
                    effective_cfg.partition_capacity(n) // per_line
                )
                base_lines = (
                    np.arange(P, dtype=np.int64) * capacity_lines
                )
            else:
                base_lines = np.zeros(P, dtype=np.int64)
                np.cumsum(lines_per_partition[:-1], out=base_lines[1:])
            bytes_read, bytes_written = effective_cfg.traffic_bytes(
                n, int(lines_per_partition.sum())
            )
            output = PartitionedOutput(
                config=effective_cfg,
                partition_keys=_ClusterColumn(key_sources, counts),
                partition_payloads=_ClusterColumn(pay_sources, counts),
                counts=counts,
                lines_per_partition=lines_per_partition,
                base_lines=base_lines,
                bytes_read=bytes_read + extra_read,
                bytes_written=bytes_written,
                dummy_slots=int(
                    lines_per_partition.sum() * per_line - n
                ),
                produced_by="cluster",
            )
        return ClusterResponse(
            status=RequestStatus.OK,
            output=output,
            shard_of_partition=serving,
            replicated_partitions=(
                plan.replicated_partitions if plan is not None else 0
            ),
            moved_partitions=(
                plan.moved_partitions if plan is not None else 0
            ),
            failovers=failovers,
            handoffs=handoffs,
            backends=tuple(sorted(backends)),
            degraded=bool(reasons),
            degrade_reasons=tuple(sorted(set(reasons))),
        )

    # -- overflow -------------------------------------------------------

    def _check_overflow(
        self,
        cfg: PartitionerConfig,
        lines_per_partition: np.ndarray,
        n: int,
        keys: np.ndarray,
        pays: np.ndarray,
        on_overflow: OverflowPolicy,
    ):
        """Global PAD-capacity check, single-node policy semantics.

        Returns None (no overflow), ``(effective_cfg, extra_read)`` for
        the in-cluster HIST fallback, or a terminal
        :class:`ClusterResponse` for the local CPU fallback.
        """
        if cfg.output_mode is not OutputMode.PAD:
            return None
        capacity_lines = cfg.partition_capacity(n) // cfg.tuples_per_line
        overflowed = np.nonzero(lines_per_partition > capacity_lines)[0]
        if not overflowed.size:
            return None
        if on_overflow == "raise":
            raise PartitionOverflowError(
                partition=int(overflowed[0]),
                capacity=capacity_lines * cfg.tuples_per_line,
                tuples_seen=n,
            )
        if on_overflow == "hist":
            # Same accounting as the single-node retry: the run
            # proceeds under the HIST clone, charged for the aborted
            # PAD scan (worst case of Section 5.4).
            effective = dataclasses.replace(
                cfg, output_mode=OutputMode.HIST
            )
            return effective, cfg.traffic_bytes(n, 0)[0]
        if on_overflow == "cpu":
            # The paper's software fallback aborts the accelerator
            # path entirely; the cluster mirrors that by running the
            # same local CPU partitioner a single node would.
            from repro.cpu.partitioner import CpuPartitioner

            cpu_out = CpuPartitioner.matching(cfg).partition(keys, pays)
            cpu_out.fell_back_to_cpu = True
            return ClusterResponse(
                status=RequestStatus.OK,
                output=cpu_out,
                backends=("cpu-local",),
                degraded=True,
                degrade_reasons=("pad-overflow-cpu",),
            )
        raise ConfigurationError(
            f"unknown overflow policy {on_overflow!r}; "
            "expected 'raise', 'hist' or 'cpu'"
        )

    # -- placement + scatter --------------------------------------------

    def _place(
        self,
        counts: np.ndarray,
        cfg: PartitionerConfig,
        banned: set,
    ):
        """(owner array, placement plan) with unhealthy shards routed
        around; owner is None when nothing is healthy."""
        P = len(counts)
        if len(banned) >= len(self._nodes):
            return None, None
        if self.placement is not None:
            plan = self.placement.place(counts, self.ring, cfg.uses_hash)
            owner = plan.owner.copy()
        else:
            plan = None
            owner = self.ring.owners(P).copy()
        if banned:
            for p in np.nonzero(np.isin(owner, list(banned)))[0]:
                owner[p] = self._next_healthy(int(p), P, banned)
        return owner, plan

    def _next_healthy(
        self, partition: int, num_partitions: int, banned: set
    ) -> int:
        for shard in self.ring.preference(partition, num_partitions):
            if shard not in banned and self._nodes[shard].healthy:
                return shard
        raise _RequestFailed(
            f"no healthy shard left for partition {partition}"
        )

    def _scatter_jobs(
        self,
        keys: np.ndarray,
        pays: np.ndarray,
        parts: np.ndarray,
        counts: np.ndarray,
        owner: np.ndarray,
    ) -> List[_Job]:
        """One stable scatter, shard index as the partition key."""
        num_shards = len(self._nodes)
        shard_of_tuple = owner[parts]
        shard_counts = np.bincount(
            owner, weights=counts.astype(np.float64), minlength=num_shards
        ).astype(np.int64)
        dest_base = np.zeros(num_shards, dtype=np.int64)
        np.cumsum(shard_counts[:-1], out=dest_base[1:])
        n = int(keys.shape[0])
        routed_keys = np.empty(n, dtype=np.uint32)
        routed_pays = np.empty(n, dtype=np.uint32)
        kernels.stable_scatter(
            keys, pays, shard_of_tuple, dest_base, num_shards,
            routed_keys, routed_pays,
        )
        bounds = np.zeros(num_shards + 1, dtype=np.int64)
        np.cumsum(shard_counts, out=bounds[1:])
        jobs = []
        for s in range(num_shards):
            if shard_counts[s] == 0:
                continue
            partitions = np.nonzero((owner == s) & (counts > 0))[0]
            jobs.append(
                _Job(
                    shard=s,
                    partitions=partitions,
                    keys=routed_keys[bounds[s]:bounds[s + 1]],
                    payloads=routed_pays[bounds[s]:bounds[s + 1]],
                )
            )
        return jobs

    def _reroute(self, job: _Job, cfg: PartitionerConfig, banned: set):
        """Re-scatter a failed job's slice to next-preference shards."""
        P = cfg.num_partitions
        mapping = np.zeros(P, dtype=np.int64)
        for p in job.partitions:
            mapping[int(p)] = self._next_healthy(int(p), P, banned)
        slice_parts = kernels.hash_only(job.keys, P, cfg.uses_hash)
        slice_counts = np.bincount(slice_parts, minlength=P).astype(
            np.int64
        )
        return self._scatter_jobs(
            job.keys, job.payloads, slice_parts, slice_counts, mapping
        )

    # -- the submit / failover / handoff loop ---------------------------

    def _drive_jobs(
        self,
        cfg: PartitionerConfig,
        jobs: List[_Job],
        banned: set,
        timeout: Optional[float],
    ):
        P = cfg.num_partitions
        request_cfg = shard_config(cfg)
        key_sources: List = [None] * P
        pay_sources: List = [None] * P
        serving: List[Optional[str]] = [None] * P
        failovers = 0
        handoffs = 0
        backends: set = set()
        reasons: List[str] = []
        queue = list(jobs)
        wait_s = timeout if timeout is not None else self.request_timeout_s
        # each failure bans a shard, so the loop is bounded; the extra
        # headroom covers handoff-instead-of-ban rounds
        for _ in range(2 * len(self._nodes) + 2):
            if not queue:
                break
            inflight: List[Tuple[_Job, object]] = []
            retry: List[_Job] = []
            for job in queue:
                node = self._nodes[job.shard]
                if job.shard in banned or not node.healthy:
                    banned.add(job.shard)
                    failovers += 1
                    retry.extend(self._reroute(job, cfg, banned))
                    continue
                if (
                    node.handoff_tuples is not None
                    and job.tuples >= node.handoff_tuples
                ):
                    peer = self._pick_peer(job.shard, banned)
                    if peer is not None:
                        handoffs += 1
                        self._apply_handoff(
                            job, node, peer, request_cfg,
                            key_sources, pay_sources, serving,
                        )
                        backends.add("handoff")
                        continue
                try:
                    ticket = node.submit(
                        PartitionRequest(
                            relation=job.keys,
                            payloads=job.payloads,
                            config=request_cfg,
                        )
                    )
                except ReproError:
                    banned.add(job.shard)
                    failovers += 1
                    retry.extend(self._reroute(job, cfg, banned))
                    continue
                inflight.append((job, ticket))
            for job, ticket in inflight:
                node = self._nodes[job.shard]
                try:
                    resp = ticket.result(wait_s)
                except TimeoutError:
                    node.breaker.record_failure()
                    node.stats.failures += 1
                    banned.add(job.shard)
                    failovers += 1
                    retry.extend(self._reroute(job, cfg, banned))
                    continue
                if resp.ok:
                    node.breaker.record_success()
                    backends.add(resp.backend or "fpga")
                    if resp.degraded and resp.degrade_reason:
                        reasons.append(
                            f"{node.shard_id}:{resp.degrade_reason}"
                        )
                    for p in job.partitions:
                        p = int(p)
                        key_sources[p] = resp.output.partition_keys
                        pay_sources[p] = resp.output.partition_payloads
                        serving[p] = node.shard_id
                    continue
                if resp.status is RequestStatus.REJECTED:
                    # Saturated, not broken: borrow a peer's memory
                    # (spill handoff) before shedding or rerouting.
                    node.stats.rejections += 1
                    peer = self._pick_peer(job.shard, banned)
                    if peer is not None:
                        handoffs += 1
                        self._apply_handoff(
                            job, node, peer, request_cfg,
                            key_sources, pay_sources, serving,
                        )
                        backends.add("handoff")
                        reasons.append(f"{node.shard_id}:handoff")
                        continue
                node.breaker.record_failure()
                node.stats.failures += 1
                banned.add(job.shard)
                failovers += 1
                retry.extend(self._reroute(job, cfg, banned))
            queue = retry
            for job in retry:
                self._nodes[job.shard].stats.failovers_in += 1
        if queue:
            raise _RequestFailed(
                "routing did not converge (shards kept failing)"
            )
        return (
            key_sources, pay_sources, serving,
            failovers, handoffs, backends, reasons,
        )

    def _pick_peer(self, shard: int, banned: set) -> Optional[ShardNode]:
        """Next alive shard after ``shard`` in ring id order."""
        num = len(self._nodes)
        for step in range(1, num):
            candidate = (shard + step) % num
            node = self._nodes[candidate]
            if candidate not in banned and node.healthy:
                return node
        return None

    def _apply_handoff(
        self,
        job: _Job,
        donor: ShardNode,
        peer: ShardNode,
        request_cfg: PartitionerConfig,
        key_sources: List,
        pay_sources: List,
        serving: List,
    ) -> None:
        with self.tracer.span(
            "cluster.handoff",
            donor=donor.shard_id,
            peer=peer.shard_id,
            tuples=job.tuples,
        ):
            result = self.handoff.execute(
                donor, peer, job.keys, job.payloads, request_cfg
            )
        for p in job.partitions:
            p = int(p)
            key_sources[p] = result.partition_keys
            pay_sources[p] = result.partition_payloads
            serving[p] = f"{peer.shard_id} (handoff from {donor.shard_id})"

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> dict:
        """Router counters plus every shard's metrics snapshot."""
        return {
            "router": dict(self.stats),
            "ring": {
                "shards": [str(s) for s in self.ring.shard_ids],
                "virtual_nodes": self.ring.virtual_nodes,
                "seed": self.ring.seed,
            },
            "shards": {
                node.shard_id: node.snapshot() for node in self._nodes
            },
        }

    def prometheus(self) -> str:
        """One exposition page for the whole cluster: every shard's
        series labelled ``shard="<id>"``, router counters unlabelled."""
        lines = []
        for counter, value in sorted(self.stats.items()):
            name = f"repro_cluster_{counter}_total"
            lines.append(f"# HELP {name} Router counter '{counter}'.")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {value}")
        pages = ["\n".join(lines) + "\n"] if lines else []
        pages.extend(node.prometheus() for node in self._nodes)
        return "".join(pages)


def _extract_columns(
    cfg: PartitionerConfig,
    relation: "Relation | np.ndarray",
    payloads: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Input normalisation, mirroring
    :meth:`FpgaPartitioner._extract_columns` exactly: the router must
    compute the same effective payload column a single node would
    (VRID and bare-array inputs get positional ids)."""
    if isinstance(relation, Relation):
        keys = relation.keys
        payloads = relation.payloads
    else:
        keys = np.ascontiguousarray(relation, dtype=np.uint32)
        if cfg.layout_mode is LayoutMode.VRID or payloads is None:
            payloads = np.arange(keys.shape[0], dtype=np.uint32)
        else:
            payloads = np.ascontiguousarray(payloads, dtype=np.uint32)
    if cfg.layout_mode is LayoutMode.VRID:
        payloads = np.arange(keys.shape[0], dtype=np.uint32)
    if keys.shape != payloads.shape:
        raise ConfigurationError("keys and payloads must align")
    if keys.size == 0:
        raise ConfigurationError("cannot partition an empty relation")
    check_payloads_valid(payloads)
    return keys, payloads
