"""Cache-coherence / snoop-filter model (Section 2.2, Table 1).

The Xeon+FPGA sockets run the standard QPI coherence protocol designed
for homogeneous 2-CPU machines.  The CPU socket's snoop filter marks a
cache line's *home* as the socket that last **wrote** it (reads do not
update the filter).  When the CPU later touches a line marked as
FPGA-homed, the access is snooped across QPI to the FPGA socket — and
because the FPGA's cache is only 128 KB, the snoop almost never finds
the line, so the access pays the round trip for nothing.

Table 1 quantifies the effect for a 512 MB region read by one thread:

====================  ============  ==========
last writer           sequential    random
====================  ============  ==========
CPU                   0.1381 s      1.1537 s
FPGA                  0.1533 s      2.4876 s
====================  ============  ==========

:class:`CoherenceDirectory` tracks last-writer at cache-line
granularity (with a region-level fast path) and converts access
patterns into the penalty factors the join cost models consume.
Crucially — and this reproduces the paper's observation — *reading* an
FPGA-written region any number of times does not clear the penalty;
only a CPU write re-homes the lines.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.constants import (
    CACHE_LINE_BYTES,
    COHERENCE_RANDOM_READ_PENALTY,
    COHERENCE_SEQ_READ_PENALTY,
    TABLE1_SECONDS,
)
from repro.errors import ConfigurationError


class Socket(str, enum.Enum):
    """Which side of the QPI link an agent lives on."""

    CPU = "cpu"
    FPGA = "fpga"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CoherenceDirectory:
    """Last-writer tracking and snoop-penalty accounting.

    The directory is keyed by region name; each region tracks a single
    last-writer socket (the workloads in the paper write whole regions
    from one agent — partitions from the FPGA, everything else from the
    CPU — so region granularity loses nothing, and a line-granular dict
    is kept only for mixed-writer regions).
    """

    def __init__(self) -> None:
        self._region_writer: Dict[str, Socket] = {}
        self._line_writer: Dict[str, Dict[int, Socket]] = {}
        self.snoops_to_fpga = 0

    # -- write side --------------------------------------------------------

    def record_region_write(self, region: str, writer: Socket | str) -> None:
        """An agent wrote (all of) a region; re-homes every line."""
        self._region_writer[region] = Socket(writer)
        self._line_writer.pop(region, None)

    def record_line_write(
        self, region: str, line_address: int, writer: Socket | str
    ) -> None:
        """Line-granular write (mixed-writer regions)."""
        lines = self._line_writer.setdefault(region, {})
        lines[line_address // CACHE_LINE_BYTES] = Socket(writer)

    # -- read side -----------------------------------------------------------

    def last_writer(self, region: str, line_address: int = 0) -> Socket:
        """The socket whose write most recently homed this line."""
        lines = self._line_writer.get(region)
        if lines:
            line = line_address // CACHE_LINE_BYTES
            if line in lines:
                return lines[line]
        return self._region_writer.get(region, Socket.CPU)

    def cpu_read_penalty(
        self, region: str, random_access: bool, line_address: int = 0
    ) -> float:
        """Multiplicative time penalty for a CPU read of this region.

        1.0 when the CPU wrote last; the Table 1 factor when the FPGA
        did.  Reads never clear the FPGA marking (snoop filter updates
        on writes only) — re-reading stays slow, as the paper observed.
        """
        if self.last_writer(region, line_address) is Socket.CPU:
            return 1.0
        self.snoops_to_fpga += 1
        if random_access:
            return COHERENCE_RANDOM_READ_PENALTY
        return COHERENCE_SEQ_READ_PENALTY


def table1_read_seconds(last_writer: Socket | str, random_access: bool) -> float:
    """The Table 1 micro-benchmark, as a lookup.

    Reads 512 MB with one CPU thread after ``last_writer`` filled the
    region; returns the measured seconds.
    """
    key = (Socket(last_writer).value, "random" if random_access else "sequential")
    if key not in TABLE1_SECONDS:
        raise ConfigurationError(f"no Table 1 entry for {key}")
    return TABLE1_SECONDS[key]
