"""Shared memory pool of 4 MB pages (Section 2.1).

The Xeon+FPGA framework allocates shared memory in 4 MB pages through
the Intel API; the software keeps the pages' physical addresses in an
array, and the FPGA populates its own page table with them.  An
accelerator then works on a contiguous *virtual* address space whose
size is the number of allocated pages.

This model reproduces that structure: :class:`SharedMemory` hands out
:class:`MemoryRegion` objects (contiguous virtual ranges backed by a
list of page frames at fabricated physical addresses).  Data storage is
byte-granular NumPy arrays per page so the cycle simulator and the
functional partitioner can write real bytes through physical addresses
and the CPU side can read them back — which is how the tests prove the
address-translation path is consistent end to end.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from repro.constants import PAGE_BYTES, SHARED_MEMORY_BYTES
from repro.errors import ConfigurationError, MemoryError_


@dataclasses.dataclass(frozen=True)
class PageFrame:
    """A physical 4 MB page frame."""

    physical_base: int
    index_in_region: int


class MemoryRegion:
    """A contiguous virtual address range backed by page frames."""

    def __init__(
        self,
        name: str,
        virtual_base: int,
        frames: List[PageFrame],
        pool: "SharedMemory",
        page_bytes: int,
    ):
        self.name = name
        self.virtual_base = virtual_base
        self.frames = frames
        self._pool = pool
        self.page_bytes = page_bytes

    @property
    def size_bytes(self) -> int:
        return len(self.frames) * self.page_bytes

    @property
    def virtual_end(self) -> int:
        return self.virtual_base + self.size_bytes

    def physical_address(self, virtual_offset: int) -> int:
        """Translate an offset within this region to a physical address.

        This is the CPU-side translation: a lookup into the array of
        page physical addresses the Intel API returned (Section 2.1).
        """
        if not 0 <= virtual_offset < self.size_bytes:
            raise MemoryError_(
                f"offset {virtual_offset} outside region {self.name!r} "
                f"of {self.size_bytes} bytes"
            )
        frame = self.frames[virtual_offset // self.page_bytes]
        return frame.physical_base + virtual_offset % self.page_bytes

    def physical_page_addresses(self) -> List[int]:
        """The 'array of physical addresses' handed to the FPGA."""
        return [frame.physical_base for frame in self.frames]

    # -- data plane -----------------------------------------------------

    def write_bytes(self, virtual_offset: int, data: np.ndarray) -> None:
        """Write a uint8 array at a virtual offset (may span pages)."""
        self._pool.write_physical_span(self, virtual_offset, data)

    def read_bytes(self, virtual_offset: int, length: int) -> np.ndarray:
        """Read ``length`` bytes at a virtual offset (may span pages)."""
        return self._pool.read_physical_span(self, virtual_offset, length)


class SharedMemory:
    """The 96 GB shared pool on the CPU socket.

    Page data is allocated lazily so a 96 GB address space does not
    consume host RAM until written.
    """

    def __init__(
        self,
        total_bytes: int = SHARED_MEMORY_BYTES,
        page_bytes: int = PAGE_BYTES,
    ):
        if page_bytes <= 0 or total_bytes <= 0:
            raise ConfigurationError("memory sizes must be positive")
        if total_bytes % page_bytes:
            raise ConfigurationError(
                "total memory must be a whole number of pages"
            )
        self.total_bytes = total_bytes
        self.page_bytes = page_bytes
        self._next_frame = 0
        self._next_virtual = 0
        self._page_data: Dict[int, np.ndarray] = {}
        self.regions: Dict[str, MemoryRegion] = {}

    @property
    def allocated_bytes(self) -> int:
        return self._next_frame * self.page_bytes

    def allocate(self, name: str, size_bytes: int) -> MemoryRegion:
        """Allocate a region rounded up to whole 4 MB pages."""
        if size_bytes <= 0:
            raise ConfigurationError(
                f"allocation size must be positive, got {size_bytes}"
            )
        if name in self.regions:
            raise MemoryError_(f"region name {name!r} already allocated")
        num_pages = -(-size_bytes // self.page_bytes)
        if self.allocated_bytes + num_pages * self.page_bytes > self.total_bytes:
            raise MemoryError_(
                f"out of shared memory allocating {size_bytes} bytes "
                f"for {name!r}"
            )
        frames = []
        for i in range(num_pages):
            frames.append(
                PageFrame(
                    physical_base=self._next_frame * self.page_bytes,
                    index_in_region=i,
                )
            )
            self._next_frame += 1
        region = MemoryRegion(
            name=name,
            virtual_base=self._next_virtual,
            frames=frames,
            pool=self,
            page_bytes=self.page_bytes,
        )
        self._next_virtual += region.size_bytes
        self.regions[name] = region
        return region

    # -- physical data plane ---------------------------------------------

    def _page_array(self, physical_base: int) -> np.ndarray:
        page = self._page_data.get(physical_base)
        if page is None:
            page = np.zeros(self.page_bytes, dtype=np.uint8)
            self._page_data[physical_base] = page
        return page

    def write_physical(self, physical_address: int, data: np.ndarray) -> None:
        """Write bytes at a physical address (must not cross a page)."""
        base = physical_address - physical_address % self.page_bytes
        offset = physical_address % self.page_bytes
        if offset + data.size > self.page_bytes:
            raise MemoryError_("physical write crosses a page boundary")
        self._page_array(base)[offset : offset + data.size] = data

    def read_physical(self, physical_address: int, length: int) -> np.ndarray:
        """Read bytes at a physical address (must not cross a page)."""
        base = physical_address - physical_address % self.page_bytes
        offset = physical_address % self.page_bytes
        if offset + length > self.page_bytes:
            raise MemoryError_("physical read crosses a page boundary")
        return self._page_array(base)[offset : offset + length].copy()

    # -- region-relative spans (may cross pages) --------------------------

    def write_physical_span(
        self, region: MemoryRegion, virtual_offset: int, data: np.ndarray
    ) -> None:
        """Write a byte span at a region offset (may cross pages)."""
        data = np.ascontiguousarray(data, dtype=np.uint8).ravel()
        if virtual_offset < 0 or virtual_offset + data.size > region.size_bytes:
            raise MemoryError_(
                f"write of {data.size} bytes at offset {virtual_offset} "
                f"escapes region {region.name!r}"
            )
        written = 0
        while written < data.size:
            physical = region.physical_address(virtual_offset + written)
            room = self.page_bytes - physical % self.page_bytes
            chunk = min(room, data.size - written)
            self.write_physical(physical, data[written : written + chunk])
            written += chunk

    def read_physical_span(
        self, region: MemoryRegion, virtual_offset: int, length: int
    ) -> np.ndarray:
        """Read a byte span at a region offset (may cross pages)."""
        if virtual_offset < 0 or virtual_offset + length > region.size_bytes:
            raise MemoryError_(
                f"read of {length} bytes at offset {virtual_offset} "
                f"escapes region {region.name!r}"
            )
        out = np.empty(length, dtype=np.uint8)
        done = 0
        while done < length:
            physical = region.physical_address(virtual_offset + done)
            room = self.page_bytes - physical % self.page_bytes
            chunk = min(room, length - done)
            out[done : done + chunk] = self.read_physical(physical, chunk)
            done += chunk
        return out
