"""Mechanistic simulation of the Table 1 micro-benchmark (Section 2.2).

Table 1 reports *what* happens (CPU reads of FPGA-written memory are
slow); Section 2.2 explains *why*: the snoop filter marks lines written
by the FPGA as FPGA-homed, every CPU access to such a line is snooped
across QPI, and the snoop almost never finds the line because the
FPGA's cache is only 128 KB — so the access pays a QPI round trip for
nothing.  Reads never update the filter, which is why re-reading stays
slow, and a homogeneous 2-CPU machine would not suffer because the
other socket's 25 MB L3 would usually *hold* the line.

This module simulates that mechanism at cache-line granularity:

* a per-line cost for the access pattern (sequential costs are
  prefetch-pipelined; random costs are latency-bound);
* a snoop to the writer's socket whenever the line is remote-homed,
  resolved against that socket's simulated cache — a hit returns data
  via cache-to-cache transfer, a miss wastes the round trip;
* the hardware prefetcher hides almost all snoop latency on sequential
  streams, none on random ones.

The three latency parameters are calibrated once against the CPU-writes
row of Table 1 plus the QPI round-trip estimate; the FPGA-writes row —
including the asymmetry between its sequential (~1.1x) and random
(~2.2x) penalties — is then *predicted* by the mechanism, and the tests
pin the prediction to the published measurements.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.constants import (
    CACHE_LINE_BYTES,
    FPGA_CACHE_BYTES,
    FPGA_CACHE_WAYS,
    TABLE1_SECONDS,
)
from repro.errors import ConfigurationError
from repro.platform.cache import SetAssociativeCache
from repro.platform.coherence import Socket

_TABLE1_REGION_BYTES = 512 * 1024 * 1024
_TABLE1_LINES = _TABLE1_REGION_BYTES // CACHE_LINE_BYTES

# --- calibrated latency parameters ------------------------------------------
# per-line cost of a local sequential read: from Table 1's CPU/sequential
# cell (0.1381 s over 8 M lines).
T_SEQ_LINE_S = TABLE1_SECONDS[("cpu", "sequential")] / _TABLE1_LINES
# per-line cost of a local random read: CPU/random cell (1.1537 s).
T_RAND_LINE_S = TABLE1_SECONDS[("cpu", "random")] / _TABLE1_LINES
# QPI snoop round trip (cross-socket probe + response); on the order of
# the remote-socket access latencies reported for QPI systems.
T_SNOOP_ROUND_TRIP_S = 160e-9
# fraction of the snoop latency the L2/stream prefetchers hide on a
# sequential scan (the demand stream stays ahead of the snoops).
SEQ_PREFETCH_HIDE = 0.99


@dataclasses.dataclass(frozen=True)
class MicrobenchResult:
    """One simulated Table 1 cell."""

    seconds: float
    snoops: int
    snoop_hits: int
    lines_read: int

    @property
    def snoop_hit_rate(self) -> float:
        return self.snoop_hits / self.snoops if self.snoops else 0.0


class MemoryMicrobench:
    """Simulate single-threaded CPU reads of a just-written region."""

    def __init__(
        self,
        region_bytes: int = _TABLE1_REGION_BYTES,
        simulate_lines: int = 1 << 17,
        remote_cache_bytes: int = FPGA_CACHE_BYTES,
        remote_cache_ways: int = FPGA_CACHE_WAYS,
        seed: int = 0,
    ):
        """``simulate_lines`` lines are walked explicitly and the time
        extrapolated to the full region (the region dwarfs every cache
        involved, so per-line behaviour is scale-free)."""
        if region_bytes % CACHE_LINE_BYTES:
            raise ConfigurationError("region must be whole cache lines")
        self.region_lines = region_bytes // CACHE_LINE_BYTES
        self.simulate_lines = min(simulate_lines, self.region_lines)
        self.remote_cache_bytes = remote_cache_bytes
        self.remote_cache_ways = remote_cache_ways
        self.seed = seed

    def _writer_cache(self, writer: Socket) -> SetAssociativeCache:
        """The cache a snoop to the writer's socket probes.

        Simulating a sample of the region must preserve the *ratio* of
        cache capacity to region size (that ratio is the snoop hit
        probability), so the cache is scaled by the sampled fraction.
        """
        fraction = self.simulate_lines / self.region_lines
        granule = self.remote_cache_ways * CACHE_LINE_BYTES
        scaled = max(
            granule,
            int(self.remote_cache_bytes * fraction / granule) * granule,
        )
        return SetAssociativeCache(
            scaled, self.remote_cache_ways, name=f"{writer.value}-cache"
        )

    def run(
        self, last_writer: Socket | str, random_access: bool
    ) -> MicrobenchResult:
        """Simulate one Table 1 cell.

        The writer fills the region (populating its socket's cache with
        the most recent lines, as a real write stream would); the CPU
        then reads every line, snooping the writer's socket whenever
        the line is remote-homed.
        """
        last_writer = Socket(last_writer)
        rng = np.random.default_rng(self.seed)

        remote_homed = last_writer is not Socket.CPU
        writer_cache = None
        if remote_homed:
            writer_cache = self._writer_cache(last_writer)
            # the write stream passes through the writer's cache; only
            # the tail of the region can still be resident
            for line in range(self.simulate_lines):
                writer_cache.access(line * CACHE_LINE_BYTES)

        if random_access:
            order = rng.permutation(self.simulate_lines)
            base_cost = T_RAND_LINE_S
            hide = 0.0
        else:
            order = np.arange(self.simulate_lines)
            base_cost = T_SEQ_LINE_S
            hide = SEQ_PREFETCH_HIDE

        seconds = 0.0
        snoops = 0
        snoop_hits = 0
        snoop_cost = T_SNOOP_ROUND_TRIP_S * (1.0 - hide)
        for line in order:
            seconds += base_cost
            if remote_homed:
                snoops += 1
                if writer_cache.contains(int(line) * CACHE_LINE_BYTES):
                    snoop_hits += 1
                    # cache-to-cache transfer: the round trip returns
                    # data, costing nothing beyond the base access
                else:
                    seconds += snoop_cost
        scale = self.region_lines / self.simulate_lines
        return MicrobenchResult(
            seconds=seconds * scale,
            snoops=int(snoops * scale),
            snoop_hits=int(snoop_hits * scale),
            lines_read=self.region_lines,
        )

    def table1(self) -> dict:
        """All four cells of Table 1, simulated."""
        out = {}
        for writer in (Socket.CPU, Socket.FPGA):
            for random_access in (False, True):
                key = (writer.value, "random" if random_access else "sequential")
                out[key] = self.run(writer, random_access)
        return out
