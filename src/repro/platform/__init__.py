"""The Intel Xeon+FPGA (HARP v1) platform substrate (Section 2).

Models everything the partitioner runs on: the QPI link and its
ratio-dependent bandwidth (Figure 2), the shared memory pool of 4 MB
pages, the FPGA-side pipelined page table, the 128 KB FPGA-local cache,
and the cache-coherence snoop behaviour that penalises CPU reads of
FPGA-written memory (Table 1).
"""

from repro.platform.bandwidth import BandwidthModel, Agent, read_fraction
from repro.platform.memory import SharedMemory, MemoryRegion
from repro.platform.pagetable import PageTable
from repro.platform.cache import SetAssociativeCache
from repro.platform.coherence import CoherenceDirectory, Socket
from repro.platform.qpi import QpiEndpoint, QpiLinkModel
from repro.platform.machine import XeonFpgaPlatform

__all__ = [
    "BandwidthModel",
    "Agent",
    "read_fraction",
    "SharedMemory",
    "MemoryRegion",
    "PageTable",
    "SetAssociativeCache",
    "CoherenceDirectory",
    "Socket",
    "QpiEndpoint",
    "QpiLinkModel",
    "XeonFpgaPlatform",
]
