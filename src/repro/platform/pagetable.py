"""FPGA-side pipelined page table (Section 2.1).

The standard QPI end-point accepts only physical addresses, so the
authors implement their own page table out of BRAMs on the FPGA: the
software transmits the physical addresses of its 4 MB pages at start-up
and the AFU translates every virtual access through the table.  The
translation takes 2 clock cycles but is pipelined — one address per
cycle of throughput.

:class:`PageTable` offers both views:

* :meth:`translate` — functional, immediate translation (what the
  functional partitioning path and tests use);
* :meth:`tick`/:meth:`issue` — the pipelined 2-cycle form for the cycle
  simulator, built on the same :class:`~repro.core.bram.Bram` model as
  the write combiner.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.constants import PAGE_BYTES, PAGE_TABLE_TRANSLATION_CYCLES
from repro.core.bram import Bram
from repro.errors import AddressTranslationError, ConfigurationError


class PageTable:
    """BRAM-backed virtual-to-physical translation for the AFU."""

    def __init__(self, max_pages: int = 32768, page_bytes: int = PAGE_BYTES):
        if max_pages < 1:
            raise ConfigurationError(f"max_pages must be >= 1, got {max_pages}")
        self.page_bytes = page_bytes
        self.max_pages = max_pages
        self._entries: List[Optional[int]] = [None] * max_pages
        self._bram = Bram(
            depth=max_pages,
            latency=PAGE_TABLE_TRANSLATION_CYCLES,
            fill=None,
            name="pagetable",
        )
        self.num_entries = 0

    def populate(self, physical_page_addresses: List[int]) -> None:
        """Install the page physical addresses the software transmitted.

        Appends to any existing entries, so several regions can be
        mapped into one contiguous virtual space in allocation order.
        """
        if self.num_entries + len(physical_page_addresses) > self.max_pages:
            raise AddressTranslationError(
                f"page table overflow: {self.num_entries} + "
                f"{len(physical_page_addresses)} entries > {self.max_pages}"
            )
        for physical in physical_page_addresses:
            if physical % self.page_bytes:
                raise AddressTranslationError(
                    f"physical page address 0x{physical:x} is not "
                    f"{self.page_bytes}-byte aligned"
                )
            self._entries[self.num_entries] = physical
            self._bram.poke(self.num_entries, physical)
            self.num_entries += 1

    def clear(self) -> None:
        """Drop every entry (the start-up state)."""
        self._entries = [None] * self.max_pages
        self._bram = Bram(
            depth=self.max_pages,
            latency=PAGE_TABLE_TRANSLATION_CYCLES,
            fill=None,
            name="pagetable",
        )
        self.num_entries = 0

    @property
    def mapped_bytes(self) -> int:
        """Size of the virtual address space the AFU can use."""
        return self.num_entries * self.page_bytes

    # -- functional path ---------------------------------------------------

    def translate(self, virtual_address: int) -> int:
        """Immediate virtual-to-physical translation."""
        page, offset = self._split(virtual_address)
        physical = self._entries[page]
        if physical is None:
            raise AddressTranslationError(
                f"virtual address 0x{virtual_address:x} maps to "
                f"unpopulated page {page}"
            )
        return physical + offset

    # -- pipelined path (cycle simulator) -----------------------------------

    def tick(self) -> None:
        """Advance the translation pipeline one cycle."""
        self._bram.tick()

    def issue(self, virtual_address: int) -> int:
        """Issue a translation; returns the in-page offset to carry.

        The translated physical page arrives via :meth:`result` after
        ``PAGE_TABLE_TRANSLATION_CYCLES`` ticks.
        """
        page, offset = self._split(virtual_address)
        self._bram.issue_read(page)
        return offset

    def result(self, carried_offset: int) -> Optional[int]:
        """Physical address for the translation completing this cycle."""
        if not self._bram.read_data_valid():
            return None
        physical = self._bram.read_data()
        if physical is None:
            raise AddressTranslationError(
                "pipelined translation hit an unpopulated page-table entry"
            )
        return int(physical) + carried_offset

    def _split(self, virtual_address: int) -> Tuple[int, int]:
        if virtual_address < 0:
            raise AddressTranslationError(
                f"negative virtual address {virtual_address}"
            )
        page = virtual_address // self.page_bytes
        if page >= self.max_pages:
            raise AddressTranslationError(
                f"virtual address 0x{virtual_address:x} beyond page table "
                f"capacity ({self.max_pages} pages)"
            )
        return page, virtual_address % self.page_bytes
