"""Memory-bandwidth model (Figure 2 of the paper).

Figure 2 measures the memory throughput available to the CPU and the
QPI throughput available to the FPGA as a function of the sequential
read to random write ratio of the traffic — the access mix that matters
for partitioning (stream the input, scatter the output).  Four curves:
CPU alone, FPGA alone, and both when the other agent is hammering
memory at the same time ("interfered").

The model interpolates digitised curve points (see
:mod:`repro.constants` for provenance; the FPGA curve is anchored to
the exact B(r) values quoted in Section 4.8).  It exposes both the
paper's parameterisations:

* by **read fraction** ``fr`` in [0, 1] — position on Figure 2's x axis;
* by **ratio** ``r = reads/writes`` (Table 3) — ``fr = r / (r + 1)``.
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from typing import Dict, List, Tuple

from repro.constants import (
    CPU_BANDWIDTH_ALONE_GBS,
    CPU_INTERFERED_FACTOR,
    FPGA_BANDWIDTH_ALONE_GBS,
    FPGA_INTERFERED_FACTOR,
)
from repro.errors import ConfigurationError

GB = 1e9


class Agent(str, enum.Enum):
    """Who is accessing memory."""

    CPU = "cpu"
    FPGA = "fpga"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def read_fraction(r: float) -> float:
    """Convert a read/write byte ratio ``r`` to a read fraction.

    ``r = 2`` (two bytes read per byte written) maps to ``2/3``;
    ``r = inf`` would map to 1.0 (pure reads).
    """
    if r < 0:
        raise ConfigurationError(f"read/write ratio must be >= 0, got {r}")
    return r / (r + 1.0)


class _Curve:
    """Piecewise-linear interpolation over (x, GB/s) points."""

    def __init__(self, points: Dict[float, float]):
        items: List[Tuple[float, float]] = sorted(points.items())
        self._xs = [x for x, _ in items]
        self._ys = [y for _, y in items]

    def __call__(self, x: float) -> float:
        if not 0.0 <= x <= 1.0:
            raise ConfigurationError(
                f"read fraction must be in [0, 1], got {x}"
            )
        i = bisect_left(self._xs, x)
        if i < len(self._xs) and self._xs[i] == x:
            return self._ys[i]
        lo, hi = i - 1, i
        x0, x1 = self._xs[lo], self._xs[hi]
        y0, y1 = self._ys[lo], self._ys[hi]
        t = (x - x0) / (x1 - x0)
        return y0 + t * (y1 - y0)


class BandwidthModel:
    """Figure 2 as a queryable model.

    Example::

        bw = BandwidthModel()
        bw.bandwidth_gbs(Agent.FPGA, read_frac=0.5)       # ~6.97
        bw.bandwidth_for_ratio(Agent.FPGA, r=2.0)          # ~7.05
        bw.bandwidth_gbs(Agent.CPU, 0.5, interfered=True)  # reduced
    """

    def __init__(
        self,
        cpu_points: Dict[float, float] | None = None,
        fpga_points: Dict[float, float] | None = None,
        cpu_interfered_factor: float = CPU_INTERFERED_FACTOR,
        fpga_interfered_factor: float = FPGA_INTERFERED_FACTOR,
    ):
        self._curves = {
            Agent.CPU: _Curve(cpu_points or CPU_BANDWIDTH_ALONE_GBS),
            Agent.FPGA: _Curve(fpga_points or FPGA_BANDWIDTH_ALONE_GBS),
        }
        self._interfered_factor = {
            Agent.CPU: cpu_interfered_factor,
            Agent.FPGA: fpga_interfered_factor,
        }

    def bandwidth_gbs(
        self,
        agent: Agent | str,
        read_frac: float,
        interfered: bool = False,
    ) -> float:
        """Total traffic bandwidth in GB/s at the given read fraction."""
        agent = Agent(agent)
        value = self._curves[agent](read_frac)
        if interfered:
            value *= self._interfered_factor[agent]
        return value

    def bandwidth_for_ratio(
        self,
        agent: Agent | str,
        r: float,
        interfered: bool = False,
    ) -> float:
        """``B(r)`` of the analytical model (Table 3, Section 4.6)."""
        return self.bandwidth_gbs(agent, read_fraction(r), interfered)

    def bytes_per_second(
        self,
        agent: Agent | str,
        read_frac: float,
        interfered: bool = False,
    ) -> float:
        """Same as :meth:`bandwidth_gbs`, in bytes/second."""
        return self.bandwidth_gbs(agent, read_frac, interfered) * GB

    def sweep(
        self,
        agent: Agent | str,
        interfered: bool = False,
        steps: int = 11,
    ) -> List[Tuple[float, float]]:
        """(read fraction, GB/s) samples across the mix axis — the data
        series of Figure 2."""
        if steps < 2:
            raise ConfigurationError(f"steps must be >= 2, got {steps}")
        out = []
        for i in range(steps):
            frac = 1.0 - i / (steps - 1)
            out.append((frac, self.bandwidth_gbs(agent, frac, interfered)))
        return out
