"""The assembled Xeon+FPGA platform (Section 2).

:class:`XeonFpgaPlatform` wires together the shared memory pool, the
QPI end-point, the FPGA page table and local cache, the coherence
directory, and the Figure 2 bandwidth model, and describes the CPU
socket.  Higher layers (the functional partitioner, the joins, the cost
models) take a platform instance so experiments can also be run on
hypothetical platforms — e.g. the "future architecture" of Section 4.8
where the FPGA gets 25.6 GB/s and the circuit becomes compute-bound.
"""

from __future__ import annotations

import dataclasses

from repro.constants import (
    CPU_CLOCK_HZ,
    CPU_CORES,
    CPU_L2_BYTES,
    CPU_L3_BYTES,
    FPGA_CACHE_BYTES,
    FPGA_CACHE_WAYS,
    FPGA_CLOCK_HZ,
    PAGE_BYTES,
    RAW_WRAPPER_BANDWIDTH_GBS,
    SHARED_MEMORY_BYTES,
)
from repro.platform.bandwidth import Agent, BandwidthModel
from repro.platform.cache import SetAssociativeCache
from repro.platform.coherence import CoherenceDirectory
from repro.platform.memory import MemoryRegion, SharedMemory
from repro.platform.pagetable import PageTable
from repro.platform.qpi import QpiEndpoint


@dataclasses.dataclass(frozen=True)
class CpuSocket:
    """Static description of the CPU socket (Xeon E5-2680 v2)."""

    cores: int = CPU_CORES
    clock_hz: float = CPU_CLOCK_HZ
    l3_bytes: int = CPU_L3_BYTES
    l2_bytes: int = CPU_L2_BYTES


class XeonFpgaPlatform:
    """The Intel Xeon+FPGA prototype as one object.

    Attributes:
        memory: the 96 GB shared pool (4 MB pages).
        qpi: the functional cache-line interface the AFU uses.
        page_table: FPGA-side translation, populated per region.
        fpga_cache: the 128 KB two-way cache in the QPI end-point.
        coherence: last-writer/snoop-penalty directory.
        bandwidth: the Figure 2 model.
        cpu: CPU socket description.
        fpga_clock_hz: AFU clock (200 MHz on the prototype).
    """

    def __init__(
        self,
        memory_bytes: int = SHARED_MEMORY_BYTES,
        fpga_clock_hz: float = FPGA_CLOCK_HZ,
        bandwidth: BandwidthModel | None = None,
        cpu: CpuSocket | None = None,
    ):
        self.memory = SharedMemory(total_bytes=memory_bytes)
        self.qpi = QpiEndpoint(self.memory)
        self.page_table = PageTable(
            max_pages=memory_bytes // PAGE_BYTES
        )
        self.fpga_cache = SetAssociativeCache(
            capacity_bytes=FPGA_CACHE_BYTES,
            ways=FPGA_CACHE_WAYS,
            name="fpga-endpoint-cache",
        )
        self.coherence = CoherenceDirectory()
        self.bandwidth = bandwidth or BandwidthModel()
        self.cpu = cpu or CpuSocket()
        self.fpga_clock_hz = fpga_clock_hz

    # -- convenience -----------------------------------------------------

    def allocate_shared(self, name: str, size_bytes: int) -> MemoryRegion:
        """Allocate a region and map it into the FPGA page table.

        Mirrors the start-up flow of Section 2.1: the application
        allocates 4 MB pages through the Intel API and transmits their
        physical addresses to the FPGA.
        """
        region = self.memory.allocate(name, size_bytes)
        self.page_table.populate(region.physical_page_addresses())
        return region

    def fpga_bandwidth_gbs(self, r: float, interfered: bool = False) -> float:
        """``B(r)`` for the FPGA — the model's bandwidth input."""
        return self.bandwidth.bandwidth_for_ratio(Agent.FPGA, r, interfered)

    def cpu_bandwidth_gbs(
        self, read_frac: float, interfered: bool = False
    ) -> float:
        """The CPU's Figure 2 bandwidth at this access mix."""
        return self.bandwidth.bandwidth_gbs(Agent.CPU, read_frac, interfered)

    @classmethod
    def raw_wrapper(cls) -> "XeonFpgaPlatform":
        """The Section 4.7 'raw FPGA' measurement harness.

        An FPGA-internal wrapper emulating QPI with 25.6 GB/s combined
        bandwidth, flat across access mixes (the wrapper generates and
        discards data internally, so there is no random-write sag).
        """
        flat = {0.0: RAW_WRAPPER_BANDWIDTH_GBS, 1.0: RAW_WRAPPER_BANDWIDTH_GBS}
        return cls(bandwidth=BandwidthModel(fpga_points=flat))
