"""QPI end-point models (Section 2.1).

Two views of the link between the FPGA and the CPU socket's memory:

* :class:`QpiLinkModel` — the per-cycle flow-control model the cycle
  simulator uses.  The link's bandwidth (a function of the traffic's
  read fraction, Figure 2) is converted to cache lines per FPGA clock
  cycle and metered with a token bucket; reads and writes compete for
  the same tokens, which is what creates the back-pressure on the write
  path that Section 4.3 describes.
* :class:`QpiEndpoint` — the functional request interface: physical
  64 B cache-line reads/writes against
  :class:`~repro.platform.memory.SharedMemory`, with byte accounting.
  The AFU (partitioner) goes through this for its data plane.
"""

from __future__ import annotations

import numpy as np

from repro.constants import CACHE_LINE_BYTES, FPGA_CLOCK_HZ
from repro.errors import ConfigurationError, MemoryError_
from repro.platform.bandwidth import GB
from repro.platform.memory import SharedMemory


class QpiLinkModel:
    """Token-bucket line budget for the cycle simulator.

    ``bandwidth_gbs`` is the combined read+write bandwidth available at
    the run's traffic mix (looked up from the Figure 2 model by the
    caller).  Each cycle accrues ``bandwidth / (64 B * f_clk)`` tokens;
    transferring one cache line in either direction costs one token.
    With the platform's ~6.5 GB/s this is ~0.5 lines/cycle — half what
    the circuit can produce, hence the permanent back-pressure the
    paper reports.
    """

    def __init__(
        self,
        bandwidth_gbs: float,
        clock_hz: float = FPGA_CLOCK_HZ,
        line_bytes: int = CACHE_LINE_BYTES,
        burst_lines: int = 8,
    ):
        if bandwidth_gbs <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {bandwidth_gbs}"
            )
        self.bandwidth_gbs = bandwidth_gbs
        self.lines_per_cycle = bandwidth_gbs * GB / (line_bytes * clock_hz)
        self.burst_lines = max(1, burst_lines)
        self._tokens = 0.0
        self.lines_read = 0
        self.lines_written = 0

    def tick(self) -> None:
        """Accrue this cycle's budget (capped to a small burst)."""
        self._tokens = min(
            self._tokens + self.lines_per_cycle, float(self.burst_lines)
        )

    def try_read(self) -> bool:
        """Consume a token for a read-response line, if available."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.lines_read += 1
            return True
        return False

    def try_write(self) -> bool:
        """Consume a token for a write-request line, if available."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.lines_written += 1
            return True
        return False


class QpiEndpoint:
    """Functional cache-line interface to shared memory.

    All addresses are *physical* (the standard end-point does no
    translation; the AFU's own page table supplies physical addresses).
    Counts bytes moved so experiments can check traffic predictions —
    e.g. the 16x write-combining saving of Section 4.2.
    """

    def __init__(self, memory: SharedMemory):
        self.memory = memory
        self.bytes_read = 0
        self.bytes_written = 0

    def read_line(self, physical_address: int) -> np.ndarray:
        """Read one 64 B cache line."""
        self._check_aligned(physical_address)
        self.bytes_read += CACHE_LINE_BYTES
        return self.memory.read_physical(physical_address, CACHE_LINE_BYTES)

    def write_line(self, physical_address: int, data: np.ndarray) -> None:
        """Write one 64 B cache line."""
        self._check_aligned(physical_address)
        if data.size != CACHE_LINE_BYTES:
            raise MemoryError_(
                f"QPI writes whole cache lines; got {data.size} bytes"
            )
        self.bytes_written += CACHE_LINE_BYTES
        self.memory.write_physical(
            physical_address, np.ascontiguousarray(data, dtype=np.uint8)
        )

    def reset_counters(self) -> None:
        """Zero the byte counters (between experiments)."""
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @staticmethod
    def _check_aligned(physical_address: int) -> None:
        if physical_address % CACHE_LINE_BYTES:
            raise MemoryError_(
                f"QPI access must be 64 B aligned, got 0x{physical_address:x}"
            )
