"""Set-associative cache model.

Used for two things:

* the FPGA-local **128 KB two-way associative cache** inside the QPI
  end-point (Section 2.1) — its tiny size relative to the CPU's 25 MB
  L3 is the root cause of the coherence penalty of Table 1 (a snoop
  to the FPGA socket almost never finds the line);
* the **CPU L3** when estimating snoop hit probabilities and the
  build+probe cache-fit boundary.

The model tracks presence only (tags, LRU within a set), not data —
data lives in :class:`~repro.platform.memory.SharedMemory`; the cache
answers "would this access hit?", which is all the timing models need.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.constants import CACHE_LINE_BYTES
from repro.errors import ConfigurationError


class SetAssociativeCache:
    """Tag-only set-associative cache with LRU replacement."""

    def __init__(
        self,
        capacity_bytes: int,
        ways: int,
        line_bytes: int = CACHE_LINE_BYTES,
        name: str = "cache",
    ):
        if capacity_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ConfigurationError("cache geometry must be positive")
        if capacity_bytes % (ways * line_bytes):
            raise ConfigurationError(
                "capacity must be a whole number of ways x lines"
            )
        self.capacity_bytes = capacity_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = capacity_bytes // (ways * line_bytes)
        self.name = name
        # set index -> OrderedDict of tag -> True (LRU order: oldest first)
        self._sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _locate(self, address: int):
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int) -> bool:
        """Touch a line; returns True on hit, installing on miss."""
        set_index, tag = self._locate(address)
        ways = self._sets.setdefault(set_index, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.ways:
            ways.popitem(last=False)
            self.evictions += 1
        ways[tag] = True
        return False

    def contains(self, address: int) -> bool:
        """Presence check without touching LRU (snoop lookup)."""
        set_index, tag = self._locate(address)
        return tag in self._sets.get(set_index, ())

    def invalidate(self, address: int) -> bool:
        """Remove a line if present (coherence invalidation)."""
        set_index, tag = self._locate(address)
        ways = self._sets.get(set_index)
        if ways and tag in ways:
            del ways[tag]
            return True
        return False

    def flush(self) -> None:
        """Empty the cache."""
        self._sets.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
