"""Morsel kernels: chunked histogram, prefix-sum merge, stable scatter.

The partitioning data plane is decomposed into cache-friendly chunks of
the input ("morsels", after the morsel-driven execution model).  Each
morsel is processed independently in two phases:

1. **histogram** — compute the partition index of every tuple in the
   morsel and count tuples per partition (and, for the FPGA layout,
   per (partition, lane) pair);
2. **scatter** — stable-sort the morsel by partition index and write
   each group into its preassigned destination range.

Between the phases, :func:`merge_histograms` turns the per-morsel
histograms into per-(morsel, partition) destination bases with a
two-level prefix sum: partitions are laid out by total count, and
within a partition the morsels stack in input order.  Because morsels
are contiguous input ranges taken in order, concatenating the morsel
groups of a partition reproduces the input order of that partition's
tuples exactly — i.e. the scattered output is **byte-identical to a
stable sort of the whole input by partition index**, for *any* morsel
split.  That property is what lets the parallel engine promise the
same bytes as the sequential partitioners.

The kernels keep partition indices in the smallest integer dtype that
fits the fan-out (``uint16`` for up to 2^16 partitions): the stable
argsort that dominates the scatter phase runs several times faster on
small-integer morsels than one monolithic ``int64`` sort of the full
relation — this is where the engine's single-core speedup comes from,
independent of the worker pool.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.errors import ConfigurationError

#: default morsel size in tuples; large enough to amortise task
#: dispatch, small enough that the per-morsel index arrays stay cache
#: friendly for the stable sort.
DEFAULT_MORSEL_TUPLES = 1 << 18

#: default morsel size on the native backend: the compiled kernels
#: have no per-morsel sort whose working set must fit in cache, so
#: larger morsels win — less dispatch, fewer histogram merges.
NATIVE_MORSEL_TUPLES = 1 << 20


def default_morsel_tuples() -> int:
    """Backend-tuned default morsel size (see the two constants)."""
    if kernels.backend_name() == "native":
        return NATIVE_MORSEL_TUPLES
    return DEFAULT_MORSEL_TUPLES


@dataclasses.dataclass
class MorselStats:
    """Accounting of one chunked partitioning run."""

    num_morsels: int
    morsel_tuples: int
    backend: str = "serial"
    workers: int = 1


def parts_dtype(num_partitions: int) -> np.dtype:
    """Smallest unsigned dtype holding partition indices."""
    if num_partitions <= 1 << 8:
        return np.dtype(np.uint8)
    if num_partitions <= 1 << 16:
        return np.dtype(np.uint16)
    return np.dtype(np.int64)


def plan_morsels(
    n: int,
    workers: int,
    morsel_tuples: int = DEFAULT_MORSEL_TUPLES,
) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` input ranges covering ``n`` tuples.

    At least ``workers`` morsels are produced (so every worker gets
    work) and no morsel exceeds ``morsel_tuples``; sizes differ by at
    most one tuple so the pool stays balanced.
    """
    if n < 0:
        raise ConfigurationError(f"negative tuple count: {n}")
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if n == 0:
        return [(0, 0)]
    num = max(workers, -(-n // max(1, morsel_tuples)))
    num = min(num, n)  # no empty morsels
    base, extra = divmod(n, num)
    chunks = []
    start = 0
    for i in range(num):
        size = base + (1 if i < extra else 0)
        chunks.append((start, start + size))
        start += size
    return chunks


def morsel_histogram(
    keys_chunk: np.ndarray,
    num_partitions: int,
    use_hash: bool,
    lanes: Optional[int] = None,
    global_offset: int = 0,
    parts_out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Phase 1 for one morsel: partition indices + histogram(s).

    Args:
        keys_chunk: the morsel's keys.
        num_partitions: fan-out.
        use_hash: murmur-then-radix (True) or raw radix bits.
        lanes: when given, additionally count per (partition, lane)
            where ``lane = global_index % lanes`` — the FPGA circuit's
            lane assignment, needed for its cache-line accounting.
        global_offset: the morsel's start index in the full input
            (defines the lane of its first tuple).
        parts_out: optional preallocated output for the indices.

    Returns:
        ``(parts, hist, lane_hist)`` — indices in the morsel dtype, the
        ``int64`` per-partition counts, and the ``(num_partitions,
        lanes)`` counts (or None when ``lanes`` is None).
    """
    if parts_out is None:
        parts_out = np.empty(
            keys_chunk.shape[0], dtype=parts_dtype(num_partitions)
        )
    return kernels.hash_histogram(
        keys_chunk,
        num_partitions,
        use_hash,
        lanes=lanes,
        global_offset=global_offset,
        parts_out=parts_out,
    )


def merge_histograms(
    chunk_hists: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Two-level prefix sum over per-morsel histograms.

    Returns ``(counts, partition_base, dest_base)``: the global
    per-partition counts, the exclusive prefix sum laying partitions
    out contiguously, and a ``(num_morsels, num_partitions)`` matrix
    where row ``c`` gives morsel ``c``'s first destination slot in each
    partition (morsels stack within a partition in input order).
    """
    local = np.asarray(chunk_hists, dtype=np.int64)
    counts = local.sum(axis=0)
    num_partitions = counts.shape[0]
    partition_base = np.zeros(num_partitions, dtype=np.int64)
    np.cumsum(counts[:-1], out=partition_base[1:])
    chunk_offsets = np.zeros_like(local)
    if local.shape[0] > 1:
        np.cumsum(local[:-1], axis=0, out=chunk_offsets[1:])
    return counts, partition_base, partition_base[None, :] + chunk_offsets


def morsel_scatter(
    keys_chunk: np.ndarray,
    payloads_chunk: np.ndarray,
    parts_chunk: np.ndarray,
    dest_base_row: np.ndarray,
    num_partitions: int,
    out_keys: np.ndarray,
    out_payloads: np.ndarray,
) -> None:
    """Phase 2 for one morsel: stable scatter into the output buffers.

    The morsel's tuples land at
    ``out[dest_base_row[p] : dest_base_row[p] + local_count[p]]`` per
    partition ``p``, input order preserved within each group — i.e. a
    stable scatter, byte-identical to a stable sort by partition index
    (the native backend walks a cursor, the NumPy backend stable-sorts;
    same bytes either way).
    """
    if parts_chunk.shape[0] == 0:
        return
    kernels.stable_scatter(
        keys_chunk,
        payloads_chunk,
        parts_chunk,
        dest_base_row,
        num_partitions,
        out_keys,
        out_payloads,
    )
