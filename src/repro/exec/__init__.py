"""Parallel execution engine (morsel-driven operators + fast simulation).

This package is the scaling layer of the reproduction.  It contains:

* :mod:`repro.exec.morsels` — the chunk ("morsel") kernels: per-chunk
  histogram, two-level prefix-sum merge, per-chunk stable scatter.  The
  kernels are pure functions over NumPy arrays, shared by every
  execution backend.
* :mod:`repro.exec.engine` — :class:`ExecutionEngine`, which runs the
  morsel kernels serially, on a thread pool, or on a process pool with
  shared-memory output buffers, and provides ordered task fan-out for
  the join's build+probe phase.
* :mod:`repro.exec.fast_forward` — the event-driven fast path of the
  cycle-level circuit simulator: steady-state cycles are computed
  analytically instead of being stepped one by one, with bit-identical
  :class:`~repro.core.circuit.CircuitStats`.

The engine's contract, enforced by ``tests/test_exec_engine.py``: for
any worker count and any backend, the partitioned output is
byte-identical to the sequential reference implementation.

See ``docs/EXECUTION.md`` for the model and its invariants.
"""

from repro.exec.engine import ExecutionEngine, resolve_engine
from repro.exec.morsels import (
    MorselStats,
    merge_histograms,
    morsel_histogram,
    morsel_scatter,
    plan_morsels,
)

__all__ = [
    "ExecutionEngine",
    "resolve_engine",
    "MorselStats",
    "plan_morsels",
    "morsel_histogram",
    "morsel_scatter",
    "merge_histograms",
]
