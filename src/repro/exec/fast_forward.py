"""Event-driven fast path of the cycle-level partitioner simulator.

The cycle-by-cycle simulator in :mod:`repro.core.circuit` exists to
verify architectural claims, and it pays full price for generality:
every cycle it sweeps eight hash pipelines (NumPy scalars, dataclass
moves), eight write combiners with BRAM models, and every FIFO.  This
module produces the **identical** result — same memory image, same
:class:`~repro.core.circuit.CircuitStats`, same exceptions at the same
simulated cycle — at a fraction of the cost, by splitting the work:

* **Values are computed in closed form.**  A tuple's partition index
  is a pure function of its key; its output slot is its rank within
  its (lane, partition) group modulo ``tuples_per_line``; a written
  line's offset is the count of lines previously written to its
  partition.  These hold under *any* stall or bubble pattern, because
  the combiner's and write-back's forwarding registers plus BRAM
  read-after-write ordering always yield the up-to-date counter value
  — the exact property the hazard tests pin down.  So the fast path
  stable-sorts the relation by (lane, partition) once, and every
  cache line's content is a slice of that sorted array.
* **Timing is simulated at line granularity with plain integers.**
  Input issue with back-pressure, the 12-cycle read latency, the
  5-stage hash delay, lane FIFO occupancy, combiner freeze (full
  output FIFO), write-back round-robin and the end-of-run flush are
  stepped in the reference tick order — but a cycle costs a handful
  of deque/int operations instead of a full datapath sweep.

Preconditions, checked by :func:`supports_fast_forward`: no QPI link
attached (the link's token bucket is float-stateful and cheap to run
in the reference loop anyway), forwarding enabled (without it tuples
are genuinely lost and content is no longer a closed form), and no
per-cycle probe (probes observe intermediate circuit state the fast
path does not materialise).  ``tests/test_fast_forward.py`` asserts
bit-equality against the reference loop across modes and adversarial
inputs.  See ``docs/EXECUTION.md`` for the derivation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.constants import CYCLES_HASHING
from repro.core.hashing import partition_function
from repro.core.tuples import DUMMY_KEY, DUMMY_PAYLOAD, CacheLine, lines_needed
from repro.errors import PartitionOverflowError, SimulationError


def supports_fast_forward(circuit, on_cycle) -> bool:
    """Whether the fast path applies to this run (see module docstring)."""
    return (
        circuit.qpi_bandwidth_gbs is None
        and circuit.enable_forwarding
        and on_cycle is None
    )


def fast_histogram_pass(circuit, keys: np.ndarray, stats) -> np.ndarray:
    """HIST-mode first pass, computed analytically.

    With no link the reference histogram loop issues one line per
    cycle and drains the 5-stage hash: exactly ``L + 5`` cycles for
    ``L`` input lines (1 cycle for an empty input).  The
    per-(lane, partition) counts come from the batched hash kernel,
    which is bit-exact with the pipelined hash modules.  Mutates
    ``stats`` exactly like the reference pass.
    """
    cfg = circuit.config
    lanes = cfg.num_lanes
    n = int(keys.shape[0])
    parts = partition_function(cfg.num_partitions, cfg.uses_hash)(keys)
    lane = np.arange(n, dtype=np.int64) % lanes
    histogram = (
        np.bincount(
            lane * cfg.num_partitions + parts,
            minlength=lanes * cfg.num_partitions,
        )
        .astype(np.int64)
        .reshape(lanes, cfg.num_partitions)
    )
    num_lines = lines_needed(n, cfg.tuples_per_line)
    cycles = num_lines + CYCLES_HASHING if num_lines else 1
    stats.histogram_pass_cycles = cycles
    stats.cycles += cycles
    return histogram


def fast_partition_pass(
    circuit,
    keys: np.ndarray,
    payloads: np.ndarray,
    base_lines: np.ndarray,
    capacity_lines: Optional[int],
    stats,
    max_cycles: int,
) -> Optional[Dict[int, CacheLine]]:
    """Partitioning pass: closed-form values + light timing simulation.

    Returns the memory image, byte-identical to the reference loop's,
    and mutates ``stats`` to the identical counter values.  Raises
    :class:`SimulationError` on ``max_cycles`` and
    :class:`PartitionOverflowError` on PAD-mode overflow with the same
    attributes at the same simulated point as the reference.  Returns
    None (with no state modified) only if an internal invariant is
    violated — the caller then falls back to the reference loop.
    """
    cfg = circuit.config
    lanes = cfg.num_lanes
    per_line = cfg.tuples_per_line
    num_partitions = cfg.num_partitions
    depth = circuit.fifo_depth
    read_latency = circuit.READ_LATENCY_CYCLES
    n = int(keys.shape[0])
    num_lines = lines_needed(n, per_line)

    # ---- closed-form values: sort once, slice per line ----
    parts = partition_function(num_partitions, cfg.uses_hash)(keys)
    lane_of = np.arange(n, dtype=np.int64) % lanes
    combined = lane_of * num_partitions + parts
    order = np.argsort(combined, kind="stable")
    skeys = keys[order]
    spay = payloads[order]
    group_counts = np.bincount(
        combined, minlength=lanes * num_partitions
    ).astype(np.int64)
    group_start_np = np.zeros_like(group_counts)
    np.cumsum(group_counts[:-1], out=group_start_np[1:])
    group_start: List[int] = group_start_np.tolist()
    parts_list: List[int] = parts.tolist()

    def make_line(record: Tuple[int, int, int]) -> CacheLine:
        part, start, fill = record
        if fill == per_line:
            line_keys = skeys[start : start + per_line].copy()
            line_pays = spay[start : start + per_line].copy()
        else:
            line_keys = np.full(per_line, DUMMY_KEY, dtype=np.uint32)
            line_pays = np.full(per_line, DUMMY_PAYLOAD, dtype=np.uint32)
            line_keys[:fill] = skeys[start : start + fill]
            line_pays[:fill] = spay[start : start + fill]
        return CacheLine(keys=line_keys, payloads=line_pays, partition=part)

    # ---- timing state, all plain Python ----
    lane_range = range(lanes)
    memory_image: Dict[int, CacheLine] = {}
    base = [int(b) for b in base_lines]
    offsets = [0] * num_partitions

    # input side
    next_line = 0
    delivered = 0
    in_flight: deque = deque()  # deliver cycles, lines in order
    hash_out: deque = deque()  # (push_cycle, line_index)
    backpressure = 0

    # per-lane front end
    lane_fifos: List[deque] = [deque() for _ in lane_range]  # partition ints
    pipe0: List[Optional[int]] = [None] * lanes
    pipe1: List[Optional[int]] = [None] * lanes
    fwd1: List[Optional[int]] = [None] * lanes
    fwd2: List[Optional[int]] = [None] * lanes
    pending: List[Optional[Tuple[int, int, int]]] = [None] * lanes
    fills: List[List[int]] = [[0] * num_partitions for _ in lane_range]
    lines_done: List[List[int]] = [
        [0] * num_partitions for _ in lane_range
    ]
    combiner_stalls = 0
    forwarding_hits = 0
    dummy_slots_out = 0
    flush_addr = [0] * lanes

    # back end
    wc_fifos: List[deque] = [deque() for _ in lane_range]  # line records
    wb_pipe: List[Optional[Tuple[int, int, int]]] = [None, None]
    rr_index = 0
    wb_lines_out = 0
    wb_stalls = 0
    last_fifo: deque = deque()
    lines_out = 0

    flushing = False
    flush_started_at = 0
    cycle = 0
    hash_committed = 1 + CYCLES_HASHING

    while True:
        cycle += 1
        if cycle > max_cycles:
            raise SimulationError(
                f"simulation exceeded {max_cycles} cycles — livelock?"
            )

        # 1. Drain the last-stage FIFO (the QPI write).
        if last_fifo:
            address, record = last_fifo.popleft()
            memory_image[address] = make_line(record)
            lines_out += 1

        # 2. Write-back module tick.
        resolving = wb_pipe[1]
        if resolving is not None and len(last_fifo) >= depth:
            wb_stalls += 1
        else:
            wb_pipe[1] = wb_pipe[0]
            wb_pipe[0] = None
            if resolving is not None:
                part = resolving[0]
                offset = offsets[part]
                if capacity_lines is not None and offset >= capacity_lines:
                    raise PartitionOverflowError(
                        partition=part,
                        capacity=capacity_lines,
                        tuples_seen=wb_lines_out,
                    )
                last_fifo.append((base[part] + offset, resolving))
                offsets[part] = offset + 1
                wb_lines_out += 1
            for step in lane_range:
                fifo = wc_fifos[(rr_index + step) % lanes]
                if fifo:
                    rr_index = (rr_index + step + 1) % lanes
                    wb_pipe[0] = fifo.popleft()
                    break
            else:
                rr_index = (rr_index + 1) % lanes

        # 3. Write combiners: streaming ticks, or the end-of-run flush.
        if not flushing:
            for l in lane_range:
                held = pending[l]
                wc_fifo = wc_fifos[l]
                if held is not None:
                    if len(wc_fifo) >= depth:
                        combiner_stalls += 1
                        continue  # clock-enable freeze of this lane
                    wc_fifo.append(held)
                    pending[l] = None
                resolved = pipe1[l]
                pipe1[l] = pipe0[l]
                pipe0[l] = None
                resolution: Optional[int] = None
                if resolved is not None:
                    if fwd1[l] == resolved or fwd2[l] == resolved:
                        forwarding_hits += 1
                    lane_fills = fills[l]
                    fill = lane_fills[resolved] + 1
                    if fill == per_line:
                        lane_fills[resolved] = 0
                        done = lines_done[l][resolved]
                        lines_done[l][resolved] = done + 1
                        pending[l] = (
                            resolved,
                            group_start[l * num_partitions + resolved]
                            + done * per_line,
                            per_line,
                        )
                    else:
                        lane_fills[resolved] = fill
                    resolution = resolved
                fwd2[l] = fwd1[l]
                fwd1[l] = resolution
                if lane_fifos[l]:
                    pipe0[l] = lane_fifos[l].popleft()
        else:
            for l in lane_range:
                addr = flush_addr[l]
                if addr >= num_partitions:
                    continue
                if len(wc_fifos[l]) >= depth:
                    continue  # flush stalls legally, cursor holds
                fill = fills[l][addr]
                if fill > 0:
                    wc_fifos[l].append(
                        (
                            addr,
                            group_start[l * num_partitions + addr]
                            + lines_done[l][addr] * per_line,
                            fill,
                        )
                    )
                    dummy_slots_out += per_line - fill
                    fills[l][addr] = 0
                flush_addr[l] = addr + 1

        # 4. Hash modules: fixed 5-cycle delay from line delivery to
        #    the lane-FIFO push; values are precomputed.
        if in_flight and in_flight[0] <= cycle:
            in_flight.popleft()
            hash_out.append((cycle + CYCLES_HASHING, delivered))
            delivered += 1
        if hash_out and hash_out[0][0] <= cycle:
            line_index = hash_out.popleft()[1]
            first = line_index * lanes
            for l in range(min(lanes, n - first)):
                lane_fifos[l].append(parts_list[first + l])

        # 5. Input issue with back-pressure (Section 4.3).
        if next_line < num_lines:
            committed = len(in_flight) + hash_committed
            min_free = depth - max(len(f) for f in lane_fifos)
            if min_free >= committed:
                in_flight.append(cycle + read_latency)
                next_line += 1
            else:
                backpressure += 1

        # 6. Start the flush once the streaming pipeline is empty.
        if (
            not flushing
            and next_line >= num_lines
            and not in_flight
            and not hash_out
        ):
            drained = True
            for l in lane_range:
                if (
                    pipe0[l] is not None
                    or pipe1[l] is not None
                    or pending[l] is not None
                    or lane_fifos[l]
                ):
                    drained = False
                    break
            if drained:
                flushing = True
                flush_started_at = cycle

        # 7. Termination, as in the reference loop.
        if (
            flushing
            and wb_pipe[0] is None
            and wb_pipe[1] is None
            and not last_fifo
            and min(flush_addr) >= num_partitions
            and all(not fifo for fifo in wc_fifos)
        ):
            break

    stats.lines_in += circuit._qpi_lines_in(n)
    stats.tuples_in += n
    stats.partition_pass_cycles = cycle
    stats.flush_cycles = cycle - flush_started_at
    stats.cycles += cycle
    stats.lines_out = lines_out
    stats.dummy_slots_out = dummy_slots_out
    stats.forwarding_hits = forwarding_hits
    stats.combiner_stall_cycles = combiner_stalls
    stats.writeback_stall_cycles = wb_stalls
    stats.input_backpressure_cycles = backpressure
    return memory_image
