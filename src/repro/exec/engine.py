"""The execution engine: serial / thread-pool / process-pool backends.

:class:`ExecutionEngine` runs the morsel kernels of
:mod:`repro.exec.morsels` on one of three backends:

* ``serial`` — the kernels in a plain loop.  Still chunked: the
  small-dtype per-morsel sorts beat one monolithic sort even on one
  core.
* ``thread`` — a ``concurrent.futures.ThreadPoolExecutor``.  NumPy
  releases the GIL in the hot kernels (sort, bincount, fancy
  indexing), so threads overlap on multi-core hosts with zero
  serialisation cost; this is also the fallback for small inputs,
  where process dispatch would dominate.
* ``process`` — a ``ProcessPoolExecutor`` over ``fork`` with
  **shared-memory ndarrays** (``multiprocessing.shared_memory``) for
  the input columns, the partition-index column and the output
  buffers.  Workers attach to the blocks by name and write their
  morsel's disjoint destination ranges directly; only the small
  per-morsel histograms travel over the result pipe.

The backend only changes *where* the kernels run.  The destination
arithmetic (two-level prefix sum in :func:`merge_histograms`) is
identical everywhere, so every backend produces byte-identical output
— the equivalence suite in ``tests/test_exec_engine.py`` pins this.

Partitioning runs in two steps (histogram, then scatter) through a
:class:`PartitionTask`, so callers can inspect the merged histogram —
e.g. to detect PAD-mode overflow — *before* paying for the scatter,
exactly like the hardware's HIST pass.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import kernels
from repro.errors import ConfigurationError
from repro.obs.tracing import resolve_tracer
from repro.exec.morsels import (
    MorselStats,
    default_morsel_tuples,
    merge_histograms,
    morsel_histogram,
    morsel_scatter,
    parts_dtype,
    plan_morsels,
)

_BACKENDS = ("auto", "serial", "thread", "process")

#: below this input size the process backend falls back to threads —
#: fork/attach/copy overhead would exceed the kernel time.
SMALL_INPUT_TUPLES = 1 << 16


def _attach_block(name: str):
    """Attach to a shared-memory block created by the parent process.

    Works around bpo-39959: on this Python, *attaching* also registers
    the block with the resource tracker.  Under ``fork`` the tracker is
    shared with the parent, so a worker-side unregister would strip the
    parent's own registration; under ``spawn`` the worker's tracker
    would try to unlink a block it does not own when the worker exits.
    Suppressing registration for the duration of the attach avoids both
    failure modes — the parent alone owns the block's lifecycle.
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _shm_histogram_task(args):
    """Process-pool phase 1: hash one morsel, store indices, count."""
    (names, parts_dt, n, lo, hi, num_partitions, use_hash, lanes) = args
    keys_block = _attach_block(names["keys"])
    parts_block = _attach_block(names["parts"])
    try:
        keys = np.ndarray(n, dtype=np.uint32, buffer=keys_block.buf)
        parts = np.ndarray(n, dtype=np.dtype(parts_dt), buffer=parts_block.buf)
        _, hist, lane_hist = morsel_histogram(
            keys[lo:hi],
            num_partitions,
            use_hash,
            lanes=lanes,
            global_offset=lo,
            parts_out=parts[lo:hi],
        )
        return hist, lane_hist
    finally:
        del keys, parts
        keys_block.close()
        parts_block.close()


def _shm_scatter_task(args):
    """Process-pool phase 2: scatter one morsel into the output blocks."""
    (names, parts_dt, n, lo, hi, num_partitions, dest_base_row) = args
    blocks = {key: _attach_block(name) for key, name in names.items()}
    try:
        keys = np.ndarray(n, dtype=np.uint32, buffer=blocks["keys"].buf)
        payloads = np.ndarray(
            n, dtype=np.uint32, buffer=blocks["payloads"].buf
        )
        parts = np.ndarray(
            n, dtype=np.dtype(parts_dt), buffer=blocks["parts"].buf
        )
        out_keys = np.ndarray(
            n, dtype=np.uint32, buffer=blocks["out_keys"].buf
        )
        out_payloads = np.ndarray(
            n, dtype=np.uint32, buffer=blocks["out_payloads"].buf
        )
        morsel_scatter(
            keys[lo:hi],
            payloads[lo:hi],
            parts[lo:hi],
            dest_base_row,
            num_partitions,
            out_keys,
            out_payloads,
        )
        return None
    finally:
        del keys, payloads, parts, out_keys, out_payloads
        for block in blocks.values():
            block.close()


class PartitionTask:
    """One in-flight chunked partitioning run.

    Produced by :meth:`ExecutionEngine.begin_partition` after the
    histogram phase; exposes the merged counts so the caller can abort
    (e.g. PAD overflow) before :meth:`scatter` materialises the output.
    Always :meth:`close` the task (it may own shared-memory blocks).
    """

    def __init__(
        self,
        engine: "ExecutionEngine",
        backend: str,
        chunks: List[Tuple[int, int]],
        counts: np.ndarray,
        lane_counts: Optional[np.ndarray],
        chunk_hists: np.ndarray,
        dest_base: np.ndarray,
        state: dict,
    ):
        self._engine = engine
        self._backend = backend
        self._chunks = chunks
        self._state = state
        self._closed = False
        self._scattered = False
        #: global per-partition tuple counts (int64)
        self.counts = counts
        #: per-(partition, lane) counts, or None when lanes were not requested
        self.lane_counts = lane_counts
        #: per-(morsel, partition) histogram matrix
        self.chunk_hists = chunk_hists
        self._dest_base = dest_base
        #: accounting for benchmarks/tests
        self.stats = MorselStats(
            num_morsels=len(chunks),
            morsel_tuples=max((hi - lo) for lo, hi in chunks),
            backend=backend,
            workers=engine.workers if backend != "serial" else 1,
        )

    def scatter(self) -> Tuple[np.ndarray, np.ndarray]:
        """Run the scatter phase; returns ``(out_keys, out_payloads)``.

        The returned arrays are plain (non-shared) ``uint32`` arrays
        laid out partition-major, morsel-order within each partition —
        byte-identical to a stable sort by partition index.
        """
        if self._closed:
            raise ConfigurationError("partition task already closed")
        if self._scattered:
            raise ConfigurationError("partition task already scattered")
        self._scattered = True
        if self._backend == "process":
            return self._engine._scatter_process(self)
        return self._engine._scatter_local(self)

    def close(self) -> None:
        """Release any shared-memory blocks; idempotent."""
        if self._closed:
            return
        self._closed = True
        blocks = self._state.pop("blocks", None)
        if blocks:
            views = self._state.pop("views", None)
            if views is not None:
                views.clear()
            for block in blocks.values():
                try:
                    block.close()
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    def __enter__(self) -> "PartitionTask":
        """Context-manager entry: the task itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: release shared memory."""
        self.close()


class ExecutionEngine:
    """Worker-pool executor for the morsel-driven data plane.

    Args:
        workers: pool width; defaults to ``os.cpu_count()``.
        kind: ``"auto"`` (process for large inputs on multi-core
            hosts, threads otherwise), or force ``"serial"``,
            ``"thread"``, ``"process"``.
        morsel_tuples: target morsel size (tuples).
        small_input_tuples: below this size the process backend falls
            back to the thread pool.
        tracer: optional :class:`~repro.obs.tracing.Tracer`.  The
            serial and thread backends record one span per morsel
            kernel (with the worker thread's name); the process backend
            records one span per pool fan-out — worker processes cannot
            reach the parent's ring buffer.

    The engine owns its pools: they are created lazily on first use
    and live until :meth:`close` (the engine is also a context
    manager).  One engine can be shared by many operators — the
    partitioners, the joins and the benchmarks all accept an engine
    instance so a query plan pays pool start-up once.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        kind: str = "auto",
        morsel_tuples: Optional[int] = None,
        small_input_tuples: int = SMALL_INPUT_TUPLES,
        tracer=None,
    ):
        if kind not in _BACKENDS:
            raise ConfigurationError(
                f"engine kind must be one of {_BACKENDS}, got {kind!r}"
            )
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers or os.cpu_count() or 1)
        self.kind = kind
        # None → backend-tuned default: the compiled kernels take
        # larger morsels (no per-morsel sort working set to keep cache
        # resident), the NumPy path keeps the original size.
        self.morsel_tuples = int(morsel_tuples or default_morsel_tuples())
        self.small_input_tuples = int(small_input_tuples)
        self.tracer = resolve_tracer(tracer)
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------

    def begin_partition(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        num_partitions: int,
        use_hash: bool,
        lanes: Optional[int] = None,
        chunks: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> PartitionTask:
        """Run the histogram phase; returns a :class:`PartitionTask`.

        Args:
            keys / payloads: aligned ``uint32`` columns.
            num_partitions: power-of-two fan-out.
            use_hash: murmur-then-radix or raw radix bits.
            lanes: also build the per-(partition, lane) histogram the
                FPGA line accounting needs.
            chunks: explicit morsel ranges (e.g. the SWWC partitioner's
                per-thread chunks, which define its output layout);
                default: :func:`plan_morsels`.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        payloads = np.ascontiguousarray(payloads, dtype=np.uint32)
        if keys.shape != payloads.shape:
            raise ConfigurationError("keys and payloads must align")
        n = int(keys.shape[0])
        if chunks is None:
            chunks = plan_morsels(n, self.workers, self.morsel_tuples)
        chunks = list(chunks)
        backend = self._backend_for(n)
        if backend == "process":
            return self._begin_process(
                keys, payloads, n, num_partitions, use_hash, lanes, chunks
            )
        return self._begin_local(
            backend, keys, payloads, n, num_partitions, use_hash, lanes, chunks
        )

    def _backend_for(self, n: int) -> str:
        if self.kind == "serial" or self.workers == 1:
            return "serial"
        if self.kind == "thread":
            return "thread"
        if self.kind == "process":
            return "thread" if n < self.small_input_tuples else "process"
        # auto: with the native kernels loaded, threads are strictly
        # better — the kernels release the GIL, so threads parallelise
        # as well as processes without the fork + shared-memory copy-in
        # (this is what made 1→2 worker scaling *negative* before).
        if kernels.backend_name() == "native":
            return "thread"
        # numpy kernels hold the GIL for part of each morsel; processes
        # pay for themselves only on large inputs and real multi-core
        if (
            n >= self.small_input_tuples
            and (os.cpu_count() or 1) > 1
            and "fork" in _start_methods()
        ):
            return "process"
        return "thread"

    # -- serial / thread ------------------------------------------------

    def _begin_local(
        self, backend, keys, payloads, n, num_partitions, use_hash, lanes, chunks
    ) -> PartitionTask:
        parts = np.empty(n, dtype=parts_dtype(num_partitions))

        def phase_a(chunk):
            lo, hi = chunk
            _, hist, lane_hist = morsel_histogram(
                keys[lo:hi],
                num_partitions,
                use_hash,
                lanes=lanes,
                global_offset=lo,
                parts_out=parts[lo:hi],
            )
            return hist, lane_hist

        results = list(
            self._run(backend, phase_a, chunks, label="morsel.histogram")
        )
        counts, _, dest_base = merge_histograms([h for h, _ in results])
        lane_counts = None
        if lanes is not None:
            lane_counts = np.sum([lh for _, lh in results], axis=0)
        state = {
            "keys": keys,
            "payloads": payloads,
            "parts": parts,
            "num_partitions": num_partitions,
        }
        return PartitionTask(
            self,
            backend,
            chunks,
            counts,
            lane_counts,
            np.asarray([h for h, _ in results], dtype=np.int64),
            dest_base,
            state,
        )

    def _scatter_local(self, task: PartitionTask):
        state = task._state
        keys, payloads = state["keys"], state["payloads"]
        parts = state["parts"]
        num_partitions = state["num_partitions"]
        n = keys.shape[0]
        out_keys = np.empty(n, dtype=np.uint32)
        out_payloads = np.empty(n, dtype=np.uint32)

        def phase_b(indexed_chunk):
            c, (lo, hi) = indexed_chunk
            morsel_scatter(
                keys[lo:hi],
                payloads[lo:hi],
                parts[lo:hi],
                task._dest_base[c],
                num_partitions,
                out_keys,
                out_payloads,
            )

        list(
            self._run(
                task._backend,
                phase_b,
                list(enumerate(task._chunks)),
                label="morsel.scatter",
            )
        )
        return out_keys, out_payloads

    def _run(self, backend: str, fn, items, label: str = "morsel"):
        tracer = self.tracer
        if tracer.enabled:
            kernel = fn

            def fn(item):
                # evaluated inside the worker, so the span carries the
                # thread that actually ran this morsel
                with tracer.span(
                    label,
                    backend=backend,
                    worker=threading.current_thread().name,
                ):
                    return kernel(item)

        if backend == "serial" or len(items) == 1:
            return [fn(item) for item in items]
        return list(self._threads().map(fn, items))

    # -- process + shared memory ---------------------------------------

    def _begin_process(
        self, keys, payloads, n, num_partitions, use_hash, lanes, chunks
    ) -> PartitionTask:
        from multiprocessing import shared_memory

        pdt = parts_dtype(num_partitions)
        spec = {
            "keys": (np.uint32, 4),
            "payloads": (np.uint32, 4),
            "parts": (pdt, pdt.itemsize),
            "out_keys": (np.uint32, 4),
            "out_payloads": (np.uint32, 4),
        }
        blocks, views = {}, {}
        try:
            for name, (dtype, itemsize) in spec.items():
                block = shared_memory.SharedMemory(
                    create=True, size=max(1, n * itemsize)
                )
                blocks[name] = block
                views[name] = np.ndarray(n, dtype=dtype, buffer=block.buf)
            views["keys"][:] = keys
            views["payloads"][:] = payloads
            names = {k: b.name for k, b in blocks.items()}
            tasks = [
                (names, pdt.str, n, lo, hi, num_partitions, use_hash, lanes)
                for lo, hi in chunks
            ]
            with self.tracer.span(
                "morsel.histogram", backend="process", morsels=len(tasks)
            ):
                results = list(
                    self._processes().map(_shm_histogram_task, tasks)
                )
        except BaseException:
            _release_blocks(blocks, views)
            raise
        counts, _, dest_base = merge_histograms([h for h, _ in results])
        lane_counts = None
        if lanes is not None:
            lane_counts = np.sum([lh for _, lh in results], axis=0)
        state = {
            "blocks": blocks,
            "views": views,
            "names": names,
            "parts_dt": pdt.str,
            "n": n,
            "num_partitions": num_partitions,
        }
        return PartitionTask(
            self,
            "process",
            chunks,
            counts,
            lane_counts,
            np.asarray([h for h, _ in results], dtype=np.int64),
            dest_base,
            state,
        )

    def _scatter_process(self, task: PartitionTask):
        state = task._state
        names, pdt, n = state["names"], state["parts_dt"], state["n"]
        num_partitions = state["num_partitions"]
        tasks = [
            (names, pdt, n, lo, hi, num_partitions, task._dest_base[c])
            for c, (lo, hi) in enumerate(task._chunks)
        ]
        with self.tracer.span(
            "morsel.scatter", backend="process", morsels=len(tasks)
        ):
            list(self._processes().map(_shm_scatter_task, tasks))
        # Zero-copy hand-off: ownership of the two output blocks moves
        # from the task (which would unlink them on close) to the
        # returned arrays — downstream PartitionSlices/tickets then
        # serve views of the very memory the workers scattered into.
        views, blocks = state["views"], state["blocks"]
        out = []
        for name in ("out_keys", "out_payloads"):
            views.pop(name, None)
            out.append(_adopt_shm_array(blocks.pop(name), n, np.uint32))
        return out[0], out[1]

    # ------------------------------------------------------------------
    # Generic ordered fan-out (joins, benchmarks)
    # ------------------------------------------------------------------

    def map_tasks(self, fn: Callable, items: Iterable) -> List:
        """Apply ``fn`` over ``items``, preserving order.

        Runs serially on a serial engine and on the shared thread pool
        otherwise (including for process engines: generic tasks close
        over live Python objects, which the shared-memory data plane
        does not require but a process pool could not pickle).
        """
        items = list(items)
        if self.kind == "serial" or self.workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._threads().map(fn, items))

    def submit(self, fn: Callable, *args, **kwargs):
        """Submit one task; returns a ``concurrent.futures.Future``.

        The asynchronous sibling of :meth:`map_tasks`, used by the
        service layer to overlap an oversized request's morsel run with
        queue draining.  On a serial engine the task runs inline and
        the returned future is already resolved (or carries the
        exception).
        """
        if self.kind == "serial" or self.workers == 1:
            from concurrent.futures import Future

            future: "Future" = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as error:  # noqa: BLE001 — future carries it
                future.set_exception(error)
            return future
        return self._threads().submit(fn, *args, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _threads(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._thread_pool

    def _processes(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            import multiprocessing

            context = (
                multiprocessing.get_context("fork")
                if "fork" in _start_methods()
                else None
            )
            self._process_pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._process_pool

    def close(self) -> None:
        """Shut down the worker pools; the engine can be re-created."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None

    def __enter__(self) -> "ExecutionEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: shut the pools down."""
        self.close()


def _start_methods():
    import multiprocessing

    return multiprocessing.get_all_start_methods()


def _release_blocks(blocks, views) -> None:
    views.clear()
    for block in blocks.values():
        try:
            block.close()
            block.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass


def _release_adopted_block(block) -> None:
    try:
        block.close()
        block.unlink()
    except (FileNotFoundError, BufferError):  # pragma: no cover
        pass


def _adopt_shm_array(block, n: int, dtype) -> np.ndarray:
    """An ndarray view over a shared-memory block that owns the block.

    The block is closed and unlinked when the array is collected, so
    callers can hand the view around (engine merge → PartitionSlices →
    service response) without a copy and without leaking ``/dev/shm``
    segments.
    """
    import weakref

    array = np.ndarray(n, dtype=dtype, buffer=block.buf)
    weakref.finalize(array, _release_adopted_block, block)
    return array


EngineSpec = Union[None, str, ExecutionEngine]


def resolve_engine(
    engine: EngineSpec, threads: Optional[int] = None, tracer=None
) -> Optional[ExecutionEngine]:
    """Turn an ``engine=`` knob value into an engine instance.

    Accepts ``None`` (no engine — callers keep their sequential
    reference path), an :class:`ExecutionEngine` (shared pools), or a
    string: ``"serial"``, ``"parallel"`` (auto backend), ``"thread"``,
    ``"process"``.  ``threads`` sets the worker count for string specs;
    ``tracer`` is attached to engines built here (a caller-supplied
    instance keeps whatever tracer it was built with).
    """
    if engine is None:
        return None
    if isinstance(engine, ExecutionEngine):
        return engine
    if engine == "parallel":
        return ExecutionEngine(workers=threads, kind="auto", tracer=tracer)
    if engine in ("serial", "thread", "process"):
        return ExecutionEngine(workers=threads, kind=engine, tracer=tracer)
    raise ConfigurationError(
        f"unknown engine spec {engine!r}; expected None, 'serial', "
        "'parallel', 'thread', 'process' or an ExecutionEngine"
    )
