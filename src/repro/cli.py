"""Command-line interface: ``python -m repro <command>``.

Four kinds of commands:

* ``partition`` / ``join`` / ``simulate`` — run the library on
  generated data and print the results (stats, timings, cycle counts);
* ``spill`` — the out-of-core path: ingest a relation into an on-disk
  store, stream it through the partitioner under a memory budget,
  verify the result (see ``docs/STORAGE.md``);
* ``serve`` — drive the partitioning service layer with a synthetic
  request workload and print its metrics (see ``docs/SERVICE.md``);
* ``gateway`` — the async streaming network front-end: ``serve`` runs
  the TCP server until SIGTERM drains it, ``bench`` drives an
  in-process server with concurrent client streams, optional
  mid-stream kills and byte-identity checks (``docs/GATEWAY.md``);
* ``trace`` — the same, under a :class:`~repro.obs.tracing.Tracer`:
  dump the span log (JSONL), optionally a Prometheus exposition, and
  print the per-stage critical-path summary (``docs/OBSERVABILITY.md``);
* ``validate`` — the Section 4.8 model-validation table;
* ``experiment <id>`` — regenerate one of the paper's tables/figures
  by loading its benchmark module from the repository's
  ``benchmarks/`` directory (source checkouts only).
"""

from __future__ import annotations

import argparse
import importlib.util
import pathlib
import sys
from typing import Optional, Sequence

from repro.bench import ExperimentTable, format_table
from repro.core.circuit import PartitionerCircuit
from repro.core.model import FpgaCostModel
from repro.core.modes import HashKind, LayoutMode, OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner
from repro.cpu.partitioner import CpuPartitioner
from repro.join.hybrid_join import hybrid_join
from repro.join.radix_join import cpu_radix_join
from repro.workloads.relations import WORKLOAD_SPECS, make_relation, make_workload

#: experiment id -> (bench module, zero-arg table builder factory)
_EXPERIMENTS = {
    "fig2": ("bench_fig2_bandwidth", lambda m: m.figure2_table()),
    "tab1": ("bench_tab1_coherence", lambda m: m.table1()),
    "tab1-sim": ("bench_tab1_coherence", lambda m: m.simulated_table1()),
    "fig3a": (
        "bench_fig3_partition_cdf",
        lambda m: m.figure3_table(use_hash=False),
    ),
    "fig3b": (
        "bench_fig3_partition_cdf",
        lambda m: m.figure3_table(use_hash=True),
    ),
    "fig4": ("bench_fig4_cpu_throughput", lambda m: m.figure4_table()),
    "tab2": ("bench_tab2_resources", lambda m: m.table2()),
    "fig8": ("bench_fig8_tuple_width", lambda m: m.figure8_table()),
    "fig9": ("bench_fig9_mode_throughput", lambda m: m.figure9_table()),
    "sec48": (
        "bench_sec48_model_validation",
        lambda m: m.validation_table(),
    ),
    "fig10a": (
        "bench_fig10_partitions",
        lambda m: m.figure10_table(make_workload("A", scale=20000), 1),
    ),
    "fig10b": (
        "bench_fig10_partitions",
        lambda m: m.figure10_table(make_workload("A", scale=20000), 10),
    ),
    "fig11a": (
        "bench_fig11_threads",
        lambda m: m.figure11_table(make_workload("A", scale=20000), "A"),
    ),
    "fig11b": (
        "bench_fig11_threads",
        lambda m: m.figure11_table(make_workload("B", scale=20000), "B"),
    ),
    "fig12c": ("bench_fig12_distributions", lambda m: m.figure12_table("C")),
    "fig12d": ("bench_fig12_distributions", lambda m: m.figure12_table("D")),
    "fig12e": ("bench_fig12_distributions", lambda m: m.figure12_table("E")),
    "fig13": ("bench_fig13_skew", lambda m: m.figure13_table()),
    "future": ("bench_future_platforms", lambda m: m.sweep_table()),
    "parallel": (
        "bench_parallel_scaling",
        lambda m: m.scaling_table(quick=True),
    ),
    "service": (
        "bench_service_load",
        lambda m: m.service_table(quick=True),
    ),
}


def _benchmarks_dir() -> Optional[pathlib.Path]:
    """Locate benchmarks/ next to the installed source tree."""
    here = pathlib.Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "benchmarks"
        if (candidate / "conftest.py").exists():
            return candidate
    return None


def _load_bench(module_name: str):
    directory = _benchmarks_dir()
    if directory is None:
        raise SystemExit(
            "experiment commands need the repository's benchmarks/ "
            "directory (run from a source checkout)"
        )
    path = directory / f"{module_name}.py"
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _parse_mode(mode: str) -> PartitionerConfig:
    try:
        output, layout = mode.upper().split("/")
        return PartitionerConfig(
            output_mode=OutputMode(output), layout_mode=LayoutMode(layout)
        )
    except (ValueError, KeyError) as error:
        raise SystemExit(
            f"invalid mode {mode!r}; expected e.g. PAD/VRID"
        ) from error


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_list(_args) -> int:
    """List the reproducible experiment ids."""
    print("experiments:")
    for key in sorted(_EXPERIMENTS):
        print(f"  {key}")
    return 0


def cmd_experiment(args) -> int:
    """Regenerate one paper table/figure (optionally charted)."""
    if args.id not in _EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {args.id!r}; see 'repro list'"
        )
    module_name, builder = _EXPERIMENTS[args.id]
    module = _load_bench(module_name)
    table: ExperimentTable = builder(module)
    print(table.render())
    if args.chart:
        from repro.bench.charts import chart_table_column

        print()
        print(chart_table_column(table, args.chart))
    return 0


def cmd_validate(args) -> int:
    """Print the Section 4.8 model-validation table."""
    model = FpgaCostModel()
    rows = []
    for label, row in model.validation_table(args.tuples).items():
        rows.append(
            [
                label,
                row["r"],
                row["bandwidth_gbs"],
                row["model_mtuples"],
                row["measured_mtuples"],
                100 * row["relative_error"],
            ]
        )
    print(
        format_table(
            "Section 4.8 model validation",
            ["mode", "r", "B(r)", "model Mt/s", "paper Mt/s", "err %"],
            rows,
        )
    )
    return 0


def cmd_partition(args) -> int:
    """Partition a generated relation and print its stats."""
    config = _parse_mode(args.mode)
    config = PartitionerConfig(
        num_partitions=args.partitions,
        output_mode=config.output_mode,
        layout_mode=config.layout_mode,
        hash_kind=HashKind.RADIX if args.radix else HashKind.MURMUR,
    )
    relation = make_relation(args.tuples, args.distribution, seed=args.seed)
    if args.backend == "cpu":
        out = CpuPartitioner(
            num_partitions=args.partitions,
            hash_kind=config.hash_kind,
            threads=args.threads,
            engine=args.engine,
        ).partition(relation)
    else:
        out = FpgaPartitioner(
            config, engine=args.engine, threads=args.threads
        ).partition(relation, on_overflow="hist")
    model = FpgaCostModel()
    print(f"partitioned {out.num_tuples:,} tuples into "
          f"{out.num_partitions} partitions ({out.produced_by})")
    print(f"  largest partition : {out.max_partition_tuples():,} tuples")
    print(f"  dummy padding     : {100 * out.padding_fraction:.2f}%")
    print(f"  bytes read/written: {out.bytes_read:,} / {out.bytes_written:,}"
          f"  (r = {out.read_write_ratio:.2f})")
    if args.backend == "fpga":
        rate = model.end_to_end_mtuples(
            out.config, out.num_tuples, calibrated=True
        )
        print(f"  prototype rate    : {rate:.0f} Mtuples/s "
              f"({out.config.mode_label})")
    return 0


def cmd_join(args) -> int:
    """Run and compare the CPU and hybrid joins on a workload."""
    workload = make_workload(
        args.workload, scale=args.scale, skew_s_zipf=args.zipf
    )
    spec = WORKLOAD_SPECS[args.workload]
    kwargs = dict(
        threads=args.threads,
        timing_r_tuples=spec.r_tuples,
        timing_s_tuples=spec.s_tuples,
        engine=args.engine,
    )
    cpu = cpu_radix_join(workload, args.partitions, **kwargs)
    hybrid = hybrid_join(
        workload,
        PartitionerConfig(
            num_partitions=args.partitions,
            output_mode=OutputMode.PAD,
            layout_mode=LayoutMode.VRID,
        ),
        on_overflow="hist",
        **kwargs,
    )
    rows = [
        [
            "cpu",
            cpu.timing.partition_seconds,
            cpu.timing.build_probe_seconds,
            cpu.timing.total_seconds,
            cpu.throughput_mtuples,
            cpu.matches,
        ],
        [
            hybrid.timing.partitioner,
            hybrid.timing.partition_seconds,
            hybrid.timing.build_probe_seconds,
            hybrid.timing.total_seconds,
            hybrid.throughput_mtuples,
            hybrid.matches,
        ],
    ]
    print(
        format_table(
            f"join on workload {args.workload} "
            f"(timing at paper scale, data at 1/{args.scale})",
            ["engine", "part s", "b+p s", "total s", "Mt/s", "matches"],
            rows,
        )
    )
    return 0


#: experiments light enough for the one-shot report (the join sweeps
#: and streamed-histogram figures are minutes-long; run those via
#: ``pytest benchmarks/`` instead).
_REPORT_EXPERIMENTS = (
    "fig2",
    "tab1",
    "tab1-sim",
    "fig4",
    "tab2",
    "fig8",
    "fig9",
    "sec48",
    "future",
)


def cmd_report(args) -> int:
    """Regenerate the light experiments into one markdown report."""
    sections = []
    for experiment_id in _REPORT_EXPERIMENTS:
        module_name, builder = _EXPERIMENTS[experiment_id]
        module = _load_bench(module_name)
        table: ExperimentTable = builder(module)
        sections.append(f"## {experiment_id}\n\n```\n{table.render()}\n```")
        print(f"  reproduced {experiment_id}", flush=True)
    body = (
        "# Reproduction report\n\n"
        "Regenerated by `python -m repro report`.  Model numbers are\n"
        "produced by the implemented system; 'paper' columns are the\n"
        "published measurements.  See EXPERIMENTS.md for the full\n"
        "per-figure comparison including the join sweeps.\n\n"
        + "\n\n".join(sections)
        + "\n"
    )
    with open(args.output, "w") as handle:
        handle.write(body)
    print(f"wrote {args.output}")
    return 0


def _synthetic_requests(args):
    """Build the synthetic request stream ``serve``/``trace`` share."""
    import dataclasses

    import numpy as np

    from repro.service import PartitionRequest, Priority

    rng = np.random.default_rng(args.seed)
    mode = getattr(args, "mode", None)
    config = (
        dataclasses.replace(
            _parse_mode(mode), num_partitions=args.partitions
        )
        if mode
        else PartitionerConfig(num_partitions=args.partitions)
    )
    distribution = getattr(args, "distribution", None)
    zipf = getattr(args, "zipf", 0.0) or 0.0
    priorities = (Priority.LOW, Priority.NORMAL, Priority.HIGH)
    lo, hi = args.min_tuples, args.max_tuples
    if lo < 1 or hi < lo:
        raise SystemExit(
            f"need 1 <= --min-tuples <= --max-tuples, got {lo}..{hi}"
        )
    deadline = getattr(args, "deadline", 0.0)

    def keys_for(index: int, size: int) -> np.ndarray:
        if distribution:
            return make_relation(
                size, distribution, seed=args.seed + index,
                zipf_factor=zipf,
            ).keys
        return rng.integers(
            0, 2**32, size=size, dtype=np.uint64
        ).astype(np.uint32)

    return [
        PartitionRequest(
            relation=keys_for(i, int(size)),
            config=config,
            priority=priorities[i % len(priorities)],
            deadline_s=deadline or None,
            on_overflow=getattr(args, "on_overflow", "raise"),
        )
        for i, size in enumerate(
            rng.integers(lo, hi + 1, size=args.requests)
        )
    ]


def _write_trace_outputs(args, tracer, service) -> None:
    """Dump the JSONL span log / Prometheus exposition when asked."""
    if getattr(args, "trace_out", None):
        count = tracer.to_jsonl(args.trace_out)
        print(f"wrote {count} spans to {args.trace_out}")
    if getattr(args, "prometheus_out", None):
        from repro.obs import render_prometheus

        text = render_prometheus(
            service.metrics.to_dict(), tracer.export()
        )
        with open(args.prometheus_out, "w") as handle:
            handle.write(text)
        print(f"wrote Prometheus exposition to {args.prometheus_out}")


def _check_serve_identity(requests, responses) -> int:
    """Count responses whose contents differ from the static reference.

    The reference is a fresh single-shot partitioner per config with
    ``on_overflow="hist"`` — partition contents and counts are
    identical across output modes and backends, so every successful
    response (optimized or not) must match it byte for byte.
    """
    import numpy as np

    from repro.core.partitioner import FpgaPartitioner
    from repro.service import RequestStatus

    mismatches = 0
    partitioners = {}
    try:
        for request, response in zip(requests, responses):
            if response.status is not RequestStatus.OK:
                continue
            key = request.config
            if key not in partitioners:
                partitioners[key] = FpgaPartitioner(config=request.config)
            reference = partitioners[key].partition(
                request.relation, request.payloads, on_overflow="hist"
            )
            output = response.output
            same = np.array_equal(output.counts, reference.counts)
            for p in range(request.config.num_partitions):
                if not same:
                    break
                same = np.array_equal(
                    output.partition_keys[p], reference.partition_keys[p]
                ) and np.array_equal(
                    output.partition_payloads[p],
                    reference.partition_payloads[p],
                )
            if not same:
                mismatches += 1
    finally:
        for partitioner in partitioners.values():
            partitioner.close()
    return mismatches


def cmd_serve(args) -> int:
    """Drive the service layer with a synthetic request workload."""
    from repro.obs import Tracer
    from repro.service import (
        DegradationPolicy,
        FaultInjector,
        PartitionService,
        RequestStatus,
        TokenBucket,
    )

    requests = _synthetic_requests(args)
    policy = DegradationPolicy(
        saturation=(
            TokenBucket(args.saturate_tuples_per_s)
            if args.saturate_tuples_per_s
            else None
        ),
        fault_injector=(
            FaultInjector(fail_rate=args.fail_rate, seed=args.seed)
            if args.fail_rate
            else None
        ),
    )
    tracer = (
        Tracer() if (args.trace_out or args.prometheus_out) else None
    )
    optimizer = None
    if args.optimize:
        from repro.optimize import AdaptiveOptimizer

        optimizer = AdaptiveOptimizer(seed=args.seed)
    service = PartitionService(
        max_queue_requests=args.queue,
        max_batch_requests=1 if args.naive else args.batch,
        policy=policy,
        tracer=tracer,
        optimizer=optimizer,
    )
    import time as _time

    # graceful drain rather than plain stop: in-flight tickets complete,
    # late submits would get ServiceDrainingError (same path the gateway's
    # SIGTERM handler exercises)
    service.start()
    try:
        start = _time.perf_counter()
        tickets = [service.submit(request) for request in requests]
        responses = [ticket.result(timeout=600) for ticket in tickets]
        elapsed = _time.perf_counter() - start
    finally:
        service.drain()
    outcomes = {status: 0 for status in RequestStatus}
    for response in responses:
        outcomes[response.status] += 1
    print(service.metrics.to_table("repro serve").render())
    print()
    print(f"served {len(requests)} requests in {elapsed:.3f}s "
          f"({len(requests) / elapsed:.0f} req/s, "
          f"{'naive' if args.naive else 'batched'} dispatch)")
    print("  outcomes          : " + ", ".join(
        f"{status.value} {count}" for status, count in outcomes.items()
    ))
    degraded = sum(1 for r in responses if r.degraded)
    print(f"  degraded to cpu   : {degraded}")
    rejected = [r for r in responses if r.status is RequestStatus.REJECTED]
    if rejected:
        hints = [r.retry_after for r in rejected if r.retry_after]
        print(f"  retry-after hints : "
              f"{min(hints):.3f}s .. {max(hints):.3f}s")
    if optimizer is not None:
        snap = optimizer.snapshot()
        print("  optimizer         : " + ", ".join(
            f"{label} {count}"
            for label, count in sorted(snap["decisions"].items())
        ) + f" ({snap['observations']} rate observations)")
    if args.check_identity:
        mismatches = _check_serve_identity(requests, responses)
        print(f"  identity check    : "
              f"{len(responses) - mismatches}/{len(responses)} "
              f"byte-identical to static reference")
        if mismatches:
            raise SystemExit(f"{mismatches} responses differ from static")
    if args.output:
        import json

        with open(args.output, "w") as handle:
            json.dump(service.snapshot(), handle, indent=2)
        print(f"wrote {args.output}")
    if tracer is not None:
        _write_trace_outputs(args, tracer, service)
    return 0


def cmd_optimize(args) -> int:
    """Explain optimizer decisions for a sweep of synthetic workloads."""
    import dataclasses

    from repro.optimize import AdaptiveOptimizer, WorkloadProfile

    if args.action != "explain":  # pragma: no cover - argparse enforces
        raise SystemExit(f"unknown optimize action {args.action!r}")
    optimizer = AdaptiveOptimizer(seed=args.seed)
    config = None
    if args.mode:
        config = dataclasses.replace(
            _parse_mode(args.mode), num_partitions=args.partitions
        )
    workloads = {}
    for spec in args.workloads:
        name, _, factor = spec.partition(":")
        distribution = name
        zipf = float(factor) if factor else 0.0
        relation = make_relation(
            args.tuples, distribution, seed=args.seed, zipf_factor=zipf
        )
        label = f"{distribution}({zipf:g})" if zipf else distribution
        workloads[label] = WorkloadProfile.from_keys(
            relation.keys, tuple_bytes=8
        )
    rows = optimizer.explain(workloads, config=config)
    headers = list(rows[0].keys()) if rows else []
    table = ExperimentTable(
        experiment_id="repro optimize",
        title="adaptive optimizer decisions "
              + ("(request config)" if config else "(planned configs)"),
        headers=headers,
        rows=[[row[h] for h in headers] for row in rows],
        note=f"{args.tuples} tuples per workload, seed {args.seed}",
    )
    print(table.render())
    return 0


def cmd_trace(args) -> int:
    """Run a traced workload; dump spans and the critical-path table."""
    from repro.obs import Tracer, critical_path_table
    from repro.service import PartitionService

    requests = _synthetic_requests(args)
    tracer = Tracer(capacity=args.capacity)
    service = PartitionService(
        max_batch_requests=1 if args.naive else args.batch,
        tracer=tracer,
    )
    with service:
        tickets = [service.submit(request) for request in requests]
        for ticket in tickets:
            ticket.result(timeout=600)
    spans = tracer.export()
    print(critical_path_table(spans, title="repro trace").render())
    print()
    _write_trace_outputs(args, tracer, service)
    return 0


def cmd_spill(args) -> int:
    """Out-of-core partitioning demo: ingest, spill, verify, report."""
    import tempfile

    from repro.obs import Tracer
    from repro.storage import RelationStore, SpillPartitioner

    mode = _parse_mode(args.mode)
    config = PartitionerConfig(
        num_partitions=args.partitions,
        output_mode=mode.output_mode,
        layout_mode=mode.layout_mode,
    )
    relation = make_relation(args.tuples, args.distribution, seed=args.seed)
    base = pathlib.Path(
        args.dir or tempfile.mkdtemp(prefix="repro-spill-")
    )
    tracer = Tracer()
    store = RelationStore.ingest(
        relation, base / "store", chunk_tuples=args.chunk_tuples
    ).seal()
    store.verify()
    spiller = SpillPartitioner(
        config,
        backend=args.backend,
        max_bytes_in_memory=args.memory_budget,
        tracer=tracer,
    )
    spill = spiller.run(store, base / "run", on_overflow="hist")
    spiller.close()
    spill.verify()
    out = spill.to_output()
    spans = tracer.export()
    flushes = sum(1 for s in spans if s.name == "spill_flush")
    print(f"spilled {out.num_tuples:,} tuples into "
          f"{out.num_partitions} partitions "
          f"({store.num_chunks} chunks, {flushes} flushes, "
          f"budget {args.memory_budget:,} B)")
    print(f"  run directory     : {spill.path}")
    print(f"  largest partition : {out.max_partition_tuples():,} tuples")
    print(f"  bytes read/written: {out.bytes_read:,} / "
          f"{out.bytes_written:,}  (r = {out.read_write_ratio:.2f})")
    if store.sketch is not None:
        plan = store.sketch.partition_plan(config.num_partitions)
        print(f"  ingest sketch     : ~{plan.distinct_keys:,} distinct "
              f"keys, max key share {100 * plan.max_key_share:.2f}%"
              f"{' (SKEWED)' if plan.skewed else ''}")
    if args.check_identity:
        import numpy as np

        mem = FpgaPartitioner(config).partition(relation)
        identical = all(
            np.array_equal(
                np.asarray(out.partition_keys[p]),
                np.asarray(mem.partition_keys[p]),
            )
            and np.array_equal(
                np.asarray(out.partition_payloads[p]),
                np.asarray(mem.partition_payloads[p]),
            )
            for p in range(config.num_partitions)
        ) and np.array_equal(out.counts, mem.counts)
        print(f"  vs in-memory      : "
              f"{'byte-identical' if identical else 'MISMATCH'}")
        if not identical:
            return 1
    if args.keep:
        print(f"  kept store + run under {base}")
    else:
        spill.cleanup()
        store.delete()
        try:
            base.rmdir()
        except OSError:
            pass
    return 0


def cmd_cluster(args) -> int:
    """Sharded cluster driver: ``serve`` a workload or ``bench`` scaling."""
    import numpy as np

    from repro.cluster import ShardRouter
    from repro.obs import Tracer

    mode = _parse_mode(args.mode)
    config = PartitionerConfig(
        num_partitions=args.partitions,
        output_mode=mode.output_mode,
        layout_mode=mode.layout_mode,
    )

    if args.action == "bench":
        rows = []
        for shards in args.shards_sweep:
            for placement in (False, True):
                router = ShardRouter(
                    shards,
                    seed=args.seed,
                    placement=None if placement else False,
                )
                relation = make_relation(
                    args.tuples, args.distribution, seed=args.seed
                )
                with router:
                    import time as _time

                    start = _time.perf_counter()
                    for _ in range(args.requests):
                        response = router.partition(
                            relation, config=config, on_overflow="hist"
                        )
                        if not response.ok:
                            raise SystemExit(
                                f"cluster request failed: {response.error}"
                            )
                    elapsed = _time.perf_counter() - start
                    snap = router.snapshot()
                loads = np.array([
                    shard["shard"]["tuples"]
                    for shard in snap["shards"].values()
                ], dtype=np.float64)
                imbalance = (
                    float(loads.max() / loads.mean())
                    if loads.mean() > 0 else 1.0
                )
                total = args.requests * args.tuples
                rows.append([
                    shards,
                    "on" if placement else "off",
                    total / elapsed / 1e6,
                    imbalance,
                    snap["router"]["handoffs"],
                ])
        table = ExperimentTable(
            experiment_id="cluster-bench",
            title=(
                f"cluster throughput and shard balance "
                f"({args.distribution} keys, {args.tuples} tuples/req)"
            ),
            headers=[
                "shards", "replication", "Mtuples/s",
                "max/mean load", "handoffs",
            ],
            rows=rows,
        )
        print(table.render())
        return 0

    # action == "serve"
    tracer = Tracer() if args.prometheus_out else None
    router = ShardRouter(
        args.shards,
        seed=args.seed,
        replicas=args.replicas,
        handoff_tuples=args.handoff_tuples or None,
        tracer=tracer,
    )
    rng = np.random.default_rng(args.seed)
    kill_at = (
        args.requests // 2 if args.kill_shard is not None else None
    )
    identical = 0
    with router:
        for i in range(args.requests):
            if kill_at is not None and i == kill_at:
                victim = router.nodes[args.kill_shard].shard_id
                router.kill_shard(victim)
                print(f"killed {victim} after request {i}")
            relation = make_relation(
                args.tuples, args.distribution,
                seed=int(rng.integers(0, 2**31)),
            )
            response = router.partition(
                relation, config=config, on_overflow="hist"
            )
            if not response.ok:
                raise SystemExit(f"request {i} failed: {response.error}")
            if args.check_identity:
                single = FpgaPartitioner(config).partition(
                    relation, on_overflow="hist"
                )
                for p in range(config.num_partitions):
                    ck, cp = response.output.partition(p)
                    sk, sp = single.partition(p)
                    if not (
                        np.array_equal(ck, sk) and np.array_equal(cp, sp)
                    ):
                        raise SystemExit(
                            f"request {i}: partition {p} diverged "
                            f"from single-node output"
                        )
                identical += 1
        snap = router.snapshot()
        if args.prometheus_out:
            with open(args.prometheus_out, "w") as handle:
                handle.write(router.prometheus())
            print(f"wrote Prometheus exposition to {args.prometheus_out}")
    stats = snap["router"]
    print(f"served {stats['requests']} requests on {args.shards} shards "
          f"({stats['completed']} ok, {stats['failed']} failed)")
    print(f"  failovers         : {stats['failovers']}")
    print(f"  spill handoffs    : {stats['handoffs']}")
    print(f"  degraded requests : {stats['degraded']}")
    for shard_id, shard in snap["shards"].items():
        s = shard["shard"]
        print(f"  {shard_id:<10}: {s['requests']} reqs, "
              f"{s['tuples']} tuples, breaker {s['breaker']}, "
              f"{'alive' if s['alive'] else 'down'}")
    if args.check_identity:
        print(f"  byte-identity     : {identical}/{stats['requests']} "
              f"requests verified against single-node partition()")
    return 0


def cmd_simulate(args) -> int:
    """Run the cycle-level circuit and print its counters."""
    config = _parse_mode(args.mode)
    config = PartitionerConfig(
        num_partitions=args.partitions,
        output_mode=config.output_mode,
        layout_mode=config.layout_mode,
    )
    relation = make_relation(args.tuples, args.distribution, seed=args.seed)
    circuit = PartitionerCircuit(
        config, qpi_bandwidth_gbs=args.bandwidth or None
    )
    if config.layout_mode is LayoutMode.VRID:
        result = circuit.run(relation.keys, None,
                             fast_forward=args.fast_forward)
    else:
        result = circuit.run(relation.keys, relation.payloads,
                             fast_forward=args.fast_forward)
    stats = result.stats
    streaming = stats.partition_pass_cycles - stats.flush_cycles
    print(f"simulated {stats.tuples_in:,} tuples ({config.mode_label}, "
          f"{args.partitions} partitions)")
    print(f"  cycles            : {stats.cycles:,} "
          f"(histogram {stats.histogram_pass_cycles:,}, "
          f"flush {stats.flush_cycles:,})")
    print(f"  lines in/out      : {stats.lines_in:,} / {stats.lines_out:,}")
    print(f"  lines/cycle       : {stats.lines_in / max(1, streaming):.2f} "
          f"(streaming)")
    print(f"  flow-ctrl stalls  : "
          f"{stats.combiner_stall_cycles + stats.writeback_stall_cycles} "
          f"(downstream back-pressure, not pipeline hazards)")
    print(f"  forwarding hits   : {stats.forwarding_hits:,}")
    print(f"  back-pressure     : {stats.input_backpressure_cycles:,} cycles")
    print(f"  dummy slots       : {stats.dummy_slots_out:,} "
          f"({100 * stats.output_padding_fraction:.2f}%)")
    return 0


def cmd_pipeline(args) -> int:
    """Fused vs staged join+group-by pipeline on a Zipf-skewed stream.

    Runs the same plan through both executors, checks row identity
    (non-zero exit when they disagree), and prints the wall-clock
    comparison — the CI smoke entry point for the plan layer.
    """
    import time

    import numpy as np

    from repro.plan import execute_plan, join_groupby_query

    workload = make_workload(
        args.workload, scale=args.scale, seed=args.seed,
        skew_s_zipf=args.zipf,
    )
    plan = join_groupby_query(
        workload.r, workload.s, aggregate=args.aggregate,
        config=PartitionerConfig(num_partitions=args.partitions),
        on_overflow="hist",
    )

    def _run(fused: bool):
        start = time.perf_counter()
        result = execute_plan(plan, engine=args.engine, fused=fused)
        return result, time.perf_counter() - start

    fused, fused_s = _run(True)
    staged, staged_s = _run(False)

    identical = (
        fused.matches == staged.matches
        and np.array_equal(fused.group_keys, staged.group_keys)
        and np.array_equal(fused.group_values, staged.group_values)
    )
    tuples = len(workload.r) + len(workload.s)
    rows = [
        ["fused", fused_s, tuples / max(fused_s, 1e-9) / 1e6,
         fused.matches, fused.num_groups],
        ["staged", staged_s, tuples / max(staged_s, 1e-9) / 1e6,
         staged.matches, staged.num_groups],
    ]
    print(
        format_table(
            f"join+group-by({args.aggregate}) on workload {args.workload}"
            + (f", Zipf {args.zipf}" if args.zipf else ""),
            ["executor", "wall s", "Mt/s", "matches", "groups"],
            rows,
        )
    )
    if fused.operator_stats:
        busy = ", ".join(
            f"{name} {stats['busy_s'] * 1e3:.1f}ms/{stats['calls']}"
            for name, stats in sorted(fused.operator_stats.items())
        )
        print(f"  fused operators: {busy}")
    print(
        "  identity check : "
        + ("ok (fused ≡ staged)" if identical else "FAILED")
    )
    return 0 if identical else 1


def _gateway_backend(args):
    """Start the gateway's backend: a service, or a shard cluster."""
    if getattr(args, "cluster", 0):
        from repro.cluster import ShardRouter

        router = ShardRouter(args.cluster, seed=args.seed)
        router.start()
        return None, router
    from repro.service import PartitionService

    service = PartitionService(max_queue_requests=args.queue)
    service.start()
    return service, None


def _fd_count() -> int:
    """Open file descriptors of this process (-1 when unknowable)."""
    import os

    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return -1


async def _gateway_serve(args) -> int:
    """Run the gateway until SIGTERM/SIGINT drains it."""
    import asyncio

    from repro.gateway import GatewayServer
    from repro.obs import Tracer

    tracer = Tracer() if args.prometheus_out else None
    optimizer = None
    if args.optimize:
        from repro.optimize import AdaptiveOptimizer

        optimizer = AdaptiveOptimizer(seed=args.seed)
    service, router = _gateway_backend(args)
    server = GatewayServer(
        service=service,
        router=router,
        host=args.host,
        port=args.port,
        chunk_tuples=args.chunk_tuples,
        credits=args.credits,
        tracer=tracer,
        optimizer=optimizer,
        drain_backend=True,
    )
    await server.start()
    server.install_signal_handlers(asyncio.get_running_loop())
    backend = f"{args.cluster}-shard cluster" if args.cluster else "service"
    print(f"gateway listening on {args.host}:{server.port} "
          f"({backend} backend, {args.credits}-chunk credit window, "
          f"{args.chunk_tuples} tuples/chunk; SIGTERM drains)",
          flush=True)
    await server.serve_forever()
    snap = server.metrics.to_dict()
    counters = snap["counters"]
    print("gateway drained")
    print(f"  connections       : {counters['connections_opened']}")
    print(f"  streams           : {counters['streams_completed']} completed, "
          f"{counters['streams_drained']} drained, "
          f"{counters['streams_failed']} failed")
    print(f"  chunks in/out     : {counters['chunks_in']} / "
          f"{counters['chunks_out']} "
          f"({counters['tuples_in']} tuples)")
    print(f"  backpressure      : {counters['backpressure_stalls']} stalls")
    if args.prometheus_out:
        from repro.obs import prometheus_from_spans

        text = server.metrics.to_prometheus()
        text += prometheus_from_spans(tracer.export())
        with open(args.prometheus_out, "w") as handle:
            handle.write(text)
        print(f"wrote Prometheus exposition to {args.prometheus_out}")
    return 0


async def _gateway_bench(args) -> int:
    """In-process gateway + N concurrent client streams (CI smoke)."""
    import asyncio
    import dataclasses

    from repro.gateway import (
        GatewayClient,
        GatewayServer,
        outputs_identical,
    )

    config = dataclasses.replace(
        _parse_mode(args.mode), num_partitions=args.partitions
    )
    relations = [
        make_relation(
            args.tuples, args.distribution, seed=args.seed + i,
            zipf_factor=args.zipf,
        ).keys
        for i in range(args.streams)
    ]

    optimizer = None
    if args.optimize:
        from repro.optimize import AdaptiveOptimizer

        optimizer = AdaptiveOptimizer(seed=args.seed)
    service, router = _gateway_backend(args)
    server = GatewayServer(
        service=service,
        router=router,
        chunk_tuples=args.chunk_tuples,
        credits=args.credits,
        optimizer=optimizer,
        drain_backend=True,
    )
    await server.start()
    fd_baseline = _fd_count()
    loop = asyncio.get_running_loop()

    async def run_stream(index: int) -> dict:
        keys = relations[index]
        from repro.gateway.chunking import iter_chunks

        chunks = iter_chunks(keys, None, args.chunk_tuples)
        kill_at = (
            max(1, len(chunks) // 2)
            if index == args.kill_stream
            else None
        )
        offsets = None
        if args.arrival != "closed":
            from repro.workloads import generate_arrivals

            offsets = generate_arrivals(
                args.arrival, len(chunks), args.rate,
                seed=args.seed + index,
            )
        client = await GatewayClient.connect("127.0.0.1", server.port)
        try:
            stream = await client.open_stream(
                config, on_overflow=args.on_overflow
            )
            started = loop.time()
            for j, (chunk_keys, _) in enumerate(chunks):
                if kill_at is not None and j == kill_at:
                    # mid-stream kill: drop the connection with chunks
                    # in flight; the server must clean up and the other
                    # streams must stay byte-identical
                    client.abort()
                    return {"stream": index, "killed": True, "chunks": j}
                if offsets is not None:
                    delay = started + offsets[j] - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                await stream.send(chunk_keys)
            output = await stream.finish()
            return {
                "stream": index,
                "killed": False,
                "chunks": len(chunks),
                "elapsed": loop.time() - started,
                "stalls": len(stream.stalls),
                "output": output,
            }
        finally:
            await client.close()

    arrival = (
        "closed loop" if args.arrival == "closed"
        else f"open loop, {args.arrival} arrivals at {args.rate:g} chunks/s"
    )
    backend = f"{args.cluster}-shard cluster" if args.cluster else "service"
    print(f"gateway bench: {args.streams} streams x {args.tuples} "
          f"{args.distribution} tuples ({config.mode_label}, "
          f"{args.partitions} partitions, {args.chunk_tuples} tuples/chunk, "
          f"{backend} backend, {arrival})")
    results = await asyncio.gather(
        *(run_stream(i) for i in range(args.streams)),
        return_exceptions=True,
    )
    await server.drain()

    failures = 0
    survivors = []
    for i, result in enumerate(results):
        if isinstance(result, BaseException):
            print(f"  stream-{i} : FAILED ({result})")
            failures += 1
        elif result["killed"]:
            print(f"  stream-{i} : killed mid-stream "
                  f"after {result['chunks']} chunks")
        else:
            rate = args.tuples / max(result["elapsed"], 1e-9) / 1e6
            print(f"  stream-{i} : {rate:6.2f} Mt/s, "
                  f"{result['chunks']} chunks, "
                  f"{result['stalls']} backpressure stalls")
            survivors.append(result)

    mismatches = 0
    if args.check_identity:
        for result in survivors:
            partitioner = FpgaPartitioner(config)
            try:
                reference = partitioner.partition(
                    relations[result["stream"]],
                    on_overflow=args.on_overflow,
                )
            finally:
                partitioner.close()
            if not outputs_identical(result["output"], reference):
                mismatches += 1
                print(f"  stream-{result['stream']} : "
                      f"IDENTITY MISMATCH vs offline partition()")
        print(f"  byte-identity     : "
              f"{len(survivors) - mismatches}/{len(survivors)} surviving "
              f"streams identical to offline partition()")

    counters = server.metrics.to_dict()["counters"]
    print(f"  backpressure      : "
          f"{counters['backpressure_stalls']} admission stalls, "
          f"{counters['errors_sent']} errors sent")
    current = asyncio.current_task()
    leaked_tasks = [
        task for task in asyncio.all_tasks()
        if task is not current and not task.done()
    ]
    fd_final = _fd_count()
    leaked_fds = (
        max(0, fd_final - fd_baseline)
        if fd_baseline >= 0 and fd_final >= 0
        else 0
    )
    print(f"  leaked tasks      : {len(leaked_tasks)}")
    print(f"  leaked fds        : {leaked_fds}")
    if args.prometheus_out:
        with open(args.prometheus_out, "w") as handle:
            handle.write(server.metrics.to_prometheus())
        print(f"wrote Prometheus exposition to {args.prometheus_out}")
    if failures or mismatches or leaked_tasks or leaked_fds:
        return 1
    return 0


def cmd_gateway(args) -> int:
    """Async streaming gateway: run the front-end, or bench it."""
    import asyncio

    if args.action == "serve":
        return asyncio.run(_gateway_serve(args))
    return asyncio.run(_gateway_bench(args))


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FPGA-based Data Partitioning (SIGMOD'17) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("id", help="experiment id (see 'repro list')")
    p.add_argument(
        "--chart",
        metavar="COLUMN",
        help="also render an ASCII bar chart of this table column",
    )

    p = sub.add_parser("validate", help="Section 4.8 model validation")
    p.add_argument("--tuples", type=int, default=128 * 10**6)

    p = sub.add_parser("partition", help="partition a generated relation")
    p.add_argument("--tuples", type=int, default=1_000_000)
    p.add_argument("--partitions", type=int, default=1024)
    p.add_argument("--mode", default="PAD/RID", help="e.g. HIST/VRID")
    p.add_argument("--distribution", default="random")
    p.add_argument("--backend", choices=["fpga", "cpu"], default="fpga",
                   help="which partitioner implementation to run")
    p.add_argument("--engine", choices=["serial", "parallel"], default=None,
                   help="morsel execution engine (default: legacy path)")
    p.add_argument("--threads", type=int, default=10,
                   help="worker count for --engine / cpu cost model")
    p.add_argument("--radix", action="store_true",
                   help="radix bits instead of murmur")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("join", help="CPU vs hybrid join on a workload")
    p.add_argument("--workload", choices=sorted(WORKLOAD_SPECS), default="A")
    p.add_argument("--threads", type=int, default=10)
    p.add_argument("--partitions", type=int, default=8192)
    p.add_argument("--scale", type=int, default=20000)
    p.add_argument("--zipf", type=float, default=None,
                   help="skew S with this Zipf factor")
    p.add_argument("--engine", choices=["serial", "parallel"], default=None,
                   help="morsel execution engine for both joins")

    p = sub.add_parser(
        "report", help="write the light experiments to a markdown report"
    )
    p.add_argument("--output", default="REPORT.md")

    p = sub.add_parser(
        "serve",
        help="drive the partitioning service with a request workload",
    )
    p.add_argument("--requests", type=int, default=200,
                   help="synthetic requests to submit (open loop)")
    p.add_argument("--min-tuples", type=int, default=256)
    p.add_argument("--max-tuples", type=int, default=4096)
    p.add_argument("--partitions", type=int, default=64)
    p.add_argument("--batch", type=int, default=64,
                   help="max requests coalesced per kernel invocation")
    p.add_argument("--naive", action="store_true",
                   help="one-request-at-a-time dispatch (baseline)")
    p.add_argument("--queue", type=int, default=1024,
                   help="admission-queue bound (excess rejects)")
    p.add_argument("--deadline", type=float, default=0.0,
                   help="per-request deadline in seconds (0 = none)")
    p.add_argument("--fail-rate", type=float, default=0.0,
                   help="inject FPGA faults at this rate (degradation)")
    p.add_argument("--saturate-tuples-per-s", type=float, default=0.0,
                   help="FPGA token-bucket rate (0 = unlimited)")
    p.add_argument("--output", default=None,
                   help="also write ServiceMetrics JSON here")
    p.add_argument("--trace-out", default=None,
                   help="trace the run; write the span log (JSONL) here")
    p.add_argument("--prometheus-out", default=None,
                   help="trace the run; write a Prometheus exposition here")
    p.add_argument("--optimize", action="store_true",
                   help="attach the adaptive optimizer (sketch-driven "
                        "backend routing and heavy-hitter isolation)")
    p.add_argument("--mode", default=None,
                   help="request output/layout mode, e.g. PAD/RID "
                        "(default: the config default)")
    p.add_argument("--distribution", default=None,
                   help="generate request keys with this distribution "
                        "(default: legacy uniform stream)")
    p.add_argument("--zipf", type=float, default=0.0,
                   help="Zipf factor for --distribution zipf")
    p.add_argument("--on-overflow", default="raise",
                   choices=["raise", "hist", "cpu"],
                   help="PAD overflow policy for every request")
    p.add_argument("--check-identity", action="store_true",
                   help="verify every OK response against a static "
                        "single-shot reference (exit 1 on mismatch)")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "optimize",
        help="adaptive-optimizer tooling (decision explain table)",
    )
    p.add_argument("action", choices=["explain"],
                   help="explain: print the decision table for a "
                        "sweep of synthetic workloads")
    p.add_argument("--workloads", nargs="+",
                   default=["random", "zipf:0.9", "zipf:1.2"],
                   help="distribution[:zipf_factor] specs to profile")
    p.add_argument("--tuples", type=int, default=200_000,
                   help="tuples per profiled workload")
    p.add_argument("--partitions", type=int, default=64,
                   help="fan-out for --mode (ignored when planning)")
    p.add_argument("--mode", default=None,
                   help="explain against this request mode (e.g. "
                        "PAD/RID); omit to also plan fan-out/mode")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "trace",
        help="traced service run: span log + critical-path summary",
    )
    p.add_argument("--requests", type=int, default=64,
                   help="synthetic requests to submit (open loop)")
    p.add_argument("--min-tuples", type=int, default=256)
    p.add_argument("--max-tuples", type=int, default=4096)
    p.add_argument("--partitions", type=int, default=64)
    p.add_argument("--batch", type=int, default=64,
                   help="max requests coalesced per kernel invocation")
    p.add_argument("--naive", action="store_true",
                   help="one-request-at-a-time dispatch (baseline)")
    p.add_argument("--capacity", type=int, default=65536,
                   help="span ring-buffer capacity (oldest evicted)")
    p.add_argument("--trace-out", default="trace.jsonl",
                   help="span log (JSONL) path; '' skips the dump")
    p.add_argument("--prometheus-out", default=None,
                   help="also write a Prometheus exposition here")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "spill",
        help="out-of-core partitioning: ingest to disk, spill, verify",
    )
    p.add_argument("--tuples", type=int, default=1_000_000)
    p.add_argument("--partitions", type=int, default=256)
    p.add_argument("--mode", default="HIST/RID", help="e.g. HIST/VRID")
    p.add_argument("--distribution", default="random")
    p.add_argument("--chunk-tuples", type=int, default=1 << 17,
                   help="store ingest granularity (tuples per chunk)")
    p.add_argument("--memory-budget", type=int, default=4 << 20,
                   help="max bytes of chunk output buffered in memory")
    p.add_argument("--backend", choices=["fpga", "cpu"], default="fpga")
    p.add_argument("--dir", default=None,
                   help="store/run directory (default: fresh temp dir)")
    p.add_argument("--keep", action="store_true",
                   help="keep the store and run directories on disk")
    p.add_argument("--check-identity", action="store_true",
                   help="also partition in memory and compare outputs")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "cluster",
        help="sharded partition cluster: serve a workload or bench scaling",
    )
    p.add_argument("action", choices=["serve", "bench"],
                   help="serve: route requests through a shard cluster; "
                        "bench: sweep shard counts and replication")
    p.add_argument("--shards", type=int, default=3,
                   help="shard count for 'serve'")
    p.add_argument("--shards-sweep", type=int, nargs="+",
                   default=[1, 2, 4],
                   help="shard counts for 'bench'")
    p.add_argument("--requests", type=int, default=8)
    p.add_argument("--tuples", type=int, default=100_000,
                   help="tuples per request")
    p.add_argument("--partitions", type=int, default=64)
    p.add_argument("--mode", default="HIST/RID", help="e.g. PAD/VRID")
    p.add_argument("--distribution", default="random")
    p.add_argument("--replicas", type=int, default=2,
                   help="replica-set size for hot partitions")
    p.add_argument("--handoff-tuples", type=int, default=0,
                   help="per-shard slice budget; above it the slice is "
                        "spill-handed to a peer (0 = never)")
    p.add_argument("--kill-shard", type=int, default=None,
                   help="kill this shard index halfway through 'serve'")
    p.add_argument("--check-identity", action="store_true",
                   help="verify every response against single-node output")
    p.add_argument("--prometheus-out", default=None,
                   help="write the per-shard Prometheus exposition here")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "pipeline",
        help="fused vs staged join+group-by pipeline (identity-checked)",
    )
    p.add_argument("--workload", choices=sorted(WORKLOAD_SPECS), default="A")
    p.add_argument("--scale", type=int, default=64,
                   help="shrink the paper workload by this factor")
    p.add_argument("--partitions", type=int, default=512)
    p.add_argument("--zipf", type=float, default=1.05,
                   help="Zipf factor for the probe stream (0 = uniform)")
    p.add_argument("--aggregate", default="sum",
                   choices=["sum", "count", "min", "max", "mean"])
    p.add_argument("--engine", choices=["serial", "thread", "parallel"],
                   default=None, help="morsel execution engine")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "gateway",
        help="async streaming gateway: network front-end for "
             "unbounded partition streams",
    )
    p.add_argument("action", choices=["serve", "bench"],
                   help="serve: run the TCP front-end until SIGTERM "
                        "drains it; bench: in-process server + "
                        "concurrent client streams (CI smoke)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = pick a free one and print it)")
    p.add_argument("--streams", type=int, default=4,
                   help="concurrent client streams for 'bench'")
    p.add_argument("--tuples", type=int, default=131072,
                   help="tuples per bench stream")
    p.add_argument("--partitions", type=int, default=64)
    p.add_argument("--mode", default="HIST/RID", help="e.g. PAD/VRID")
    p.add_argument("--distribution", default="zipf")
    p.add_argument("--zipf", type=float, default=1.1,
                   help="Zipf factor for --distribution zipf")
    p.add_argument("--chunk-tuples", type=int, default=8192,
                   help="stream chunk size in tuples")
    p.add_argument("--credits", type=int, default=4,
                   help="per-stream flow-control window, in chunks")
    p.add_argument("--queue", type=int, default=1024,
                   help="backend admission-queue bound")
    p.add_argument("--cluster", type=int, default=0,
                   help="back the gateway with this many shards "
                        "(0 = single partition service)")
    p.add_argument("--kill-stream", type=int, default=None,
                   help="abort this bench stream's connection halfway "
                        "through (server-cleanup smoke)")
    p.add_argument("--check-identity", action="store_true",
                   help="verify every surviving bench stream against "
                        "an offline partition() (exit 1 on mismatch)")
    p.add_argument("--arrival", default="closed",
                   choices=["closed", "poisson", "burst", "diurnal",
                            "ramp"],
                   help="bench pacing: closed loop, or open-loop "
                        "arrival pattern for chunk sends")
    p.add_argument("--rate", type=float, default=64.0,
                   help="open-loop mean chunk rate per stream "
                        "(chunks/s)")
    p.add_argument("--on-overflow", default="hist",
                   choices=["raise", "hist"],
                   help="PAD overflow policy for bench streams")
    p.add_argument("--optimize", action="store_true",
                   help="feed per-stream ingest sketches to the "
                        "adaptive optimizer mid-stream")
    p.add_argument("--prometheus-out", default=None,
                   help="write the gateway Prometheus exposition here")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("simulate", help="cycle-level circuit run")
    p.add_argument("--tuples", type=int, default=2048)
    p.add_argument("--partitions", type=int, default=16)
    p.add_argument("--mode", default="PAD/RID")
    p.add_argument("--distribution", default="random")
    p.add_argument("--bandwidth", type=float, default=0.0,
                   help="QPI GB/s; 0 = unthrottled")
    p.add_argument("--fast-forward", action="store_true",
                   help="event-driven fast path (identical counters)")
    p.add_argument("--seed", type=int, default=0)

    return parser


_COMMANDS = {
    "list": cmd_list,
    "experiment": cmd_experiment,
    "validate": cmd_validate,
    "partition": cmd_partition,
    "join": cmd_join,
    "serve": cmd_serve,
    "optimize": cmd_optimize,
    "trace": cmd_trace,
    "spill": cmd_spill,
    "cluster": cmd_cluster,
    "gateway": cmd_gateway,
    "pipeline": cmd_pipeline,
    "simulate": cmd_simulate,
    "report": cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
