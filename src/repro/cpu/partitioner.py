"""CPU partitioner public API.

Wraps the functional SWWC implementation and the cost model into the
same :class:`~repro.core.partitioner.PartitionedOutput` interface the
FPGA partitioner produces, so joins and benchmarks can swap them
freely.  Also offers Manegold-style multi-pass radix partitioning
([21], Section 3.1) as an ablation option.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.constants import CACHE_LINE_BYTES
from repro.core.hashing import fanout_bits, radix_bits
from repro.core.modes import HashKind, PartitionerConfig
from repro.core.partitioner import PartitionedOutput
from repro.cpu.cost_model import CpuCostModel
from repro.cpu.swwc_buffers import swwc_partition
from repro.errors import ConfigurationError
from repro.platform.coherence import Socket
from repro.platform.machine import XeonFpgaPlatform
from repro.workloads.distributions import KeyDistribution
from repro.workloads.relations import Relation


class CpuPartitioner:
    """Software-managed-buffer partitioning (the paper's baseline).

    Args:
        num_partitions: power-of-two fan-out.
        hash_kind: murmur hash or radix bits.
        threads: software threads; affects the cost-model timing only
            (the functional result is thread-count invariant up to
            within-partition ordering, which this implementation keeps
            deterministic).
        tuple_bytes: logical tuple width for traffic accounting.
        platform: optional platform for traffic/coherence accounting.
        engine: optional execution-engine spec (``None``, ``"serial"``,
            ``"parallel"``, ``"thread"``, ``"process"`` or an
            :class:`~repro.exec.engine.ExecutionEngine`) that runs the
            histogram and scatter phases on a worker pool.  The output
            stays byte-identical to the serial path.
    """

    def __init__(
        self,
        num_partitions: int = 8192,
        hash_kind: HashKind | str = HashKind.RADIX,
        threads: int = 1,
        tuple_bytes: int = 8,
        platform: Optional[XeonFpgaPlatform] = None,
        cost_model: Optional[CpuCostModel] = None,
        engine=None,
    ):
        fanout_bits(num_partitions)
        if threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        self.num_partitions = num_partitions
        self.hash_kind = HashKind(hash_kind)
        self.threads = threads
        self.tuple_bytes = tuple_bytes
        self.platform = platform
        self.cost_model = cost_model or CpuCostModel(
            bandwidth=platform.bandwidth if platform else None
        )
        from repro.exec.engine import ExecutionEngine, resolve_engine

        self.engine = resolve_engine(engine, threads)
        self._owns_engine = self.engine is not None and not isinstance(
            engine, ExecutionEngine
        )

    def close(self) -> None:
        """Shut down an engine this partitioner created; idempotent.

        Mirrors :meth:`FpgaPartitioner.close` so long-lived callers
        (the service layer's CPU fallback path) can release worker
        pools deterministically.
        """
        if self._owns_engine and self.engine is not None:
            self.engine.close()
        self.engine = None
        self._owns_engine = False

    def __enter__(self) -> "CpuPartitioner":
        """Context-manager entry: the partitioner itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close an owned engine."""
        self.close()

    @classmethod
    def matching(
        cls,
        config: PartitionerConfig,
        threads: int = 10,
        engine=None,
    ) -> "CpuPartitioner":
        """A CPU partitioner equivalent to an FPGA configuration.

        Used for the PAD-overflow fallback path and for apples-to-apples
        comparisons (same fan-out, same partition-index function).
        ``engine`` is forwarded to the constructor.
        """
        return cls(
            num_partitions=config.num_partitions,
            hash_kind=config.hash_kind,
            threads=threads,
            tuple_bytes=config.tuple_bytes,
            engine=engine,
        )

    # ------------------------------------------------------------------

    def partition(
        self,
        relation: Relation | np.ndarray,
        payloads: Optional[np.ndarray] = None,
        region_name: Optional[str] = None,
    ) -> PartitionedOutput:
        """Partition a relation; see the FPGA partitioner for the
        result contract.  The CPU writes densely (no dummy padding) and
        always builds the histogram first (needed to let threads write
        without synchronisation, Section 4.7)."""
        keys, payloads = self._extract(relation, payloads)
        part_keys, part_payloads, counts, _stats = swwc_partition(
            keys,
            payloads,
            self.num_partitions,
            use_hash=self.hash_kind is HashKind.MURMUR,
            threads=self.threads,
            tuple_bytes=self.tuple_bytes,
            engine=self.engine,
        )
        per_line = max(1, CACHE_LINE_BYTES // self.tuple_bytes)
        lines = -(-counts // per_line)
        base_lines = np.zeros(self.num_partitions, dtype=np.int64)
        np.cumsum(lines[:-1], out=base_lines[1:])
        n = int(keys.shape[0])
        output = PartitionedOutput(
            config=PartitionerConfig(
                num_partitions=self.num_partitions,
                tuple_bytes=self.tuple_bytes,
                hash_kind=self.hash_kind,
            ),
            partition_keys=part_keys,
            partition_payloads=part_payloads,
            counts=counts,
            lines_per_partition=lines,
            base_lines=base_lines,
            bytes_read=2 * n * self.tuple_bytes,  # histogram + scatter scans
            bytes_written=n * self.tuple_bytes,   # non-temporal, no RFO
            dummy_slots=0,
            produced_by="cpu",
        )
        if self.platform is not None:
            name = region_name or f"cpu-partitions-{id(output):x}"
            self.platform.coherence.record_region_write(name, Socket.CPU)
        return output

    def multipass_radix(
        self,
        relation: Relation | np.ndarray,
        payloads: Optional[np.ndarray] = None,
        passes: int = 2,
    ) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray, int]:
        """Manegold-style multi-pass radix partitioning ([21]).

        Splits the partition bits across ``passes`` rounds to bound the
        per-round fan-out (the pre-SWWC way to avoid TLB thrash).
        Returns (partition_keys, partition_payloads, counts,
        bytes_moved); the final partitions equal the single-pass radix
        result — verified by tests — while the data is scanned and
        rewritten once per pass.
        """
        if self.hash_kind is not HashKind.RADIX:
            raise ConfigurationError(
                "multi-pass partitioning is defined for radix bits"
            )
        if passes < 1:
            raise ConfigurationError(f"passes must be >= 1, got {passes}")
        total_bits = fanout_bits(self.num_partitions)
        if passes > total_bits:
            raise ConfigurationError(
                f"{passes} passes need at least {passes} partition bits, "
                f"have {total_bits}"
            )
        keys, payloads = self._extract(relation, payloads)
        bits_per_pass = self._split_bits(total_bits, passes)

        # Each pass refines the previous pass's runs, consuming bits
        # from least significant upward.
        runs: List[Tuple[np.ndarray, np.ndarray]] = [(keys, payloads)]
        consumed = 0
        bytes_moved = 0
        for round_bits in bits_per_pass:
            next_runs: List[Tuple[np.ndarray, np.ndarray]] = []
            for run_keys, run_payloads in runs:
                bytes_moved += 2 * run_keys.shape[0] * self.tuple_bytes
                sub = (
                    radix_bits(run_keys, consumed + round_bits).astype(np.int64)
                    >> consumed
                )
                order = np.argsort(sub, kind="stable")
                sub_counts = np.bincount(sub, minlength=1 << round_bits)
                bounds = np.zeros((1 << round_bits) + 1, dtype=np.int64)
                np.cumsum(sub_counts, out=bounds[1:])
                s_keys = run_keys[order]
                s_payloads = run_payloads[order]
                for j in range(1 << round_bits):
                    next_runs.append(
                        (
                            s_keys[bounds[j] : bounds[j + 1]],
                            s_payloads[bounds[j] : bounds[j + 1]],
                        )
                    )
            runs = next_runs
            consumed += round_bits

        # runs are ordered with the earliest-consumed (least
        # significant) bits varying slowest; reorder to plain partition
        # index order, where partition = the low `total_bits` of key.
        part_keys: List[np.ndarray] = [None] * self.num_partitions  # type: ignore
        part_payloads: List[np.ndarray] = [None] * self.num_partitions  # type: ignore
        for run_index, (rk, rp) in enumerate(runs):
            partition = self._run_index_to_partition(
                run_index, bits_per_pass
            )
            part_keys[partition] = rk
            part_payloads[partition] = rp
        counts = np.array([k.shape[0] for k in part_keys], dtype=np.int64)
        return part_keys, part_payloads, counts, bytes_moved

    # ------------------------------------------------------------------

    def estimate_seconds(
        self,
        num_tuples: int,
        distribution: KeyDistribution | str = KeyDistribution.RANDOM,
        interfered: bool = False,
    ) -> float:
        """Cost-model partitioning time for this configuration."""
        return self.cost_model.partitioning_seconds(
            num_tuples,
            self.threads,
            hash_kind=self.hash_kind,
            distribution=distribution,
            num_partitions=self.num_partitions,
            tuple_bytes=self.tuple_bytes,
            interfered=interfered,
        )

    # ------------------------------------------------------------------

    def _extract(
        self,
        relation: Relation | np.ndarray,
        payloads: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        if isinstance(relation, Relation):
            return relation.keys, relation.payloads
        keys = np.ascontiguousarray(relation, dtype=np.uint32)
        if payloads is None:
            payloads = np.arange(keys.shape[0], dtype=np.uint32)
        return keys, np.ascontiguousarray(payloads, dtype=np.uint32)

    @staticmethod
    def _split_bits(total_bits: int, passes: int) -> List[int]:
        base = total_bits // passes
        extra = total_bits % passes
        return [base + (1 if i < extra else 0) for i in range(passes)]

    @staticmethod
    def _run_index_to_partition(run_index: int, bits_per_pass: List[int]) -> int:
        """Map the refinement tree's leaf order to partition numbers.

        After pass 1 the runs are ordered by the lowest ``b1`` bits;
        pass 2 orders within each run by the next ``b2`` bits, i.e. the
        *higher* bits vary fastest in leaf order.  Partition number
        re-concatenates the digit groups with pass-1 bits lowest.
        """
        digits = []
        remaining = run_index
        for bits in reversed(bits_per_pass):
            digits.append(remaining % (1 << bits))
            remaining //= 1 << bits
        # digits[0] is the last pass's digit (highest bits) ... reverse
        partition = 0
        shift = 0
        for bits, digit in zip(bits_per_pass, reversed(digits)):
            partition |= digit << shift
            shift += bits
        return partition
