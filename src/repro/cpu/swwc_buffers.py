"""Software-managed write-combine buffer partitioning (Code 2).

The fast CPU algorithm ([3, 30, 38], Section 3.1): each thread keeps
one cache-line-sized buffer per partition in L1; tuples accumulate in
the buffers and a full buffer is flushed to its destination with
non-temporal stores, so the scattered writes never touch the caches and
never trigger read-for-ownership traffic.

The implementation is *functionally faithful* — it reproduces the exact
output arrangement the C implementation produces (per-thread chunks,
per-partition destinations from a two-level histogram prefix sum,
buffer-flush granularity preserved in the write ordering) — while the
inner loop is vectorised NumPy rather than a tuple-at-a-time loop.  The
buffer mechanics (fills, flushes, the final partial-buffer drain) are
accounted in :class:`SwwcStats` so tests can verify e.g. that flush
counts equal ``floor(count / buffer_tuples)`` per partition and that
the non-temporal write volume equals the relation size.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.constants import CACHE_LINE_BYTES
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.engine import ExecutionEngine


@dataclasses.dataclass
class SwwcStats:
    """Mechanical counters of the buffered scatter."""

    threads: int
    buffer_tuples: int
    tuple_bytes: int = 8
    full_buffer_flushes: int = 0
    partial_buffer_flushes: int = 0
    tuples_written: int = 0
    histogram_passes: int = 1

    @property
    def non_temporal_bytes(self) -> int:
        """Bytes streamed to memory by buffer flushes."""
        return self.tuples_written * self.tuple_bytes


def _thread_chunks(n: int, threads: int) -> List[Tuple[int, int]]:
    """Contiguous per-thread input ranges (morsel = n/threads)."""
    base = n // threads
    extra = n % threads
    chunks = []
    start = 0
    for t in range(threads):
        size = base + (1 if t < extra else 0)
        chunks.append((start, start + size))
        start += size
    return chunks


def swwc_partition(
    keys: np.ndarray,
    payloads: np.ndarray,
    num_partitions: int,
    use_hash: bool = False,
    threads: int = 1,
    tuple_bytes: int = 8,
    buffer_tuples: Optional[int] = None,
    engine: Optional["ExecutionEngine"] = None,
) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray, SwwcStats]:
    """Single-pass partitioning with software-managed buffers.

    Phases, exactly as in the parallel C implementation:

    1. every thread scans its chunk and builds a local histogram;
    2. a two-level prefix sum assigns every (thread, partition) pair a
       disjoint destination range — this is the synchronisation-free
       property the histogram exists for;
    3. every thread re-scans its chunk and scatters through its L1
       buffers into the destination ranges.

    When ``engine`` is given (an
    :class:`~repro.exec.engine.ExecutionEngine`), phases 1 and 3 are
    executed by the engine's worker pool using the same per-thread
    chunk boundaries, so the output is byte-identical to the serial
    path; the buffer-mechanics accounting is reconstructed from the
    per-chunk histograms the engine hands back.

    Returns:
        (partition_keys, partition_payloads, counts, stats).  Within a
        partition, thread 0's tuples precede thread 1's, and within a
        thread input order is preserved — the same arrangement the C
        code produces.
    """
    if threads < 1:
        raise ConfigurationError(f"threads must be >= 1, got {threads}")
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    payloads = np.ascontiguousarray(payloads, dtype=np.uint32)
    if keys.shape != payloads.shape:
        raise ConfigurationError("keys and payloads must align")
    n = int(keys.shape[0])
    if buffer_tuples is None:
        buffer_tuples = max(1, CACHE_LINE_BYTES // tuple_bytes)

    chunks = _thread_chunks(n, threads)
    stats = SwwcStats(
        threads=threads, buffer_tuples=buffer_tuples, tuple_bytes=tuple_bytes
    )

    if engine is not None:
        # Delegate phases 1-3 to the morsel engine with the exact same
        # chunk boundaries; identical two-level prefix sum => identical
        # destination ranges => byte-identical output.
        task = engine.begin_partition(
            keys, payloads, num_partitions, use_hash, chunks=chunks
        )
        try:
            counts = task.counts
            local_hist = np.asarray(task.chunk_hists, dtype=np.int64)
            out_keys, out_payloads = task.scatter()
        finally:
            task.close()
        for t, (lo, hi) in enumerate(chunks):
            if hi <= lo:
                continue
            chunk_counts = local_hist[t]
            stats.full_buffer_flushes += int(
                (chunk_counts // buffer_tuples).sum()
            )
            stats.partial_buffer_flushes += int(
                ((chunk_counts % buffer_tuples) > 0).sum()
            )
            stats.tuples_written += int(hi - lo)
        boundaries = np.zeros(num_partitions + 1, dtype=np.int64)
        np.cumsum(counts, out=boundaries[1:])
        partition_keys = [
            out_keys[boundaries[p] : boundaries[p + 1]]
            for p in range(num_partitions)
        ]
        partition_payloads = [
            out_payloads[boundaries[p] : boundaries[p + 1]]
            for p in range(num_partitions)
        ]
        return partition_keys, partition_payloads, counts, stats

    # Phase 1: per-thread partition indices + histograms, through the
    # fused kernel (native: one GIL-free C pass per chunk).
    from repro.exec.morsels import parts_dtype

    parts = np.empty(n, dtype=parts_dtype(num_partitions))
    local_hist = np.zeros((threads, num_partitions), dtype=np.int64)
    for t, (lo, hi) in enumerate(chunks):
        if hi > lo:
            _, local_hist[t], _ = kernels.hash_histogram(
                keys[lo:hi],
                num_partitions,
                use_hash,
                parts_out=parts[lo:hi],
            )

    # Phase 2: two-level prefix sum -> per-(thread, partition) bases.
    counts = local_hist.sum(axis=0)
    partition_base = np.zeros(num_partitions, dtype=np.int64)
    np.cumsum(counts[:-1], out=partition_base[1:])
    # within a partition, threads stack in id order
    thread_offsets = np.zeros((threads, num_partitions), dtype=np.int64)
    np.cumsum(local_hist[:-1], axis=0, out=thread_offsets[1:])
    dest_base = partition_base[None, :] + thread_offsets

    # Phase 3: buffered scatter — the SWWC primitive itself: tuples
    # stream through cache-line buffers and land at the preassigned
    # destinations (byte-identical to a stable scatter).
    out_keys = np.empty(n, dtype=np.uint32)
    out_payloads = np.empty(n, dtype=np.uint32)
    for t, (lo, hi) in enumerate(chunks):
        if hi <= lo:
            continue
        # threads > 1 engages the native partition-parallel flush: the
        # chunk's partitions are split across pthreads, each owning its
        # cursors, so the bytes match the single-threaded flush.
        kernels.swwc_scatter(
            keys[lo:hi],
            payloads[lo:hi],
            parts[lo:hi],
            dest_base[t],
            num_partitions,
            buffer_tuples,
            out_keys,
            out_payloads,
            threads=threads,
        )
        # Buffer mechanics accounting (full flushes + final drain).
        chunk_counts = local_hist[t]
        stats.full_buffer_flushes += int((chunk_counts // buffer_tuples).sum())
        stats.partial_buffer_flushes += int(
            ((chunk_counts % buffer_tuples) > 0).sum()
        )
        stats.tuples_written += int(hi - lo)

    boundaries = np.zeros(num_partitions + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    partition_keys = [
        out_keys[boundaries[p] : boundaries[p + 1]]
        for p in range(num_partitions)
    ]
    partition_payloads = [
        out_payloads[boundaries[p] : boundaries[p + 1]]
        for p in range(num_partitions)
    ]
    return partition_keys, partition_payloads, counts, stats
