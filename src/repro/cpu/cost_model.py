"""CPU partitioning cost model (Figures 4, 9, 10-13).

The model captures the two regimes the paper describes:

* **compute-bound** at low thread counts — throughput scales linearly
  with threads, and the per-tuple work matters: murmur hashing costs
  real cycles (up to ~50% longer partitioning single-threaded,
  Section 5.3), radix is nearly free but degrades slightly on skewed
  distributions and at very large fan-outs (more L1-resident buffers);
* **memory-bound** once enough threads saturate the socket —
  throughput flattens at a ceiling set by the Figure 2 bandwidth
  curves, identical for radix and hash ("there are free clock cycles
  available as the CPU waits on memory", Section 3.2).

The memory ceiling is computed phase-wise: the histogram pass streams
the relation at the pure-sequential-read bandwidth; the scatter pass
moves two bytes (one read, one non-temporal write) per tuple byte at
the 0.5 read-fraction bandwidth.

Calibration anchors (see ``repro.constants``): the 10-thread ceiling
lands at ~506 Mtuples/s for 8 B tuples (Figure 9) and the single-thread
rates at 130/87 Mtuples/s for radix/murmur, which reproduces the
Figure 4 crossover where the hash penalty disappears by ~8 threads.
"""

from __future__ import annotations

import dataclasses

from repro.constants import (
    CPU_HASH_TUPLES_PER_SEC_PER_THREAD,
    CPU_PARTITION_COUNT_REFERENCE,
    CPU_PARTITION_COUNT_SLOWDOWN_PER_DOUBLING,
    CPU_RADIX_DISTRIBUTION_FACTOR,
    CPU_RADIX_TUPLES_PER_SEC_PER_THREAD,
)
from repro.core.modes import HashKind
from repro.errors import ConfigurationError
from repro.platform.bandwidth import Agent, BandwidthModel
from repro.workloads.distributions import KeyDistribution

import math


@dataclasses.dataclass(frozen=True)
class CpuPartitionEstimate:
    """Throughput estimate with its limiting regimes exposed."""

    tuples_per_second: float
    compute_bound_rate: float
    memory_bound_rate: float

    @property
    def memory_bound(self) -> bool:
        return self.memory_bound_rate <= self.compute_bound_rate

    def seconds_for(self, num_tuples: int) -> float:
        """Wall time this estimate implies for ``num_tuples``.

        Zero tuples take zero seconds by definition — short-circuited
        so a degenerate zero-rate estimate cannot turn ``0 / 0`` into a
        NaN (or ZeroDivisionError) that poisons downstream cost sums.
        """
        if num_tuples < 0:
            raise ConfigurationError(
                f"num_tuples must be >= 0, got {num_tuples}"
            )
        if num_tuples == 0:
            return 0.0
        return num_tuples / self.tuples_per_second


class CpuCostModel:
    """Throughput model for SWWC single-pass CPU partitioning."""

    def __init__(
        self,
        bandwidth: BandwidthModel | None = None,
        radix_rate_per_thread: float = CPU_RADIX_TUPLES_PER_SEC_PER_THREAD,
        hash_rate_per_thread: float = CPU_HASH_TUPLES_PER_SEC_PER_THREAD,
    ):
        self.bandwidth = bandwidth or BandwidthModel()
        self.radix_rate_per_thread = radix_rate_per_thread
        self.hash_rate_per_thread = hash_rate_per_thread

    # ------------------------------------------------------------------

    def memory_bound_rate(
        self, tuple_bytes: int, interfered: bool = False
    ) -> float:
        """Socket-saturated partitioning rate, tuples/s.

        Histogram pass: ``tuple_bytes`` sequentially read per tuple at
        ``B(read_frac=1)``.  Scatter pass: ``tuple_bytes`` read plus
        ``tuple_bytes`` written (non-temporal) at ``B(read_frac=0.5)``.
        """
        if tuple_bytes < 1:
            raise ConfigurationError(
                f"tuple_bytes must be >= 1, got {tuple_bytes}"
            )
        b_seq = self.bandwidth.bytes_per_second(Agent.CPU, 1.0, interfered)
        b_mix = self.bandwidth.bytes_per_second(Agent.CPU, 0.5, interfered)
        seconds_per_tuple = tuple_bytes / b_seq + 2 * tuple_bytes / b_mix
        return 1.0 / seconds_per_tuple

    def compute_bound_rate(
        self,
        threads: int,
        hash_kind: HashKind | str,
        distribution: KeyDistribution | str = KeyDistribution.RANDOM,
        num_partitions: int = CPU_PARTITION_COUNT_REFERENCE,
        tuple_bytes: int = 8,
    ) -> float:
        """Thread-scaled compute rate before the memory ceiling."""
        if threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        if num_partitions < 1:
            raise ConfigurationError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        if tuple_bytes < 1:
            raise ConfigurationError(
                f"tuple_bytes must be >= 1, got {tuple_bytes}"
            )
        hash_kind = HashKind(hash_kind)
        distribution = KeyDistribution(distribution)
        if hash_kind is HashKind.MURMUR:
            base = self.hash_rate_per_thread
            # Robust hashing makes partition sizes distribution-blind.
            factor = 1.0
        else:
            base = self.radix_rate_per_thread
            factor = CPU_RADIX_DISTRIBUTION_FACTOR.get(distribution.value, 1.0)
        # Larger fan-out -> more L1-resident buffers -> slower inner
        # loop; smaller fan-out symmetrically speeds it up (Figure 10a:
        # "a single threaded CPU join spends more time on partitioning"
        # as partitions increase).
        doublings = math.log2(num_partitions / CPU_PARTITION_COUNT_REFERENCE)
        fanout_factor = (
            1.0 - CPU_PARTITION_COUNT_SLOWDOWN_PER_DOUBLING
        ) ** doublings
        fanout_factor = min(2.0, max(0.5, fanout_factor))
        # Wider tuples copy more bytes per tuple; the scatter inner loop
        # scales roughly with tuple size once past 8 B.
        width_factor = 8.0 / tuple_bytes if tuple_bytes > 8 else 1.0
        return threads * base * factor * width_factor * fanout_factor

    def estimate(
        self,
        threads: int,
        hash_kind: HashKind | str = HashKind.RADIX,
        distribution: KeyDistribution | str = KeyDistribution.RANDOM,
        num_partitions: int = CPU_PARTITION_COUNT_REFERENCE,
        tuple_bytes: int = 8,
        interfered: bool = False,
    ) -> CpuPartitionEstimate:
        """Combined estimate: min(compute-bound, memory-bound)."""
        compute = self.compute_bound_rate(
            threads, hash_kind, distribution, num_partitions, tuple_bytes
        )
        memory = self.memory_bound_rate(tuple_bytes, interfered)
        return CpuPartitionEstimate(
            tuples_per_second=min(compute, memory),
            compute_bound_rate=compute,
            memory_bound_rate=memory,
        )

    def throughput_mtuples(self, *args, **kwargs) -> float:
        """Convenience: estimate().tuples_per_second in Mtuples/s."""
        return self.estimate(*args, **kwargs).tuples_per_second / 1e6

    def partitioning_seconds(
        self,
        num_tuples: int,
        threads: int,
        hash_kind: HashKind | str = HashKind.RADIX,
        distribution: KeyDistribution | str = KeyDistribution.RANDOM,
        num_partitions: int = CPU_PARTITION_COUNT_REFERENCE,
        tuple_bytes: int = 8,
        interfered: bool = False,
    ) -> float:
        """Wall time to partition ``num_tuples`` at this configuration."""
        est = self.estimate(
            threads, hash_kind, distribution, num_partitions, tuple_bytes,
            interfered,
        )
        return est.seconds_for(num_tuples)
