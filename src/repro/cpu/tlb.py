"""TLB model and the partitioning strategies' TLB behaviour.

Section 3.1: the scatter phase of partitioning "is very heavy on
random-access, the performance is limited by TLB misses".  That single
sentence is the reason two generations of partitioning algorithms
exist:

* Manegold et al. [21] split the partitioning into **multiple passes**
  so each pass's fan-out stays below the TLB reach — "surprisingly,
  the multiple passes over the data ... pay off";
* Balkesen et al. [3] instead keep the full fan-out but scatter through
  **software-managed buffers**: the working set of a tuple-at-a-time
  loop shrinks from ``fanout`` output pages to ``fanout`` cache-line
  buffers (TLB-resident), and a buffer flush touches its output page
  once per ``buffer_tuples`` tuples instead of once per tuple.

:class:`Tlb` is a fully associative LRU TLB; the ``*_tlb_misses``
functions replay each strategy's memory-touch sequence against it, so
the claims above become measurable (and are pinned by tests and the
TLB ablation benchmark).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

import numpy as np

from repro.core.hashing import partition_of
from repro.errors import ConfigurationError

DATA_TLB_ENTRIES = 64
"""Typical L1 dTLB capacity for 4 KB pages (Ivy Bridge era)."""

PAGE_4K = 4096


class Tlb:
    """Fully associative LRU translation look-aside buffer."""

    def __init__(self, entries: int = DATA_TLB_ENTRIES, page_bytes: int = PAGE_4K):
        if entries < 1 or page_bytes < 1:
            raise ConfigurationError("TLB geometry must be positive")
        self.entries = entries
        self.page_bytes = page_bytes
        self._slots: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch an address; True on TLB hit."""
        page = address // self.page_bytes
        if page in self._slots:
            self._slots.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._slots) >= self.entries:
            self._slots.popitem(last=False)
        self._slots[page] = True
        return False

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def flush(self) -> None:
        """Drop every cached translation."""
        self._slots.clear()


@dataclasses.dataclass(frozen=True)
class TlbReport:
    """Misses of one partitioning strategy's scatter phase."""

    strategy: str
    tuples: int
    misses: int

    @property
    def misses_per_tuple(self) -> float:
        return self.misses / self.tuples if self.tuples else 0.0


def _partition_sequence(
    keys: np.ndarray, num_partitions: int, use_hash: bool
) -> np.ndarray:
    return np.asarray(
        partition_of(
            np.ascontiguousarray(keys, dtype=np.uint32),
            num_partitions,
            use_hash,
        )
    ).astype(np.int64)


def naive_scatter_tlb_misses(
    keys: np.ndarray,
    num_partitions: int,
    use_hash: bool = True,
    tuple_bytes: int = 8,
    tlb: Tlb | None = None,
) -> TlbReport:
    """Code 1's scatter: every tuple touches its partition's write page.

    With ``fanout`` output cursors spread over distinct pages, any
    fan-out beyond the TLB reach makes nearly every write a miss.
    """
    tlb = tlb or Tlb()
    parts = _partition_sequence(keys, num_partitions, use_hash)
    cursors = np.zeros(num_partitions, dtype=np.int64)
    # partitions live in disjoint regions, one page apart at least
    region = max(tlb.page_bytes * 4, keys.shape[0] * tuple_bytes)
    for p in parts:
        address = int(p) * region + int(cursors[p]) * tuple_bytes
        tlb.access(address)
        cursors[p] += 1
    return TlbReport("naive", int(keys.shape[0]), tlb.misses)


def swwc_scatter_tlb_misses(
    keys: np.ndarray,
    num_partitions: int,
    use_hash: bool = True,
    tuple_bytes: int = 8,
    buffer_tuples: int = 8,
    tlb: Tlb | None = None,
) -> TlbReport:
    """Code 2's scatter: tuples land in cache-resident buffers; only a
    full buffer's non-temporal flush touches the output page.

    The buffers themselves occupy ``fanout x 64 B``, i.e. a handful of
    pages that stay TLB-resident.
    """
    tlb = tlb or Tlb()
    parts = _partition_sequence(keys, num_partitions, use_hash)
    counts = np.zeros(num_partitions, dtype=np.int64)
    region = max(tlb.page_bytes * 4, keys.shape[0] * tuple_bytes)
    buffer_base = num_partitions * region + tlb.page_bytes  # after outputs
    for p in parts:
        # write into the buffer (compact: 64 B per partition)
        tlb.access(buffer_base + int(p) * 64)
        counts[p] += 1
        if counts[p] % buffer_tuples == 0:
            # flush: one page touch per buffer_tuples tuples
            address = int(p) * region + int(counts[p]) * tuple_bytes
            tlb.access(address)
    return TlbReport("swwc", int(keys.shape[0]), tlb.misses)


def multipass_scatter_tlb_misses(
    keys: np.ndarray,
    num_partitions: int,
    passes: int = 2,
    tuple_bytes: int = 8,
    tlb_entries: int = DATA_TLB_ENTRIES,
) -> TlbReport:
    """Manegold-style: bound each pass's fan-out below the TLB reach.

    Each pass re-scatters every tuple at ``fanout ** (1/passes)`` ways;
    misses accumulate across passes but each pass's cursor set fits the
    TLB.
    """
    if passes < 1:
        raise ConfigurationError(f"passes must be >= 1, got {passes}")
    total_bits = int(num_partitions).bit_length() - 1
    bits = [total_bits // passes + (1 if i < total_bits % passes else 0)
            for i in range(passes)]
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    total_misses = 0
    consumed = 0
    for round_bits in bits:
        fanout = 1 << round_bits
        tlb = Tlb(entries=tlb_entries)
        parts = ((keys.astype(np.int64) >> consumed) % fanout)
        cursors = np.zeros(fanout, dtype=np.int64)
        region = max(tlb.page_bytes * 4, keys.shape[0] * tuple_bytes)
        for p in parts:
            address = int(p) * region + int(cursors[p]) * tuple_bytes
            tlb.access(address)
            cursors[p] += 1
        total_misses += tlb.misses
        consumed += round_bits
    return TlbReport(
        f"multipass({passes})", int(keys.shape[0]), total_misses
    )
