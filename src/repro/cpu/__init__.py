"""CPU-based partitioning — the software baseline (Section 3).

The state of the art the paper compares against: single-pass radix/hash
partitioning with software-managed write-combine buffers and
non-temporal streaming stores (Balkesen et al. [3], confirmed best by
Polychroniou et al. [27] and Schuhknecht et al. [32]).  Also included
for ablation: the naive scatter (Code 1) and Manegold-style multi-pass
radix partitioning.
"""

from repro.cpu.partitioner import CpuPartitioner
from repro.cpu.swwc_buffers import swwc_partition, SwwcStats
from repro.cpu.naive import naive_partition
from repro.cpu.cost_model import CpuCostModel

__all__ = [
    "CpuPartitioner",
    "swwc_partition",
    "SwwcStats",
    "naive_partition",
    "CpuCostModel",
]
