"""Naive partitioning (Code 1 of the paper).

The textbook scatter: for every tuple, compute the partition and append
it to that partition's output region directly.  Functionally it yields
the same partitions as the buffered algorithm; the difference is purely
mechanical — every tuple is a random cache-line write, which on real
hardware triggers a read-for-ownership (the line is fetched before
being partially overwritten) and thrashes the TLB.  The returned
traffic estimate exposes this: ``2 * 64`` bytes of memory movement per
tuple against the buffered algorithm's ``~tuple_bytes``, the 16x gap
Section 4.2 computes for 8 B tuples.

It exists for the write-combining ablation benchmark and for teaching;
use :func:`repro.cpu.swwc_buffers.swwc_partition` for everything else.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

from repro.constants import CACHE_LINE_BYTES
from repro.core.hashing import partition_of


@dataclasses.dataclass(frozen=True)
class NaiveStats:
    """Traffic the naive scatter would generate on real hardware."""

    tuples: int
    tuple_bytes: int

    @property
    def scatter_bytes(self) -> int:
        """Read-modify-write of one cache line per tuple (Section 4.2)."""
        return self.tuples * 2 * CACHE_LINE_BYTES

    @property
    def combined_scatter_bytes(self) -> int:
        """What write combining reduces the scatter traffic to."""
        return self.tuples * self.tuple_bytes

    @property
    def write_combining_gain(self) -> float:
        """The paper's 16x for 8 B tuples."""
        return self.scatter_bytes / self.combined_scatter_bytes


def naive_partition(
    keys: np.ndarray,
    payloads: np.ndarray,
    num_partitions: int,
    use_hash: bool = False,
    tuple_bytes: int = 8,
) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray, NaiveStats]:
    """Code 1: direct scatter into per-partition buffers.

    Returns (partition_keys, partition_payloads, counts, stats); within
    a partition, input order is preserved.
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint32)
    payloads = np.ascontiguousarray(payloads, dtype=np.uint32)
    parts = np.asarray(partition_of(keys, num_partitions, use_hash)).astype(
        np.int64
    )
    order = np.argsort(parts, kind="stable")
    counts = np.bincount(parts, minlength=num_partitions)
    boundaries = np.zeros(num_partitions + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    sorted_keys = keys[order]
    sorted_payloads = payloads[order]
    partition_keys = [
        sorted_keys[boundaries[p] : boundaries[p + 1]]
        for p in range(num_partitions)
    ]
    partition_payloads = [
        sorted_payloads[boundaries[p] : boundaries[p + 1]]
        for p in range(num_partitions)
    ]
    stats = NaiveStats(tuples=int(keys.shape[0]), tuple_bytes=tuple_bytes)
    return partition_keys, partition_payloads, counts, stats
