"""Reproduction of "FPGA-based Data Partitioning" (SIGMOD 2017).

Kara, Giceva and Alonso built a fully pipelined FPGA data partitioner
for the Intel Xeon+FPGA platform and used it as the partitioning phase
of a hybrid radix hash join.  This library reproduces the whole system
in Python: a cycle-level simulation of the circuit, a model of the
platform (QPI bandwidth, shared memory, coherence), the CPU
state-of-the-art baseline, the joins, and a benchmark for every table
and figure of the paper's evaluation.

Quickstart::

    import repro
    from repro import PartitionerConfig, FpgaPartitioner, make_workload

    wl = repro.make_workload("A", scale=1000)
    out = FpgaPartitioner(PartitionerConfig(num_partitions=1024)).partition(wl.r)
    print(out.counts.max(), out.padding_fraction)

See ``examples/`` for complete programs and ``benchmarks/`` for the
per-figure reproductions.
"""

from repro.core import (
    FpgaCostModel,
    FpgaPartitioner,
    HashKind,
    LayoutMode,
    ModelPrediction,
    OutputMode,
    PartitionedOutput,
    PartitionerConfig,
    ResourceUsage,
    estimate_resources,
    murmur3_finalizer,
    partition_of,
    radix_bits,
)
from repro.core.afu import PartitionerAfu
from repro.core.materialize import materialize_vrid
from repro.cpu import CpuCostModel, CpuPartitioner
from repro.join import (
    BucketChainingHashTable,
    BuildProbeCostModel,
    JoinResult,
    JoinTiming,
    cpu_radix_join,
    hybrid_join,
)
from repro.join.no_partition_join import no_partition_join
from repro.ops import RangePartitioner, partitioned_groupby
from repro.platform import (
    Agent,
    BandwidthModel,
    CoherenceDirectory,
    XeonFpgaPlatform,
)
from repro.workloads import (
    KeyDistribution,
    Relation,
    Workload,
    generate_keys,
    make_relation,
    make_workload,
)
from repro.analysis import (
    balance_report,
    partition_cdf,
    partition_histogram,
    verify_join_pairs,
    verify_partitioning,
)
from repro.errors import (
    ConfigurationError,
    PartitionOverflowError,
    ReproError,
    SimulationError,
)
from repro.exec import ExecutionEngine, resolve_engine

__version__ = "1.0.0"

__all__ = [
    # core
    "FpgaPartitioner",
    "PartitionerConfig",
    "PartitionedOutput",
    "OutputMode",
    "LayoutMode",
    "HashKind",
    "FpgaCostModel",
    "ModelPrediction",
    "ResourceUsage",
    "estimate_resources",
    "murmur3_finalizer",
    "radix_bits",
    "partition_of",
    "PartitionerAfu",
    "materialize_vrid",
    # cpu
    "CpuPartitioner",
    "CpuCostModel",
    # join
    "BucketChainingHashTable",
    "BuildProbeCostModel",
    "cpu_radix_join",
    "hybrid_join",
    "no_partition_join",
    "JoinResult",
    "JoinTiming",
    # ops
    "partitioned_groupby",
    "RangePartitioner",
    # platform
    "XeonFpgaPlatform",
    "BandwidthModel",
    "Agent",
    "CoherenceDirectory",
    # workloads
    "Relation",
    "Workload",
    "KeyDistribution",
    "generate_keys",
    "make_relation",
    "make_workload",
    # analysis
    "partition_histogram",
    "partition_cdf",
    "balance_report",
    "verify_partitioning",
    "verify_join_pairs",
    # exec
    "ExecutionEngine",
    "resolve_engine",
    # errors
    "ReproError",
    "ConfigurationError",
    "PartitionOverflowError",
    "SimulationError",
    "__version__",
]
