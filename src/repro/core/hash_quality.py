"""Hash-function quality analysis (Section 3.2's robustness question).

Richter et al. [29] analysed hashing methods across seven dimensions;
the paper's takeaway is one-dimensional but crucial: for partitioning,
the hash must spread *every* key distribution evenly over the
partitions, because the degenerate inputs (grid-like ids, addresses,
strings) are exactly the common ones.  Kara & Alonso [18] showed robust
hashes cost nothing on an FPGA — which is why the partitioner defaults
to murmur.

This module makes the robustness claim measurable for several hash
families:

* **murmur3 finalizer** — the paper's choice (Code 3);
* **multiply-shift** — the cheap classic (Dietzfelbinger); robust for
  random keys, weaker on structured ones;
* **tabulation** — Zobrist/tabulation hashing, strongly universal,
  robust, cheap on FPGAs (one BRAM lookup per byte + XORs);
* **identity/radix** — the non-hash baseline.

:func:`robustness_report` partitions each Section 3.2 distribution
with each family and scores the balance — a quantitative Figure 3
across hash functions.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Sequence

import numpy as np

from repro.analysis.balance import BalanceReport, balance_report
from repro.core.hashing import murmur3_finalizer, radix_bits
from repro.errors import ConfigurationError
from repro.workloads.distributions import generate_keys

_MULTIPLY_SHIFT_A = np.uint64(0x9E3779B97F4A7C15)  # odd (golden ratio)


def multiply_shift(keys: np.ndarray, bits: int = 32) -> np.ndarray:
    """Dietzfelbinger multiply-shift: ``(a * key) >> (64 - bits)``.

    2-universal for the *high* output bits; notoriously weak in its low
    bits, which is why the partition index below always takes the top
    of the product.
    """
    if not 1 <= bits <= 32:
        raise ConfigurationError(f"bits must be in [1, 32], got {bits}")
    keys = np.ascontiguousarray(keys, dtype=np.uint32).astype(np.uint64)
    with np.errstate(over="ignore"):
        product = keys * _MULTIPLY_SHIFT_A
    return (product >> np.uint64(64 - bits)).astype(np.uint32)


class TabulationHash:
    """Byte-wise tabulation hashing (3-independent).

    Four 256-entry tables of random 32-bit words, XOR-combined per key
    byte — on an FPGA this is four parallel BRAM lookups and a XOR
    tree, a single pipeline stage per level, fully in the spirit of the
    paper's "robust hashing at no cost" argument [18].
    """

    def __init__(self, seed: int = 0x7AB):
        rng = np.random.default_rng(seed)
        self.tables = rng.integers(
            0, 2**32, size=(4, 256), dtype=np.uint64
        ).astype(np.uint32)

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        out = np.zeros(keys.shape, dtype=np.uint32)
        for byte_index in range(4):
            byte = (keys >> np.uint32(8 * byte_index)) & np.uint32(0xFF)
            out ^= self.tables[byte_index][byte]
        return out


def hash_families() -> Dict[str, Callable[[np.ndarray], np.ndarray]]:
    """The families compared by the robustness report."""
    tabulation = TabulationHash()
    return {
        "radix": lambda keys: keys,
        "multiply_shift": lambda keys: multiply_shift(keys),
        "tabulation": tabulation,
        "murmur": murmur3_finalizer,
    }


@dataclasses.dataclass(frozen=True)
class RobustnessCell:
    """Balance of one (hash family, distribution) pair."""

    family: str
    distribution: str
    report: BalanceReport

    @property
    def balanced(self) -> bool:
        return self.report.is_balanced


def robustness_report(
    num_keys: int = 200_000,
    num_partitions: int = 512,
    distributions: Sequence[str] = (
        "linear", "random", "grid", "reverse_grid"
    ),
    seed: int = 5,
) -> Dict[str, Dict[str, RobustnessCell]]:
    """Partition-balance matrix: hash family x key distribution.

    The partition index is taken the way each family intends: low bits
    for radix/murmur/tabulation (their output bits are uniform), high
    bits for multiply-shift.
    """
    bits = int(num_partitions).bit_length() - 1
    if 1 << bits != num_partitions:
        raise ConfigurationError("num_partitions must be a power of two")
    matrix: Dict[str, Dict[str, RobustnessCell]] = {}
    for family, fn in hash_families().items():
        matrix[family] = {}
        for distribution in distributions:
            keys = generate_keys(distribution, num_keys, seed=seed)
            if family == "multiply_shift":
                parts = multiply_shift(keys, bits=bits)
            else:
                parts = radix_bits(fn(keys), bits)
            counts = np.bincount(
                parts.astype(np.int64), minlength=num_partitions
            )
            matrix[family][distribution] = RobustnessCell(
                family=family,
                distribution=distribution,
                report=balance_report(counts),
            )
    return matrix


def robust_families(
    matrix: Dict[str, Dict[str, RobustnessCell]]
) -> Dict[str, bool]:
    """Which families are balanced on EVERY distribution — the paper's
    bar for a partitioning hash."""
    return {
        family: all(cell.balanced for cell in cells.values())
        for family, cells in matrix.items()
    }
