"""Hash functions used by the partitioner (Section 4.1, Code 3).

The paper's hash-function module supports two modes:

* **murmur** — the 32-bit murmur3 finalizer (Appleby [2]), the "robust"
  hash.  In hardware it is a 5-stage pipeline (Table 3,
  ``c_hashing = 5``); each line of Code 3 is one always-active stage.
* **radix** — take the N least-significant bits of the key directly.

Both produce an N-bit partition index.  The functional forms here are
bit-exact with the circuit model in :mod:`repro.core.hash_module` (the
cycle simulator reuses these functions per stage), and are provided as
scalars and as vectorised NumPy kernels.

For 16 B tuples the key is 8 bytes, hashed with the 64-bit murmur3
finalizer (the paper notes the hash needs more DSP blocks for 8 B keys,
Table 2).
"""

from __future__ import annotations

import functools
from typing import Callable, Optional, Union

import numpy as np

from repro.errors import ConfigurationError

_U32 = 0xFFFFFFFF
_U64 = 0xFFFFFFFFFFFFFFFF

# murmur3 32-bit finalizer constants (Code 3)
MURMUR32_C1 = 0x85EBCA6B
MURMUR32_C2 = 0xC2B2AE35

# murmur3 64-bit finalizer constants (fmix64 from smhasher [2])
MURMUR64_C1 = 0xFF51AFD7ED558CCD
MURMUR64_C2 = 0xC4CEB9FE1A85EC53

ArrayLike = Union[int, np.ndarray]


def murmur3_finalizer(key: ArrayLike) -> ArrayLike:
    """32-bit murmur3 finalizer (Code 3 of the paper).

    Accepts a Python int or a NumPy ``uint32`` array; returns the same
    shape.  The five operations map one-to-one onto the five pipeline
    stages of the hardware hash module.
    """
    if isinstance(key, np.ndarray):
        if key.dtype != np.uint32:
            raise ConfigurationError(
                f"murmur3_finalizer expects uint32 arrays, got {key.dtype}"
            )
        h = key.copy()
        h ^= h >> np.uint32(16)
        h *= np.uint32(MURMUR32_C1)
        h ^= h >> np.uint32(13)
        h *= np.uint32(MURMUR32_C2)
        h ^= h >> np.uint32(16)
        return h
    h = int(key) & _U32
    h ^= h >> 16
    h = (h * MURMUR32_C1) & _U32
    h ^= h >> 13
    h = (h * MURMUR32_C2) & _U32
    h ^= h >> 16
    return h


def murmur3_finalizer64(key: ArrayLike) -> ArrayLike:
    """64-bit murmur3 finalizer (``fmix64``), used for 8 B keys."""
    if isinstance(key, np.ndarray):
        if key.dtype != np.uint64:
            raise ConfigurationError(
                f"murmur3_finalizer64 expects uint64 arrays, got {key.dtype}"
            )
        h = key.copy()
        with np.errstate(over="ignore"):
            h ^= h >> np.uint64(33)
            h *= np.uint64(MURMUR64_C1)
            h ^= h >> np.uint64(33)
            h *= np.uint64(MURMUR64_C2)
            h ^= h >> np.uint64(33)
        return h
    h = int(key) & _U64
    h ^= h >> 33
    h = (h * MURMUR64_C1) & _U64
    h ^= h >> 33
    h = (h * MURMUR64_C2) & _U64
    h ^= h >> 33
    return h


def radix_bits(key: ArrayLike, num_bits: int) -> ArrayLike:
    """N least-significant bits of the key (radix partitioning)."""
    _check_bits(num_bits)
    if isinstance(key, np.ndarray):
        mask = key.dtype.type((1 << num_bits) - 1)
        return key & mask
    return int(key) & ((1 << num_bits) - 1)


def _check_bits(num_bits: int) -> None:
    if not 1 <= num_bits <= 32:
        raise ConfigurationError(
            f"partition bits must be in [1, 32], got {num_bits}"
        )


def fanout_bits(num_partitions: int) -> int:
    """Number of partition-index bits for a power-of-two fan-out."""
    if num_partitions < 2 or num_partitions & (num_partitions - 1):
        raise ConfigurationError(
            f"number of partitions must be a power of two >= 2, "
            f"got {num_partitions}"
        )
    return int(num_partitions).bit_length() - 1


def partition_of(
    key: ArrayLike,
    num_partitions: int,
    use_hash: bool,
) -> ArrayLike:
    """Partition index for a key: hash-then-radix or radix directly.

    This is the exact function the hardware computes (Code 3): when
    ``do_hash`` is set, the key goes through the murmur finalizer and
    the N LSBs of the hash are taken; otherwise the N LSBs of the raw
    key are taken.
    """
    bits = fanout_bits(num_partitions)
    if use_hash:
        if isinstance(key, np.ndarray) and key.dtype == np.uint64:
            hashed = murmur3_finalizer64(key)
        elif not isinstance(key, np.ndarray) and int(key) > _U32:
            hashed = murmur3_finalizer64(key)
        else:
            hashed = murmur3_finalizer(key)
        return radix_bits(hashed, bits)
    return radix_bits(key, bits)


@functools.lru_cache(maxsize=64)
def partition_function(
    num_partitions: int, use_hash: bool
) -> Callable[..., np.ndarray]:
    """Batched partition-index kernel for a fixed configuration.

    Returns ``kernel(keys, out=None) -> parts`` computing
    :func:`partition_of` over a whole ``uint32`` (or ``uint64``) key
    array at once.  The fan-out validation, bit count and masks are
    resolved *here*, once per ``(num_partitions, use_hash)`` pair, and
    memoised with a small LRU so per-morsel calls pay only the NumPy
    kernel.  The murmur pipeline runs in-place on a scratch copy (five
    vector ops, no extra temporaries beyond the copy).

    When ``out`` is given the indices are written into it (any integer
    dtype wide enough for the fan-out) and ``out`` is returned;
    otherwise a fresh ``int64`` array is returned.  Bit-exact with
    :func:`partition_of` on every key, by construction and by test.
    """
    bits = fanout_bits(num_partitions)
    mask32 = np.uint32((1 << bits) - 1)
    mask64 = np.uint64((1 << bits) - 1)

    def kernel(
        keys: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Partition indices for a key batch (see partition_function)."""
        wide = keys.dtype == np.uint64
        if use_hash:
            h = keys.copy()
            if wide:
                with np.errstate(over="ignore"):
                    h ^= h >> np.uint64(33)
                    h *= np.uint64(MURMUR64_C1)
                    h ^= h >> np.uint64(33)
                    h *= np.uint64(MURMUR64_C2)
                    h ^= h >> np.uint64(33)
                    h &= mask64
            else:
                h ^= h >> np.uint32(16)
                h *= np.uint32(MURMUR32_C1)
                h ^= h >> np.uint32(13)
                h *= np.uint32(MURMUR32_C2)
                h ^= h >> np.uint32(16)
                h &= mask32
        else:
            h = keys & (mask64 if wide else mask32)
        if out is None:
            return h.astype(np.int64)
        np.copyto(out, h, casting="unsafe")
        return out

    return kernel
