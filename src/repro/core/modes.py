"""Partitioner configuration: modes of operation (Section 4.5).

The partitioner has two binary configuration parameters, giving four
modes of operation:

* Output format — :class:`OutputMode`:

  - ``HIST`` (histogram building): a first pass over the relation
    builds a per-partition histogram in BRAM; a second pass writes
    tuples to exact prefix-sum destinations.  Two scans, minimal
    intermediate memory, robust against any skew.
  - ``PAD`` (padding): every partition is preassigned a fixed region of
    ``n / fanout + padding`` tuples and written in a single pass.  If a
    partition overflows, the run aborts and falls back to a CPU
    partitioner (Section 5.4: realistic paddings fail above Zipf 0.25).

* Input layout — :class:`LayoutMode`:

  - ``RID`` (record id): tuples are materialised <key, payload> rows.
  - ``VRID`` (virtual record id): column-store mode.  Only the key
    column is read; the FPGA appends a 4 B virtual record id (the
    tuple's position) on the fly, halving the bytes read over QPI.

Plus the hash selection of Section 4.1 — :class:`HashKind` (murmur or
radix) — which is performance-neutral on the FPGA.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.constants import CACHE_LINE_BYTES, SUPPORTED_TUPLE_WIDTHS
from repro.core.hashing import fanout_bits
from repro.errors import ConfigurationError


class OutputMode(str, enum.Enum):
    """HIST (two-pass, histogram) or PAD (one-pass, padded regions)."""

    HIST = "HIST"
    PAD = "PAD"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class LayoutMode(str, enum.Enum):
    """RID (row layout) or VRID (column-store key-only input)."""

    RID = "RID"
    VRID = "VRID"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class HashKind(str, enum.Enum):
    """Partition-index function: robust murmur hash or raw radix bits."""

    MURMUR = "murmur"
    RADIX = "radix"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class PartitionerConfig:
    """Full configuration of one partitioner instantiation.

    Attributes:
        num_partitions: fan-out; must be a power of two (the hardware
            indexes BRAMs with the partition bits).  The paper evaluates
            256..8192.
        tuple_bytes: 8, 16, 32 or 64 (Section 4.4).
        output_mode: HIST or PAD.
        layout_mode: RID or VRID.
        hash_kind: murmur or radix.
        pad_tuples: PAD mode only — extra per-partition slack in tuples
            on top of the fair share ``n / num_partitions``.  If None, a
            default of 50% of the fair share is used (chosen so uniform
            workloads never overflow while Zipf > 0.25 does, matching
            Section 5.4).
    """

    num_partitions: int = 8192
    tuple_bytes: int = 8
    output_mode: OutputMode = OutputMode.HIST
    layout_mode: LayoutMode = LayoutMode.RID
    hash_kind: HashKind = HashKind.MURMUR
    pad_tuples: int | None = None

    def __post_init__(self) -> None:
        fanout_bits(self.num_partitions)  # validates power of two
        if self.tuple_bytes not in SUPPORTED_TUPLE_WIDTHS:
            raise ConfigurationError(
                f"tuple_bytes must be one of {SUPPORTED_TUPLE_WIDTHS}, "
                f"got {self.tuple_bytes}"
            )
        if self.pad_tuples is not None and self.pad_tuples < 0:
            raise ConfigurationError(
                f"pad_tuples must be >= 0, got {self.pad_tuples}"
            )
        if (
            self.layout_mode is LayoutMode.VRID
            and self.tuple_bytes != 8
        ):
            raise ConfigurationError(
                "VRID mode reads a 4 B key column and appends a 4 B "
                "virtual record id, producing 8 B tuples; configure "
                "tuple_bytes=8"
            )

    @property
    def partition_bits(self) -> int:
        """Number of hash bits used as the partition index."""
        return fanout_bits(self.num_partitions)

    @property
    def tuples_per_line(self) -> int:
        """Tuples packed into one 64 B cache line (8 for 8 B tuples)."""
        return CACHE_LINE_BYTES // self.tuple_bytes

    @property
    def num_lanes(self) -> int:
        """Parallel hash-module / write-combiner lanes in the circuit.

        One lane per tuple slot of the input cache line (Figure 5 shows
        8 lanes for 8 B tuples; Figure 7 shows fewer for wider tuples).
        """
        return self.tuples_per_line

    @property
    def uses_hash(self) -> bool:
        return self.hash_kind is HashKind.MURMUR

    @property
    def mode_factor(self) -> int:
        """``f_mode`` of the analytical model: 2 for HIST, 1 for PAD."""
        return 2 if self.output_mode is OutputMode.HIST else 1

    @property
    def mode_label(self) -> str:
        """Label like ``"PAD/VRID"`` as used in Figure 9."""
        return f"{self.output_mode.value}/{self.layout_mode.value}"

    def default_pad_tuples(self, num_tuples: int) -> int:
        """Effective per-partition padding for ``num_tuples`` inputs."""
        if self.pad_tuples is not None:
            return self.pad_tuples
        fair_share = max(1, num_tuples // self.num_partitions)
        return max(self.tuples_per_line, fair_share // 2)

    def partition_capacity(self, num_tuples: int) -> int:
        """PAD-mode fixed capacity per partition, in tuples.

        ``#Tuples/#Partitions + Padding`` (Section 4.5), rounded up to
        whole cache lines because the write-back module addresses
        partitions in cache-line units — plus one line of slack per
        lane, since each of the ``num_lanes`` write combiners can leave
        a dummy-padded partial line in every partition at flush time.
        """
        fair_share = -(-num_tuples // self.num_partitions)  # ceil
        capacity = fair_share + self.default_pad_tuples(num_tuples)
        per_line = self.tuples_per_line
        whole_lines = -(-capacity // per_line)
        return (whole_lines + self.num_lanes) * per_line

    def traffic_bytes(
        self, n_tuples: int, lines_written: int
    ) -> tuple:
        """(bytes_read, bytes_written) for one partitioning pass.

        HIST scans the input twice, PAD once; VRID reads only the 4 B
        key column.  Writes are whatever the write-back emitted, in
        64 B cache-line units.  This is the accounting both the
        in-memory partitioner and the out-of-core spill path use, so
        their reported traffic stays byte-identical.
        """
        passes = 2 if self.output_mode is OutputMode.HIST else 1
        if self.layout_mode is LayoutMode.VRID:
            keys_per_line = CACHE_LINE_BYTES // 4
            lines_read = -(-n_tuples // keys_per_line)
        else:
            lines_read = -(-n_tuples // self.tuples_per_line)
        bytes_read = passes * lines_read * CACHE_LINE_BYTES
        bytes_written = lines_written * CACHE_LINE_BYTES
        return bytes_read, bytes_written

    def read_write_ratio(self) -> float:
        """``r`` — sequential-read to random-write byte ratio (Table 3).

        HIST/RID reads the data twice and writes once (r = 2);
        HIST/VRID reads the 4 B key column twice (= one tuple-width
        read) and writes full tuples (r = 1); PAD/RID reads and writes
        once (r = 1); PAD/VRID reads half a tuple and writes a full one
        (r = 0.5).  Only defined for the 8 B <4 B key, 4 B payload>
        scheme in VRID mode.
        """
        reads = 2.0 if self.output_mode is OutputMode.HIST else 1.0
        if self.layout_mode is LayoutMode.VRID:
            reads *= 0.5
        return reads
