"""Top-level cycle-level model of the partitioner circuit (Figure 5).

The datapath, exactly as in the paper:

* An input cache line is split into ``64/W`` tuples which enter the
  ``64/W`` parallel **hash-function modules** (5-stage pipelines).
* Each hash module's output lands in a first-stage **FIFO**, read by
  that lane's **write combiner**, which gathers same-partition tuples
  into full cache lines.
* The **write-back module** drains the combiners' output FIFOs
  round-robin, computes destination addresses from the prefix-sum /
  offset BRAMs, and pushes addressed lines into the last-stage FIFO
  toward QPI.
* **Back-pressure**: the QPI link sustains fewer lines per cycle than
  the circuit can produce; the write path stalls on the link, and the
  input side issues read requests *only when there are free slots in
  the first-stage FIFOs* (Section 4.3), so no FIFO can ever overflow.

Both operating passes are simulated: the optional histogram pass (HIST
mode, no data written back) and the partitioning pass, followed by the
flush of partially filled combiner lines.

This simulator exists to *verify architectural claims* — one line per
cycle, no internal stalls regardless of input pattern, correct output
under the BRAM read-latency hazards — not to move bulk data fast; use
:class:`repro.core.partitioner.FpgaPartitioner` for that.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.constants import CACHE_LINE_BYTES, CYCLES_HASHING
from repro.core.fifo import Fifo
from repro.core.hash_module import HashModule
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.core.tuples import (
    DUMMY_PAYLOAD,
    CacheLine,
    check_payloads_valid,
    lines_needed,
    pack_cache_lines,
)
from repro.core.write_back import AddressedLine, WriteBackModule
from repro.core.write_combiner import WriteCombiner
from repro.errors import ConfigurationError, SimulationError
from repro.platform.qpi import QpiLinkModel


@dataclasses.dataclass
class CircuitStats:
    """Counters collected over one simulated run."""

    cycles: int = 0
    histogram_pass_cycles: int = 0
    partition_pass_cycles: int = 0
    flush_cycles: int = 0
    lines_in: int = 0
    lines_out: int = 0
    tuples_in: int = 0
    dummy_slots_out: int = 0
    input_backpressure_cycles: int = 0
    combiner_stall_cycles: int = 0
    writeback_stall_cycles: int = 0
    forwarding_hits: int = 0

    @property
    def output_padding_fraction(self) -> float:
        """Fraction of *written* output slots wasted on dummy padding.

        ``dummy_slots_out + tuples_in`` is exactly the written slot
        count (``lines_out`` cache lines): tuples enter ``tuples_in``
        once per run — the HIST histogram pass scans the input without
        counting it again — and every written line is either real
        tuples or flush padding.  A run that never wrote a line (a
        histogram-only pass, or an empty input) has no output slots to
        speak of, so the fraction is 0.0 by definition rather than a
        ratio over slots that do not exist.
        """
        if self.lines_out == 0:
            return 0.0
        return self.dummy_slots_out / (self.dummy_slots_out + self.tuples_in)


@dataclasses.dataclass
class CircuitResult:
    """Output of a simulated partitioning run."""

    partitions_keys: List[np.ndarray]
    partitions_payloads: List[np.ndarray]
    base_lines: np.ndarray        # per-partition base address (line units)
    lines_per_partition: np.ndarray
    memory_image: Dict[int, CacheLine]
    stats: CircuitStats


class PartitionerCircuit:
    """Cycle-level simulator of the full partitioner pipeline."""

    READ_LATENCY_CYCLES = 12
    """Modelled QPI read-response latency; only shifts the pipeline
    fill, not the steady-state throughput (the paper's latency constant
    folds this into ``c_fifos`` at the granularity it models)."""

    def __init__(
        self,
        config: PartitionerConfig,
        qpi_bandwidth_gbs: Optional[float] = None,
        fifo_depth: int = 32,
        enable_forwarding: bool = True,
        tracer=None,
    ):
        from repro.obs.tracing import resolve_tracer

        # The first-stage FIFOs must cover the read latency plus the
        # hash pipeline, or the issue logic self-throttles below one
        # line per cycle (the real design sizes them the same way).
        if fifo_depth < self.READ_LATENCY_CYCLES + CYCLES_HASHING + 2:
            raise ConfigurationError(
                f"fifo_depth {fifo_depth} cannot cover the "
                f"{self.READ_LATENCY_CYCLES}-cycle read latency"
            )
        self.config = config
        self.fifo_depth = fifo_depth
        self.enable_forwarding = enable_forwarding
        self.qpi_bandwidth_gbs = qpi_bandwidth_gbs
        self.tracer = resolve_tracer(tracer)
        self._build()

    def _build(self) -> None:
        cfg = self.config
        lanes = cfg.num_lanes
        self.hash_modules = [
            HashModule(cfg.partition_bits, use_hash=cfg.uses_hash)
            for _ in range(lanes)
        ]
        self.lane_fifos = [
            Fifo(self.fifo_depth, name=f"lane{i}.in") for i in range(lanes)
        ]
        self.wc_out_fifos = [
            Fifo(self.fifo_depth, name=f"lane{i}.out") for i in range(lanes)
        ]
        self.combiners = [
            WriteCombiner(
                num_partitions=cfg.num_partitions,
                tuples_per_line=cfg.tuples_per_line,
                input_fifo=self.lane_fifos[i],
                output_fifo=self.wc_out_fifos[i],
                enable_forwarding=self.enable_forwarding,
                name=f"wc{i}",
            )
            for i in range(lanes)
        ]
        self.last_fifo: Fifo = Fifo(self.fifo_depth, name="last-stage")
        self.write_back = WriteBackModule(
            num_partitions=cfg.num_partitions,
            input_fifos=self.wc_out_fifos,
            output_fifo=self.last_fifo,
        )

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def run(
        self,
        keys: np.ndarray,
        payloads: Optional[np.ndarray] = None,
        max_cycles: Optional[int] = None,
        on_cycle=None,
        fast_forward: bool = False,
    ) -> CircuitResult:
        """Partition a relation, simulating every clock cycle.

        Args:
            keys: uint32 key column.
            payloads: uint32 payloads; required in RID mode.  In VRID
                mode payloads must be None — the circuit appends virtual
                record ids itself.
            max_cycles: safety limit (default: generous bound scaled to
                the input) — exceeding it raises, catching livelocks.
            on_cycle: optional probe called as ``on_cycle(circuit,
                cycle)`` at the end of every partition-pass cycle (see
                :class:`repro.core.tracer.CircuitTracer`).
            fast_forward: use the event-driven fast path of
                :mod:`repro.exec.fast_forward` where its closed-form
                schedule applies (no QPI link, forwarding enabled, no
                probe), falling back to the cycle-by-cycle loop
                otherwise.  Results and stats are identical either
                way; only wall-clock time differs.

        Returns:
            A :class:`CircuitResult` with per-partition outputs, the
            written memory image and cycle statistics.
        """
        cfg = self.config
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        if cfg.layout_mode is LayoutMode.VRID:
            if payloads is not None:
                raise SimulationError(
                    "VRID mode generates payloads internally; pass None"
                )
            payloads = np.arange(keys.shape[0], dtype=np.uint32)
        else:
            if payloads is None:
                raise SimulationError("RID mode requires payloads")
            payloads = np.ascontiguousarray(payloads, dtype=np.uint32)
        check_payloads_valid(payloads)

        n = int(keys.shape[0])
        with self.tracer.span(
            "circuit.run",
            tuples=n,
            partitions=cfg.num_partitions,
            mode=cfg.mode_label,
        ) as span:
            result = self._run_traced(
                keys, payloads, max_cycles, on_cycle, fast_forward, n
            )
            s = result.stats
            span.set_attributes(
                cycles=s.cycles,
                histogram_pass_cycles=s.histogram_pass_cycles,
                partition_pass_cycles=s.partition_pass_cycles,
                flush_cycles=s.flush_cycles,
                lines_in=s.lines_in,
                lines_out=s.lines_out,
                dummy_slots_out=s.dummy_slots_out,
                input_backpressure_cycles=s.input_backpressure_cycles,
                combiner_stall_cycles=s.combiner_stall_cycles,
                writeback_stall_cycles=s.writeback_stall_cycles,
                forwarding_hits=s.forwarding_hits,
                output_padding_fraction=s.output_padding_fraction,
            )
            return result

    def _run_traced(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        max_cycles: Optional[int],
        on_cycle,
        fast_forward: bool,
        n: int,
    ) -> CircuitResult:
        """The :meth:`run` simulation body (span-wrapped by caller)."""
        cfg = self.config
        stats = CircuitStats()
        if max_cycles is None:
            max_cycles = 64 * (n + cfg.num_partitions + 10_000)

        link = self._make_link()

        fast = False
        if fast_forward:
            from repro.exec import fast_forward as ff

            fast = ff.supports_fast_forward(self, on_cycle)

        histogram = None
        if cfg.output_mode is OutputMode.HIST:
            if fast:
                histogram = ff.fast_histogram_pass(self, keys, stats)
            else:
                histogram = self._histogram_pass(keys, payloads, link, stats)
            base_lines, capacity_lines = self._hist_layout(histogram)
        else:
            base_lines, capacity_lines = self._pad_layout(n)

        self.write_back.load_base_addresses(base_lines)
        self.write_back.reset_offsets()
        self.write_back.partition_capacity_lines = capacity_lines

        memory_image = None
        if fast:
            memory_image = ff.fast_partition_pass(
                self, keys, payloads, base_lines, capacity_lines, stats,
                max_cycles,
            )
        if memory_image is None:
            memory_image = self._partition_pass(
                keys, payloads, link, stats, max_cycles, on_cycle
            )

        return self._collect(memory_image, base_lines, stats)

    # ------------------------------------------------------------------
    # Layout computation
    # ------------------------------------------------------------------

    def _pad_layout(self, n: int) -> Tuple[np.ndarray, Optional[int]]:
        cfg = self.config
        capacity_tuples = cfg.partition_capacity(max(n, 1))
        capacity_lines = capacity_tuples // cfg.tuples_per_line
        bases = np.arange(cfg.num_partitions, dtype=np.int64) * capacity_lines
        return bases, capacity_lines

    def _hist_layout(
        self, histogram: np.ndarray
    ) -> Tuple[np.ndarray, Optional[int]]:
        """Prefix-sum layout from the per-(lane, partition) histogram.

        Each lane contributes ``ceil(count / tuples_per_line)`` cache
        lines per partition (its stream of full lines plus one flushed
        partial), so the region reserved for a partition is the sum of
        the per-lane line counts — this is what the first pass exists
        to compute.
        """
        per_line = self.config.tuples_per_line
        lane_lines = -(-histogram // per_line)  # ceil, per (lane, partition)
        lines_per_partition = lane_lines.sum(axis=0)
        bases = np.zeros(self.config.num_partitions, dtype=np.int64)
        np.cumsum(lines_per_partition[:-1], out=bases[1:])
        return bases, None

    # ------------------------------------------------------------------
    # Passes
    # ------------------------------------------------------------------

    def _make_link(self) -> Optional[QpiLinkModel]:
        if self.qpi_bandwidth_gbs is None:
            return None
        return QpiLinkModel(self.qpi_bandwidth_gbs)

    def _input_lines(
        self, keys: np.ndarray, payloads: np.ndarray
    ) -> List[CacheLine]:
        """Internal tuple-lines entering the pipeline.

        In RID mode these correspond 1:1 to QPI reads.  In VRID mode
        the QPI reads are *key* lines (16 keys each for 4 B keys) and
        the circuit synthesises two internal tuple-lines per key line
        by appending virtual record ids.
        """
        return list(
            pack_cache_lines(keys, payloads, self.config.tuples_per_line)
        )

    def _qpi_lines_in(self, n_tuples: int) -> int:
        """Cache lines actually read over QPI for this input."""
        cfg = self.config
        if cfg.layout_mode is LayoutMode.VRID:
            keys_per_line = CACHE_LINE_BYTES // 4
            return lines_needed(n_tuples, keys_per_line)
        return lines_needed(n_tuples, cfg.tuples_per_line)

    def _histogram_pass(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        link: Optional[QpiLinkModel],
        stats: CircuitStats,
    ) -> np.ndarray:
        """First pass of HIST mode: count, write nothing back.

        Streams every tuple through the hash modules (so the pass costs
        real cycles, bounded by the QPI read bandwidth) and accumulates
        the per-(lane, partition) histogram in BRAM.
        """
        cfg = self.config
        lanes = cfg.num_lanes
        histogram = np.zeros((lanes, cfg.num_partitions), dtype=np.int64)
        lines = self._input_lines(keys, payloads)
        # In VRID mode only every other internal line costs a QPI read.
        reads_needed = self._qpi_lines_in(keys.shape[0])
        reads_done = 0
        internal_per_read = max(1, len(lines) / max(reads_needed, 1))

        next_line = 0
        cycles = 0
        drained = False
        while not drained:
            cycles += 1
            if link is not None:
                link.tick()
            # Issue up to one line into the hash modules per cycle.
            issued = None
            if next_line < len(lines):
                allowed = True
                if link is not None:
                    # charge a read token per QPI line
                    if reads_done * internal_per_read <= next_line:
                        allowed = link.try_read()
                        if allowed:
                            reads_done += 1
                        else:
                            stats.input_backpressure_cycles += 1
                if allowed:
                    issued = lines[next_line]
                    next_line += 1
            for lane in range(lanes):
                incoming = None
                if issued is not None and issued.payloads[lane] != np.uint32(
                    DUMMY_PAYLOAD
                ):
                    incoming = (int(issued.keys[lane]), int(issued.payloads[lane]))
                out = self.hash_modules[lane].tick(incoming)
                if out is not None:
                    histogram[lane, out.partition] += 1
            if next_line >= len(lines):
                drained = all(m.is_empty() for m in self.hash_modules)
        stats.histogram_pass_cycles = cycles
        stats.cycles += cycles
        return histogram

    def _partition_pass(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        link: Optional[QpiLinkModel],
        stats: CircuitStats,
        max_cycles: int,
        on_cycle=None,
    ) -> Dict[int, CacheLine]:
        cfg = self.config
        lanes = cfg.num_lanes
        lines = self._input_lines(keys, payloads)
        reads_needed = self._qpi_lines_in(keys.shape[0])
        reads_done = 0
        internal_per_read = max(1, len(lines) / max(reads_needed, 1))
        stats.lines_in += reads_needed
        stats.tuples_in += int(keys.shape[0])

        memory_image: Dict[int, CacheLine] = {}
        next_line = 0
        in_flight: List[Tuple[int, CacheLine]] = []  # (deliver_cycle, line)
        cycle = 0
        flushing = False
        flush_started_at = 0

        while True:
            cycle += 1
            if cycle > max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles — livelock?"
                )
            if link is not None:
                link.tick()

            # 1. Drain the last-stage FIFO over QPI (write path).
            if not self.last_fifo.is_empty():
                can_write = link.try_write() if link is not None else True
                if can_write:
                    addressed: AddressedLine = self.last_fifo.pop()
                    memory_image[addressed.address] = addressed.line
                    stats.lines_out += 1

            # 2. Write-back module.
            self.write_back.tick()

            # 3. Write combiners (streaming), or flush once inputs end.
            if not flushing:
                for combiner in self.combiners:
                    combiner.tick()
            else:
                for combiner in self.combiners:
                    combiner.flush_cycle()

            # 4. Hash modules: deliver an input line if one arrived.
            issued: Optional[CacheLine] = None
            if in_flight and in_flight[0][0] <= cycle:
                issued = in_flight.pop(0)[1]
            for lane in range(lanes):
                incoming = None
                if issued is not None and issued.payloads[lane] != np.uint32(
                    DUMMY_PAYLOAD
                ):
                    incoming = (int(issued.keys[lane]), int(issued.payloads[lane]))
                out = self.hash_modules[lane].tick(incoming)
                if out is not None:
                    self.lane_fifos[lane].push(out)

            # 5. Input issue with back-pressure (Section 4.3): request a
            #    line only when every first-stage FIFO has room for all
            #    in-flight tuples plus this request.
            if next_line < len(lines):
                committed = len(in_flight) + 1 + CYCLES_HASHING
                min_free = min(f.free_slots for f in self.lane_fifos)
                if min_free >= committed:
                    allowed = True
                    if link is not None and reads_done * internal_per_read <= next_line:
                        allowed = link.try_read()
                        if allowed:
                            reads_done += 1
                    if allowed:
                        in_flight.append(
                            (cycle + self.READ_LATENCY_CYCLES, lines[next_line])
                        )
                        next_line += 1
                    else:
                        stats.input_backpressure_cycles += 1
                else:
                    stats.input_backpressure_cycles += 1

            # 6. Start the flush once the streaming pipeline is empty.
            if not flushing and next_line >= len(lines) and not in_flight:
                hash_empty = all(m.is_empty() for m in self.hash_modules)
                combiners_drained = all(c.is_drained() for c in self.combiners)
                if hash_empty and combiners_drained:
                    flushing = True
                    flush_started_at = cycle

            if on_cycle is not None:
                on_cycle(self, cycle)

            # 7. Termination: everything flushed and drained.
            if flushing:
                flush_done = all(c.flush_done for c in self.combiners)
                if (
                    flush_done
                    and self.write_back.is_drained()
                    and self.last_fifo.is_empty()
                ):
                    break

        stats.partition_pass_cycles = cycle
        stats.flush_cycles = cycle - flush_started_at
        stats.cycles += cycle
        stats.combiner_stall_cycles = sum(c.stall_cycles for c in self.combiners)
        stats.writeback_stall_cycles = self.write_back.stall_cycles
        stats.dummy_slots_out = sum(c.dummy_slots_out for c in self.combiners)
        stats.forwarding_hits = sum(
            c.forwarding_hits_1d + c.forwarding_hits_2d for c in self.combiners
        )
        return memory_image

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def _collect(
        self,
        memory_image: Dict[int, CacheLine],
        base_lines: np.ndarray,
        stats: CircuitStats,
    ) -> CircuitResult:
        cfg = self.config
        num_partitions = cfg.num_partitions
        lines_per_partition = np.zeros(num_partitions, dtype=np.int64)
        partition_lines: List[List[CacheLine]] = [[] for _ in range(num_partitions)]
        # Region end = next partition's base (or +inf for the last).
        order = np.argsort(base_lines, kind="stable")
        ends = np.empty(num_partitions, dtype=np.int64)
        sorted_bases = base_lines[order]
        for rank, part in enumerate(order):
            if rank + 1 < num_partitions:
                ends[part] = sorted_bases[rank + 1]
            else:
                ends[part] = np.iinfo(np.int64).max
        for address in sorted(memory_image):
            line = memory_image[address]
            part = line.partition
            if not base_lines[part] <= address < ends[part]:
                raise SimulationError(
                    f"line for partition {part} written at address "
                    f"{address}, outside its region "
                    f"[{base_lines[part]}, {ends[part]})"
                )
            partition_lines[part].append(line)
            lines_per_partition[part] += 1

        keys_out: List[np.ndarray] = []
        payloads_out: List[np.ndarray] = []
        for part in range(num_partitions):
            lines = partition_lines[part]
            if lines:
                keys = np.concatenate([l.keys for l in lines])
                pays = np.concatenate([l.payloads for l in lines])
                valid = pays != np.uint32(DUMMY_PAYLOAD)
                keys_out.append(keys[valid])
                payloads_out.append(pays[valid])
            else:
                keys_out.append(np.empty(0, dtype=np.uint32))
                payloads_out.append(np.empty(0, dtype=np.uint32))

        return CircuitResult(
            partitions_keys=keys_out,
            partitions_payloads=payloads_out,
            base_lines=base_lines,
            lines_per_partition=lines_per_partition,
            memory_image=memory_image,
            stats=stats,
        )
