"""The Accelerator Function Unit: the circuit wired to the platform.

Section 2.1 describes the full deployment flow of an accelerator on the
Xeon+FPGA: the software allocates 4 MB pages through the Intel API and
writes the input relation into them; the page physical addresses are
transmitted to the FPGA, which populates its BRAM page table; the AFU
then works on a contiguous virtual address space, translating every
access and moving whole 64 B cache lines over QPI with physical
addresses; finally the CPU reads the results back — and pays the
coherence penalty of Section 2.2, because the snoop filter now marks
those lines FPGA-homed.

:class:`PartitionerAfu` reproduces that flow end to end with real
bytes: serialise the relation into shared memory (CPU side), run the
cycle-level partitioner circuit, translate every output line's virtual
destination through the page table, write it over the QPI end-point,
mark the coherence directory, and hand back a CPU-side reader that
deserialises partitions from memory.

The address-translation *timing* (2 pipelined cycles) is validated
separately on :class:`~repro.platform.pagetable.PageTable`; inside the
circuit run it is part of the modelled read latency, exactly as the
paper folds it into the pipeline fill (Section 2.1: "since it is
pipelined, the throughput remains one address per clock cycle").

Data layout on the wire: the paper's 8 B <4 B key, 4 B payload> tuples,
eight per 64 B line, keys and payloads interleaved; VRID mode reads a
packed key column (sixteen 4 B keys per line) instead.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.constants import CACHE_LINE_BYTES
from repro.core.circuit import CircuitResult, PartitionerCircuit
from repro.core.modes import LayoutMode, PartitionerConfig
from repro.core.tuples import DUMMY_KEY, DUMMY_PAYLOAD
from repro.errors import ConfigurationError
from repro.platform.coherence import Socket
from repro.platform.machine import XeonFpgaPlatform
from repro.platform.memory import MemoryRegion
from repro.workloads.relations import Relation

TUPLES_PER_LINE = 8       # 8 B tuples in a 64 B line
KEYS_PER_LINE = 16        # 4 B keys in a 64 B line (VRID input)


def _tuples_to_bytes(keys: np.ndarray, payloads: np.ndarray) -> np.ndarray:
    """Interleave <key, payload> pairs into a raw byte stream."""
    interleaved = np.empty(2 * keys.shape[0], dtype=np.uint32)
    interleaved[0::2] = keys
    interleaved[1::2] = payloads
    return np.frombuffer(interleaved.tobytes(), dtype=np.uint8)


def _bytes_to_tuples(raw: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    words = np.frombuffer(np.ascontiguousarray(raw).tobytes(), dtype=np.uint32)
    return words[0::2].copy(), words[1::2].copy()


@dataclasses.dataclass
class AfuRunResult:
    """Everything a software consumer needs after an AFU run."""

    circuit: CircuitResult
    output_region: MemoryRegion
    base_lines: np.ndarray
    lines_per_partition: np.ndarray
    region_name: str


class PartitionerAfu:
    """Deploy the partitioner circuit on a platform (8 B tuples).

    Args:
        platform: the Xeon+FPGA platform instance.
        config: partitioner configuration; ``tuple_bytes`` must be 8
            (the wire format implemented here — the paper's comparison
            scheme).
    """

    def __init__(self, platform: XeonFpgaPlatform, config: PartitionerConfig):
        if config.tuple_bytes != 8:
            raise ConfigurationError(
                "the AFU data plane implements the paper's 8 B "
                "<4 B key, 4 B payload> wire format"
            )
        self.platform = platform
        self.config = config

    _input_counter = 0  # class-level: region names unique per process

    # ------------------------------------------------------------------
    # CPU side: stage the input
    # ------------------------------------------------------------------

    def stage_input(
        self,
        relation: Relation | np.ndarray,
        payloads: Optional[np.ndarray] = None,
        region_name: Optional[str] = None,
    ) -> Tuple[MemoryRegion, int]:
        """Write the relation into shared memory, CPU-side.

        In RID mode the region holds interleaved tuples; in VRID mode
        only the packed key column.  Returns (region, num_tuples).
        """
        if isinstance(relation, Relation):
            keys, payloads = relation.keys, relation.payloads
        else:
            keys = np.ascontiguousarray(relation, dtype=np.uint32)
            if payloads is None:
                payloads = np.arange(keys.shape[0], dtype=np.uint32)
        n = int(keys.shape[0])
        if n == 0:
            raise ConfigurationError("cannot stage an empty relation")

        name = region_name or f"afu-input-{PartitionerAfu._input_counter}"
        PartitionerAfu._input_counter += 1

        if self.config.layout_mode is LayoutMode.VRID:
            padded = -(-n // KEYS_PER_LINE) * KEYS_PER_LINE
            column = np.full(padded, DUMMY_KEY, dtype=np.uint32)
            column[:n] = keys
            raw = np.frombuffer(column.tobytes(), dtype=np.uint8)
        else:
            padded = -(-n // TUPLES_PER_LINE) * TUPLES_PER_LINE
            full_keys = np.full(padded, DUMMY_KEY, dtype=np.uint32)
            full_payloads = np.full(padded, DUMMY_PAYLOAD, dtype=np.uint32)
            full_keys[:n] = keys
            full_payloads[:n] = payloads
            raw = _tuples_to_bytes(full_keys, full_payloads)

        region = self.platform.allocate_shared(name, raw.shape[0])
        region.write_bytes(0, raw)
        self.platform.coherence.record_region_write(name, Socket.CPU)
        return region, n

    # ------------------------------------------------------------------
    # FPGA side: run the circuit against the staged bytes
    # ------------------------------------------------------------------

    def run(
        self,
        input_region: MemoryRegion,
        num_tuples: int,
        output_region_name: str = "afu-partitions",
        qpi_bandwidth_gbs: Optional[float] = None,
    ) -> AfuRunResult:
        """Partition the staged relation and write results to memory.

        The input is fetched line by line through the QPI end-point at
        page-table-translated physical addresses; the circuit is then
        simulated cycle by cycle; every output line's destination is
        translated and written back over QPI; the coherence directory
        records the FPGA as the output region's last writer.
        """
        keys, payloads = self._fetch_input(input_region, num_tuples)

        if qpi_bandwidth_gbs is None:
            qpi_bandwidth_gbs = self.platform.fpga_bandwidth_gbs(
                self.config.read_write_ratio()
            )
        circuit = PartitionerCircuit(
            self.config, qpi_bandwidth_gbs=qpi_bandwidth_gbs
        )
        if self.config.layout_mode is LayoutMode.VRID:
            result = circuit.run(keys, None)
        else:
            result = circuit.run(keys, payloads)

        output_lines = max(result.memory_image) + 1 if result.memory_image else 1
        output_region = self.platform.allocate_shared(
            output_region_name, output_lines * CACHE_LINE_BYTES
        )
        for address, line in result.memory_image.items():
            virtual = output_region.virtual_base + address * CACHE_LINE_BYTES
            physical = self.platform.page_table.translate(virtual)
            self.platform.qpi.write_line(
                physical, _tuples_to_bytes(line.keys, line.payloads)
            )
        self.platform.coherence.record_region_write(
            output_region_name, Socket.FPGA
        )
        return AfuRunResult(
            circuit=result,
            output_region=output_region,
            base_lines=result.base_lines,
            lines_per_partition=result.lines_per_partition,
            region_name=output_region_name,
        )

    def _fetch_input(
        self, region: MemoryRegion, num_tuples: int
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Read the staged relation over QPI (translated addresses)."""
        if self.config.layout_mode is LayoutMode.VRID:
            lines = -(-num_tuples // KEYS_PER_LINE)
        else:
            lines = -(-num_tuples // TUPLES_PER_LINE)
        raw = np.empty(lines * CACHE_LINE_BYTES, dtype=np.uint8)
        for i in range(lines):
            virtual = region.virtual_base + i * CACHE_LINE_BYTES
            physical = self.platform.page_table.translate(virtual)
            raw[
                i * CACHE_LINE_BYTES : (i + 1) * CACHE_LINE_BYTES
            ] = self.platform.qpi.read_line(physical)
        if self.config.layout_mode is LayoutMode.VRID:
            keys = np.frombuffer(raw.tobytes(), dtype=np.uint32)[:num_tuples]
            return keys.copy(), None
        keys, payloads = _bytes_to_tuples(raw)
        return keys[:num_tuples].copy(), payloads[:num_tuples].copy()

    # ------------------------------------------------------------------
    # CPU side: read partitions back
    # ------------------------------------------------------------------

    def read_partition(
        self, run: AfuRunResult, partition: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Deserialise one partition from shared memory, CPU-side.

        This is the access pattern that pays the Table 1 penalty on the
        real machine; the coherence directory confirms it
        (``platform.coherence.cpu_read_penalty(run.region_name, ...)``).
        """
        if not 0 <= partition < self.config.num_partitions:
            raise ConfigurationError(
                f"partition {partition} out of range "
                f"[0, {self.config.num_partitions})"
            )
        base = int(run.base_lines[partition])
        lines = int(run.lines_per_partition[partition])
        if lines == 0:
            empty = np.empty(0, dtype=np.uint32)
            return empty, empty.copy()
        raw = run.output_region.read_bytes(
            base * CACHE_LINE_BYTES, lines * CACHE_LINE_BYTES
        )
        keys, payloads = _bytes_to_tuples(raw)
        valid = payloads != np.uint32(DUMMY_PAYLOAD)
        return keys[valid], payloads[valid]

    def read_all_partitions(
        self, run: AfuRunResult
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Every partition's (keys, payloads), CPU-side."""
        return [
            self.read_partition(run, p)
            for p in range(self.config.num_partitions)
        ]
