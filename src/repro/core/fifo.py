"""Cycle-accurate FIFO model.

The circuit of Figure 5 threads data through first-in first-out buffers
between every pipeline stage: hash module -> write combiner (one FIFO
per lane), write combiner -> write-back (output FIFOs), write-back ->
QPI (last-stage FIFO).  Back-pressure is implemented not by stalling
the pipeline but by *issuing only as many read requests as there are
free slots in the first-stage FIFOs* (Section 4.3), so a FIFO overflow
anywhere means the back-pressure logic is broken — the model raises
loudly in that case.

The model is deliberately simple: push/pop are same-cycle operations as
seen by the surrounding stage models; the traversal latency the paper
accounts as ``c_fifos = 4`` is charged by the top-level circuit, not
per FIFO here.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

from repro.errors import ConfigurationError, FifoOverflowError, FifoUnderflowError

T = TypeVar("T")


class Fifo(Generic[T]):
    """Bounded FIFO with occupancy tracking and high-water statistics."""

    def __init__(self, capacity: int, name: str = "fifo"):
        if capacity < 1:
            raise ConfigurationError(
                f"fifo capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.name = name
        self._slots: Deque[T] = deque()
        self.max_occupancy = 0
        self.total_pushed = 0
        self.total_popped = 0

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._slots)

    def is_empty(self) -> bool:
        """True when no element is queued."""
        return not self._slots

    def is_full(self) -> bool:
        """True when at capacity (push would overflow)."""
        return len(self._slots) >= self.capacity

    def push(self, item: T) -> None:
        """Enqueue; raises FifoOverflowError if full (a model bug)."""
        if self.is_full():
            raise FifoOverflowError(
                f"{self.name}: push into full FIFO (capacity {self.capacity}); "
                "back-pressure propagation is broken"
            )
        self._slots.append(item)
        self.total_pushed += 1
        if len(self._slots) > self.max_occupancy:
            self.max_occupancy = len(self._slots)

    def pop(self) -> T:
        """Dequeue; raises FifoUnderflowError if empty (a model bug)."""
        if not self._slots:
            raise FifoUnderflowError(f"{self.name}: pop from empty FIFO")
        self.total_popped += 1
        return self._slots.popleft()

    def peek(self) -> Optional[T]:
        """Front element without consuming it, or None if empty."""
        return self._slots[0] if self._slots else None
