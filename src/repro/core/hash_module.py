"""Cycle-level model of the hash-function module (Section 4.1, Code 3).

One hash module per lane.  The murmur finalizer is a 5-stage pipeline:
every line of Code 3 is an always-active hardware stage, so the module
accepts a tuple every cycle and emits the hashed result 5 cycles later
(radix mode is a single mask stage, modelled with the same 5-deep
pipeline for timing uniformity — the real circuit also pads the radix
path so both configurations retime identically, which is why the paper
can claim hashing is free).

The per-stage transformations reuse the scalar murmur steps so the
pipeline is bit-exact with :func:`repro.core.hashing.murmur3_finalizer`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.constants import CYCLES_HASHING
from repro.core.hashing import MURMUR32_C1, MURMUR32_C2, radix_bits

_U32 = 0xFFFFFFFF


@dataclasses.dataclass
class HashedTuple:
    """A tuple annotated with its N-bit partition index."""

    key: int
    payload: int
    partition: int


@dataclasses.dataclass
class _InFlight:
    key: int            # original key, carried alongside the hash datapath
    payload: int
    work: int           # value being transformed stage by stage


class HashModule:
    """5-stage pipelined hash function for one lane.

    Per cycle: call :meth:`tick` with the incoming tuple (or None for a
    bubble); it returns the tuple that completes the pipeline this
    cycle (or None).
    """

    #: stage transformations of the murmur finalizer (Code 3 lines 6-10)
    _STAGES = (
        lambda h: h ^ (h >> 16),
        lambda h: (h * MURMUR32_C1) & _U32,
        lambda h: h ^ (h >> 13),
        lambda h: (h * MURMUR32_C2) & _U32,
        lambda h: h ^ (h >> 16),
    )

    def __init__(self, partition_bits: int, use_hash: bool = True):
        self.partition_bits = partition_bits
        self.use_hash = use_hash
        self.latency = CYCLES_HASHING
        self._pipe: List[Optional[_InFlight]] = [None] * self.latency
        self.tuples_in = 0
        self.tuples_out = 0

    def tick(self, incoming: Optional[tuple] = None) -> Optional[HashedTuple]:
        """Advance one cycle.

        Args:
            incoming: an optional ``(key, payload)`` pair entering the
                pipeline this cycle.

        Returns:
            The :class:`HashedTuple` leaving the pipeline, or None.
        """
        # Each stage applies its transformation as the value moves up.
        leaving = self._pipe[-1]
        for i in range(self.latency - 1, 0, -1):
            moved = self._pipe[i - 1]
            if moved is not None and self.use_hash:
                moved.work = HashModule._STAGES[i - 1](moved.work)
            self._pipe[i] = moved
        if incoming is not None:
            key, payload = incoming
            self._pipe[0] = _InFlight(key=key, payload=payload, work=key & _U32)
            self.tuples_in += 1
        else:
            self._pipe[0] = None

        if leaving is None:
            return None
        if self.use_hash:
            final = HashModule._STAGES[-1](leaving.work)
        else:
            final = leaving.key & _U32
        self.tuples_out += 1
        return HashedTuple(
            key=leaving.key,
            payload=leaving.payload,
            partition=radix_bits(final, self.partition_bits),
        )

    def is_empty(self) -> bool:
        """True when no tuple is in flight (used during drain/flush)."""
        return all(slot is None for slot in self._pipe)
