"""VRID materialisation (Section 4.5).

In VRID (column-store) mode the partitioner reads only the key column
and tags each key with a 4 B virtual record id — the tuple's position.
"After the partitioning takes place, the real tuple can be materialized
using the VRIDs to associate keys with their payloads."  The paper
notes this gather is an additional cost RID mode does not pay, "no
different than an additional materialization cost that also occurs in
column-store database engines".

This module performs that gather and accounts its cost: per partition,
the payload column is accessed at the (random) VRID positions, which on
the real machine is a random-read pass over the payload column.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.core.modes import LayoutMode
from repro.core.partitioner import PartitionedOutput
from repro.errors import ConfigurationError
from repro.platform.bandwidth import Agent, BandwidthModel


@dataclasses.dataclass
class MaterializedPartitions:
    """Partitions with payloads gathered through their VRIDs."""

    partition_keys: List[np.ndarray]
    partition_payloads: List[np.ndarray]
    bytes_gathered: int

    @property
    def num_partitions(self) -> int:
        return len(self.partition_keys)

    def partition(self, index: int):
        """(keys, payloads) of one partition."""
        return self.partition_keys[index], self.partition_payloads[index]


def materialize_vrid(
    output: PartitionedOutput,
    payload_column: np.ndarray,
    payload_bytes: int = 4,
) -> MaterializedPartitions:
    """Gather the payload column through a VRID partitioning's ids.

    Args:
        output: a VRID-mode :class:`PartitionedOutput` (its payloads
            are virtual record ids).
        payload_column: the column-store payload column, indexed by
            position — same length as the partitioned key column.
        payload_bytes: logical payload width, for traffic accounting.

    Returns:
        :class:`MaterializedPartitions` with real payloads in place of
        the VRIDs, plus the gather's byte volume (the "additional
        materialization cost").
    """
    if output.config.layout_mode is not LayoutMode.VRID:
        raise ConfigurationError(
            "materialize_vrid expects a VRID-mode partitioning; "
            f"got {output.config.mode_label}"
        )
    payload_column = np.asarray(payload_column)
    if payload_column.shape[0] < output.num_tuples:
        raise ConfigurationError(
            f"payload column has {payload_column.shape[0]} rows but the "
            f"partitioning covers {output.num_tuples} tuples"
        )
    partition_payloads = []
    gathered = 0
    for vrids in output.partition_payloads:
        partition_payloads.append(payload_column[vrids])
        gathered += int(vrids.shape[0]) * payload_bytes
    return MaterializedPartitions(
        partition_keys=list(output.partition_keys),
        partition_payloads=partition_payloads,
        bytes_gathered=gathered,
    )


def materialization_seconds(
    num_tuples: int,
    payload_bytes: int = 4,
    bandwidth: Optional[BandwidthModel] = None,
    threads: int = 10,
) -> float:
    """Cost of the gather pass on the CPU (random reads of payloads).

    A lower-bound model: the gather touches ``num_tuples`` payloads at
    random positions, so it runs at the CPU's random-access bandwidth
    (the Figure 2 curve's write-heavy end approximates the socket's
    random-access throughput; a cache line is moved per touch for
    cold payload columns).
    """
    bandwidth = bandwidth or BandwidthModel()
    random_gbs = bandwidth.bandwidth_gbs(Agent.CPU, 0.0)
    # one 64 B line fetched per (cold) gathered payload, amortised by
    # whatever locality the partition's VRIDs retain; we charge the
    # pessimistic full line.
    bytes_moved = num_tuples * 64
    return bytes_moved / (random_gbs * 1e9)
