"""Cycle-level model of the write-combiner module (Section 4.2, Code 4).

One write combiner per lane.  Its job: gather ``tuples_per_line``
tuples of the same partition into a full 64 B cache line before it is
written to memory, cutting the write traffic by up to 16x versus
read-modify-writing one tuple at a time.

The interesting part is how it does this *without ever stalling*:

* The per-partition fill rate (which of the line's slots the next tuple
  of that partition goes into) lives in a BRAM with a 2-cycle read
  latency.  The BRAM is pipelined, so a read can be issued every cycle
  — but the value that comes back is 2 cycles stale.
* If the current tuple belongs to the same partition as one of the two
  tuples immediately ahead of it in the pipeline, the stale read would
  miss their fill-rate updates.  A pair of forwarding registers
  (``hash_1d``/``which_1d`` and ``hash_2d``/``which_2d`` — the
  resolution results of the previous one and two *cycles*) supply the
  in-flight value instead (Code 4 lines 6-9).
* When a partition's slot index wraps (slot ``capacity-1`` written),
  the fill rate resets to 0 and all slots of that partition are read
  out as one combined cache line one cycle later.

``enable_forwarding=False`` exists purely so tests can demonstrate the
hazard: without forwarding, back-to-back tuples of the same partition
overwrite each other's slots and tuples are lost.

At the end of a run :meth:`flush_cycle` drains the partially filled
lines, padding empty slots with dummy keys (the "non-perfect gathering"
overhead the paper discusses).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.core.bram import Bram
from repro.core.fifo import Fifo
from repro.core.hash_module import HashedTuple
from repro.core.tuples import DUMMY_KEY, DUMMY_PAYLOAD, CacheLine
from repro.errors import ConfigurationError


@dataclasses.dataclass
class _Resolved:
    """Resolution-stage result, kept for 2 cycles of forwarding."""

    partition: int
    which_slot: int


class WriteCombiner:
    """Cycle-level write combiner for one lane.

    Call :meth:`tick` once per clock cycle while streaming; then call
    :meth:`flush_cycle` once per cycle until it returns False to drain
    the remaining partial lines.
    """

    FILL_RATE_READ_LATENCY = 2  # "Reading the fill rate ... takes 2 clock cycles"

    def __init__(
        self,
        num_partitions: int,
        tuples_per_line: int,
        input_fifo: Fifo,
        output_fifo: Fifo,
        enable_forwarding: bool = True,
        name: str = "wc",
    ):
        if tuples_per_line < 1:
            raise ConfigurationError(
                f"tuples_per_line must be >= 1, got {tuples_per_line}"
            )
        self.num_partitions = num_partitions
        self.tuples_per_line = tuples_per_line
        self.input_fifo = input_fifo
        self.output_fifo = output_fifo
        self.enable_forwarding = enable_forwarding
        self.name = name

        self._fill_rate = Bram(
            depth=num_partitions,
            latency=self.FILL_RATE_READ_LATENCY,
            fill=0,
            name=f"{name}.fill_rate",
        )
        # Slot storage: tuples_per_line BRAMs, each num_partitions deep.
        # Hazards on these are avoided by construction (write at
        # resolution, combined read one cycle later, read-before-write),
        # so plain arrays suffice; see module docstring.
        self._slot_keys = np.full(
            (tuples_per_line, num_partitions), DUMMY_KEY, dtype=np.uint32
        )
        self._slot_payloads = np.full(
            (tuples_per_line, num_partitions), DUMMY_PAYLOAD, dtype=np.uint32
        )

        # In-flight tuples between fill-rate read issue and resolution.
        self._wait_pipe: List[Optional[HashedTuple]] = [
            None
        ] * self.FILL_RATE_READ_LATENCY

        # Forwarding registers: resolutions of the previous 1/2 cycles.
        self._resolved_1d: Optional[_Resolved] = None
        self._resolved_2d: Optional[_Resolved] = None

        # Combined line scheduled for emission next cycle.
        self._pending_line: Optional[CacheLine] = None

        # Flush cursor.
        self._flush_addr = 0

        # Statistics.
        self.tuples_in = 0
        self.lines_out = 0
        self.dummy_slots_out = 0
        self.forwarding_hits_1d = 0
        self.forwarding_hits_2d = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------
    # Streaming operation
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance one clock cycle of streaming operation.

        If a combined line is ready but the output FIFO is full, the
        whole module freezes for the cycle (clock-enable gating) — this
        is downstream *flow control*, propagated upstream through the
        input FIFO filling up, and is distinct from the internal
        hazard stalls the design eliminates.  ``stall_cycles`` counts
        these so tests can assert the circuit never flow-stalls when the
        drain keeps up.
        """
        # Emit the line combined last cycle (BRAM read completes now).
        if self._pending_line is not None:
            if self.output_fifo.is_full():
                self.stall_cycles += 1
                return
            self.output_fifo.push(self._pending_line)
            self.lines_out += 1
            self._pending_line = None

        self._fill_rate.tick()

        # Resolution stage: the tuple whose fill-rate read completes.
        resolving = self._wait_pipe[-1]
        self._wait_pipe = [None] + self._wait_pipe[:-1]
        resolution: Optional[_Resolved] = None
        if resolving is not None:
            resolution = self._resolve(resolving)

        # Shift forwarding registers (cycle-based, bubbles included).
        self._resolved_2d = self._resolved_1d
        self._resolved_1d = resolution

        # Issue stage: pop the next tuple and issue its fill-rate read.
        if not self.input_fifo.is_empty():
            hashed: HashedTuple = self.input_fifo.pop()
            self._fill_rate.issue_read(hashed.partition)
            self._wait_pipe[0] = hashed
            self.tuples_in += 1

    def _resolve(self, hashed: HashedTuple) -> _Resolved:
        """Code 4: pick the slot, write the tuple, maybe combine."""
        partition = hashed.partition
        if (
            self.enable_forwarding
            and self._resolved_1d is not None
            and self._resolved_1d.partition == partition
        ):
            which = (self._resolved_1d.which_slot + 1) % self.tuples_per_line
            self.forwarding_hits_1d += 1
        elif (
            self.enable_forwarding
            and self._resolved_2d is not None
            and self._resolved_2d.partition == partition
        ):
            which = (self._resolved_2d.which_slot + 1) % self.tuples_per_line
            self.forwarding_hits_2d += 1
        else:
            data = self._fill_rate.read_data()
            which = int(data) if data is not None else 0

        self._slot_keys[which, partition] = hashed.key
        self._slot_payloads[which, partition] = hashed.payload

        if which == self.tuples_per_line - 1:
            self._fill_rate.write(partition, 0)
            # Request the combined read of all slots; the actual BRAM
            # read happens next cycle (read-before-write protects it
            # from the next tuple of this partition).
            self._pending_line = CacheLine(
                keys=self._slot_keys[:, partition].copy(),
                payloads=self._slot_payloads[:, partition].copy(),
                partition=partition,
            )
        else:
            self._fill_rate.write(partition, which + 1)
        return _Resolved(partition=partition, which_slot=which)

    def is_drained(self) -> bool:
        """No tuple in flight and no line awaiting emission."""
        pipeline_empty = all(slot is None for slot in self._wait_pipe)
        return (
            pipeline_empty
            and self._pending_line is None
            and self.input_fifo.is_empty()
        )

    # ------------------------------------------------------------------
    # End-of-run flush (Section 4.2, last paragraph)
    # ------------------------------------------------------------------

    def flush_cycle(self) -> bool:
        """Drain one partition address per cycle; False when done.

        Partially filled partitions are emitted as full cache lines with
        dummy keys in the empty slots.  Respects output-FIFO space (the
        flush, unlike streaming, can exceed the drain rate of the
        write-back module, so it must honour back-pressure).
        """
        if self._flush_addr >= self.num_partitions:
            return False
        if self.output_fifo.is_full():
            return True  # stall the flush, not the clock
        partition = self._flush_addr
        fill = int(self._fill_rate.peek(partition))
        if fill > 0:
            keys = self._slot_keys[:, partition].copy()
            payloads = self._slot_payloads[:, partition].copy()
            keys[fill:] = DUMMY_KEY
            payloads[fill:] = DUMMY_PAYLOAD
            self.output_fifo.push(
                CacheLine(keys=keys, payloads=payloads, partition=partition)
            )
            self.lines_out += 1
            self.dummy_slots_out += self.tuples_per_line - fill
            self._fill_rate.poke(partition, 0)
        self._flush_addr += 1
        return self._flush_addr < self.num_partitions

    @property
    def flush_done(self) -> bool:
        """True once every partition address has been drained."""
        return self._flush_addr >= self.num_partitions

    def reset_flush(self) -> None:
        """Rewind the flush cursor (between HIST passes)."""
        self._flush_addr = 0
