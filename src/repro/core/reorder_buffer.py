"""Reorder buffer for out-of-order QPI read responses.

A subtlety the related work surfaces: Halstead et al.'s multithreaded
join [11] "relies on in-order responses to memory requests ... which is
currently only available in the Convey-MX architecture".  QPI makes no
such promise — read responses can return in any order.  The paper's
partitioner tolerates *partition-order* scrambling trivially (tuples
are independent), but VRID mode does not: the virtual record id is the
tuple's position, so the AFU must know which request a response answers.

Real AFUs solve this with a reorder buffer (ROB) keyed by a request
tag: responses park in the ROB and are released in issue order.  This
module provides that component with the usual hardware contract —
bounded capacity, tag-indexed slots, head-of-line release — plus an
out-of-order link model to test against.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.errors import ConfigurationError, SimulationError


class ReorderBuffer:
    """Tag-indexed reorder buffer with in-order release.

    Usage per request/response:

    * :meth:`allocate` a tag at issue time (None when full — the AFU
      must throttle, exactly like the FIFO back-pressure);
    * :meth:`fill` the tag when its response arrives, in any order;
    * :meth:`release` pops the oldest request's data once present.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ConfigurationError(
                f"ROB capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._data: List[Any] = [None] * capacity
        self._filled: List[bool] = [False] * capacity
        self._allocated: List[bool] = [False] * capacity
        self._order: List[int] = []   # allocation order of live tags
        self.max_occupancy = 0
        self.total_released = 0

    def allocate(self) -> Optional[int]:
        """Reserve a tag for a new request; None when the ROB is full."""
        for tag in range(self.capacity):
            if not self._allocated[tag]:
                self._allocated[tag] = True
                self._filled[tag] = False
                self._order.append(tag)
                self.max_occupancy = max(self.max_occupancy, len(self._order))
                return tag
        return None

    def fill(self, tag: int, data: Any) -> None:
        """A response arrived for ``tag`` (any order)."""
        self._check_tag(tag)
        if not self._allocated[tag]:
            raise SimulationError(f"response for unallocated tag {tag}")
        if self._filled[tag]:
            raise SimulationError(f"duplicate response for tag {tag}")
        self._filled[tag] = True
        self._data[tag] = data

    def release(self) -> Optional[Any]:
        """Data of the oldest request, if its response has arrived."""
        if not self._order:
            return None
        head = self._order[0]
        if not self._filled[head]:
            return None  # head-of-line response still in flight
        self._order.pop(0)
        self._allocated[head] = False
        self._filled[head] = False
        data = self._data[head]
        self._data[head] = None
        self.total_released += 1
        return data

    @property
    def occupancy(self) -> int:
        return len(self._order)

    def is_empty(self) -> bool:
        """True when no request is live."""
        return not self._order

    def is_full(self) -> bool:
        """True when every tag is allocated (issue must stall)."""
        return len(self._order) >= self.capacity

    def _check_tag(self, tag: int) -> None:
        if not 0 <= tag < self.capacity:
            raise SimulationError(
                f"tag {tag} out of range [0, {self.capacity})"
            )


class OutOfOrderLink:
    """A read link that returns responses out of order.

    Requests complete after a random latency in
    ``[min_latency, max_latency]`` cycles, so later requests can
    overtake earlier ones — the stimulus a ROB exists to absorb.
    """

    def __init__(
        self,
        min_latency: int = 4,
        max_latency: int = 24,
        seed: int = 0,
    ):
        if not 1 <= min_latency <= max_latency:
            raise ConfigurationError("need 1 <= min_latency <= max_latency")
        self._rng = np.random.default_rng(seed)
        self.min_latency = min_latency
        self.max_latency = max_latency
        self._in_flight: List[tuple] = []  # (complete_at, tag, data)
        self._now = 0
        self.reorderings_observed = 0
        self._last_issued = -1

    def issue(self, tag: int, data: Any) -> None:
        """Launch a request; it completes after a random latency."""
        latency = int(
            self._rng.integers(self.min_latency, self.max_latency + 1)
        )
        self._in_flight.append((self._now + latency, tag, data))

    def tick(self) -> List[tuple]:
        """Advance one cycle; returns completed ``(tag, data)`` pairs."""
        self._now += 1
        done = [
            (tag, data)
            for at, tag, data in self._in_flight
            if at <= self._now
        ]
        self._in_flight = [
            entry for entry in self._in_flight if entry[0] > self._now
        ]
        return done

    def is_idle(self) -> bool:
        """True when nothing is in flight."""
        return not self._in_flight
