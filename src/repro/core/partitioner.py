"""The FPGA partitioner's public API.

:class:`FpgaPartitioner` computes exactly what the hardware would write
to memory — per-partition tuple sets, region layout, cache-line and
dummy-padding accounting — using vectorised NumPy, so experiments can
run on millions of tuples.  It is bit-equivalent (same partition
contents, same per-partition line counts, same byte traffic) to the
cycle-level :class:`~repro.core.circuit.PartitionerCircuit`, which it
can also drive via :meth:`simulate` for cycle-accurate runs; the
equivalence is enforced by property tests.

All four operating modes of Section 4.5 are supported (HIST/PAD x
RID/VRID), including PAD-mode overflow semantics: on overflow the run
aborts and, per the paper, falls back — to a CPU partitioner, to HIST
mode, or to an exception, as the caller chooses.
"""

from __future__ import annotations

import collections.abc
import dataclasses
from typing import List, Literal, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.core.circuit import CircuitResult, PartitionerCircuit
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.core.tuples import check_payloads_valid
from repro.errors import ConfigurationError, PartitionOverflowError
from repro.platform.machine import XeonFpgaPlatform
from repro.platform.coherence import Socket
from repro.workloads.relations import Relation

OverflowPolicy = Literal["raise", "hist", "cpu"]

#: the coalesced batch kernel packs (request, partition) into uint16
#: so the stable argsort stays an O(n) radix sort
_PACKED_INDEX_LIMIT = 1 << 16


class PartitionSlices(collections.abc.Sequence):
    """Lazy per-partition views over one contiguous sorted column.

    Behaves like the ``List[np.ndarray]`` it replaces (indexing,
    item assignment, iteration, ``len``, ``np.concatenate`` all work),
    but holds only the sorted column and its partition boundaries; each
    view is built on access.  Constructing the eager list costs
    ~2 * fan-out ndarray view allocations per request — at service
    request rates that was a measurable share of the whole partitioning
    call.  Assigned entries are kept in a sparse override map so the
    backing column stays shared.
    """

    __slots__ = ("_column", "_boundaries", "_overrides")

    def __init__(self, column: np.ndarray, boundaries: np.ndarray):
        self._column = column
        self._boundaries = boundaries
        self._overrides: Optional[dict] = None

    def __len__(self) -> int:
        return len(self._boundaries) - 1

    def _normalize(self, index: int) -> int:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return index

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        index = self._normalize(index)
        if self._overrides is not None and index in self._overrides:
            return self._overrides[index]
        return self._column[self._boundaries[index]:self._boundaries[index + 1]]

    def __setitem__(self, index: int, value: np.ndarray) -> None:
        index = self._normalize(index)
        if self._overrides is None:
            self._overrides = {}
        self._overrides[index] = value

    def contiguous(self) -> Optional[np.ndarray]:
        """The backing column while it is still exactly the
        concatenation of every partition slice (no overrides applied),
        else ``None``.  Lets bulk consumers (the gateway's CHUNK frame
        encoder) copy one contiguous array instead of materialising and
        re-concatenating fan-out slice views."""
        if self._overrides:
            return None
        return self._column[self._boundaries[0]:self._boundaries[-1]]


@dataclasses.dataclass
class PartitionedOutput:
    """Result of a partitioning run.

    The per-partition arrays hold real tuples only (dummy padding is
    accounted in the counters, not materialised).  ``base_lines`` and
    ``lines_per_partition`` describe the memory layout the hardware
    produced, in 64 B cache-line units.
    """

    config: PartitionerConfig
    partition_keys: List[np.ndarray]
    partition_payloads: List[np.ndarray]
    counts: np.ndarray
    lines_per_partition: np.ndarray
    base_lines: np.ndarray
    bytes_read: int
    bytes_written: int
    dummy_slots: int
    produced_by: str = "fpga-functional"
    fell_back_to_cpu: bool = False
    #: regions carved out of the PAD grid for sketch-detected heavy
    #: hitters (see :func:`repro.optimize.isolation.partition_isolated`)
    isolated_partitions: int = 0

    @property
    def num_partitions(self) -> int:
        return len(self.partition_keys)

    @property
    def num_tuples(self) -> int:
        return int(self.counts.sum())

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def padding_fraction(self) -> float:
        """Share of written tuple slots that are dummy padding."""
        slots = self.num_tuples + self.dummy_slots
        return self.dummy_slots / slots if slots else 0.0

    @property
    def read_write_ratio(self) -> float:
        """Realised byte ratio r = reads / writes."""
        return self.bytes_read / self.bytes_written if self.bytes_written else 0.0

    def partition(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """(keys, payloads) of one partition."""
        return self.partition_keys[index], self.partition_payloads[index]

    def max_partition_tuples(self) -> int:
        """Tuples in the largest partition (the skew headline)."""
        return int(self.counts.max()) if self.counts.size else 0


class FpgaPartitioner:
    """Functional model of the FPGA partitioner (Sections 4.1-4.5).

    Args:
        config: modes, fan-out, tuple width.
        platform: optional platform; when given, partitioning accounts
            its traffic on the QPI end-point and marks the output
            regions FPGA-written in the coherence directory (which is
            what slows down the hybrid join's build+probe, Section 2.2).
        engine: execution-engine knob.  ``None`` keeps the sequential
            reference path; ``"parallel"`` (or ``"serial"``/
            ``"thread"``/``"process"``, or an
            :class:`~repro.exec.engine.ExecutionEngine` instance to
            share pools) routes the histogram + scatter through the
            morsel-driven engine.  The output is byte-identical either
            way — the engine only changes where the kernels run.
        threads: worker count for a string ``engine`` spec (defaults
            to the machine's CPU count).
        tracer: optional :class:`~repro.obs.tracing.Tracer`.  Each
            kernel invocation records a span (``fpga.partition`` /
            ``fpga.partition_many``) carrying tuple counts and traffic
            accounting; :meth:`simulate` forwards the tracer to the
            circuit, whose span carries the cycle/stall counters.  The
            tracer also reaches an engine built from a string spec, so
            per-morsel spans nest under the kernel span.
        max_bytes_in_flight: cap on the concatenated key+payload bytes
            one :meth:`partition_many` kernel pass may materialise.
            The coalesced batch kernel concatenates the whole group
            before sorting, so its peak memory used to scale with the
            *batch* size rather than the largest request; the cap
            splits oversized batches into several kernel passes (each
            still coalesced, still byte-identical per request).
            ``None`` (default) keeps the old unbounded behaviour.
    """

    def __init__(
        self,
        config: PartitionerConfig | None = None,
        platform: Optional[XeonFpgaPlatform] = None,
        engine=None,
        threads: Optional[int] = None,
        tracer=None,
        max_bytes_in_flight: Optional[int] = None,
    ):
        from repro.exec.engine import ExecutionEngine, resolve_engine
        from repro.obs.tracing import resolve_tracer

        if max_bytes_in_flight is not None and max_bytes_in_flight < 1:
            raise ConfigurationError(
                f"max_bytes_in_flight must be >= 1, got "
                f"{max_bytes_in_flight}"
            )
        self.config = config or PartitionerConfig()
        self.platform = platform
        self.max_bytes_in_flight = max_bytes_in_flight
        self.tracer = resolve_tracer(tracer)
        self.engine = resolve_engine(engine, threads, tracer=tracer)
        # A string spec made resolve_engine build pools just for us; a
        # caller-supplied ExecutionEngine stays the caller's to close.
        self._owns_engine = self.engine is not None and not isinstance(
            engine, ExecutionEngine
        )

    def close(self) -> None:
        """Shut down an engine this partitioner created; idempotent.

        Long-lived callers (e.g. the service layer) construct
        partitioners per configuration; without this, each string
        ``engine=`` spec would leak a worker pool.
        """
        if self._owns_engine and self.engine is not None:
            self.engine.close()
        self.engine = None
        self._owns_engine = False

    def __enter__(self) -> "FpgaPartitioner":
        """Context-manager entry: the partitioner itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close an owned engine."""
        self.close()

    # ------------------------------------------------------------------
    # Functional partitioning
    # ------------------------------------------------------------------

    def partition(
        self,
        relation: Relation | np.ndarray,
        payloads: Optional[np.ndarray] = None,
        on_overflow: OverflowPolicy = "raise",
        region_name: Optional[str] = None,
    ) -> PartitionedOutput:
        """Partition a relation.

        Args:
            relation: a :class:`Relation`, or a uint32 key array (then
                ``payloads`` supplies the payload column in RID mode).
            payloads: payload column when ``relation`` is a bare array.
                Ignored in VRID mode (virtual record ids are generated).
            on_overflow: PAD-mode overflow policy — ``"raise"`` (default,
                :class:`PartitionOverflowError`), ``"hist"`` (retry the
                run in HIST mode, the robust two-pass fallback), or
                ``"cpu"`` (fall back to the software partitioner, as the
                paper describes).
            region_name: label for coherence tracking when a platform is
                attached (defaults to an internal counter).

        Returns:
            A :class:`PartitionedOutput`.
        """
        keys, payloads = self._extract_columns(relation, payloads)
        with self.tracer.span(
            "fpga.partition",
            tuples=int(keys.shape[0]),
            partitions=self.config.num_partitions,
            mode=self.config.mode_label,
        ) as span:
            output = self._partition_traced(
                keys, payloads, on_overflow, region_name
            )
            span.set_attributes(
                bytes_read=output.bytes_read,
                bytes_written=output.bytes_written,
                dummy_slots=output.dummy_slots,
                fell_back_to_cpu=output.fell_back_to_cpu,
            )
            return output

    def _partition_traced(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        on_overflow: OverflowPolicy,
        region_name: Optional[str],
    ) -> PartitionedOutput:
        """The :meth:`partition` kernel body (span-wrapped by caller)."""
        cfg = self.config
        per_line = cfg.tuples_per_line

        if self.engine is not None:
            task = self.engine.begin_partition(
                keys,
                payloads,
                cfg.num_partitions,
                cfg.uses_hash,
                lanes=cfg.num_lanes,
            )
            try:
                counts = task.counts
                # task.lane_counts is (partition, lane), same
                # orientation as _lane_counts.
                lines_per_partition = (
                    -(-task.lane_counts // per_line)
                ).sum(axis=1)
                overflow = self._check_pad_overflow(
                    lines_per_partition, int(keys.shape[0])
                )
                if overflow is not None:
                    return self._handle_overflow(
                        keys, payloads, overflow[0], overflow[1], on_overflow
                    )
                sorted_keys, sorted_payloads = task.scatter()
            finally:
                task.close()
        else:
            # Engine-less reference path, on the compiled primitives:
            # one fused hash+histogram pass (with the per-lane counts
            # the line accounting needs), the overflow check *before*
            # any data moves — mirroring the hardware's HIST pass —
            # then one stable scatter straight into the output columns.
            parts, counts, lane_counts = kernels.hash_histogram(
                keys,
                cfg.num_partitions,
                cfg.uses_hash,
                lanes=cfg.num_lanes,
            )
            lines_per_partition = (-(-lane_counts // per_line)).sum(axis=1)
            overflow = self._check_pad_overflow(
                lines_per_partition, int(keys.shape[0])
            )
            if overflow is not None:
                return self._handle_overflow(
                    keys, payloads, overflow[0], overflow[1], on_overflow
                )
            n = int(keys.shape[0])
            partition_base = np.zeros(cfg.num_partitions, dtype=np.int64)
            np.cumsum(counts[:-1], out=partition_base[1:])
            sorted_keys = np.empty(n, dtype=np.uint32)
            sorted_payloads = np.empty(n, dtype=np.uint32)
            kernels.stable_scatter(
                keys, payloads, parts, partition_base,
                cfg.num_partitions, sorted_keys, sorted_payloads,
            )

        output = self._finalize_output(
            int(keys.shape[0]),
            counts,
            lines_per_partition,
            sorted_keys,
            sorted_payloads,
        )
        self._account_platform(output, region_name)
        return output

    def partition_many(
        self,
        relations: Sequence[Relation | np.ndarray],
        payloads: Optional[Sequence[Optional[np.ndarray]]] = None,
        on_overflow: OverflowPolicy = "raise",
    ) -> List[PartitionedOutput]:
        """Partition a batch of relations in one coalesced kernel pass.

        This is the data plane of the service layer's batching
        scheduler: the key columns are concatenated and partitioned
        together, so the whole batch pays one hash evaluation, one
        histogram and one *small-dtype* stable sort.  The per-request
        partition index is packed with the request index into a uint16
        column, which NumPy sorts with an O(n) radix sort — the same
        trick the morsel engine plays per chunk — instead of one
        comparison sort per request.  On a mixed stream of small
        requests this is 2-3x faster than one-at-a-time dispatch even
        on a single core.

        Every output is **byte-identical** to what
        :meth:`partition` returns for that relation alone (same counts,
        same line accounting, same partition contents in the same
        order) — pinned by ``tests/test_service.py``.

        Args:
            relations: the batch; each entry follows the
                :meth:`partition` contract.
            payloads: optional per-entry payload columns (aligned with
                ``relations``; ``None`` entries mean positional ids).
            on_overflow: PAD-overflow policy applied *per request* —
                an overflowing request falls back individually, the
                rest of the batch is unaffected.

        Returns:
            One :class:`PartitionedOutput` per input relation, in order.
        """
        cfg = self.config
        if payloads is None:
            payloads = [None] * len(relations)
        if len(payloads) != len(relations):
            raise ConfigurationError(
                "payloads must align with relations when given"
            )
        columns = [
            self._extract_columns(rel, pay)
            for rel, pay in zip(relations, payloads)
        ]
        # The packed (request, partition) index must fit uint16 for the
        # radix argsort; larger fan-outs simply batch fewer requests.
        # A max_bytes_in_flight cap additionally closes a group before
        # its concatenated columns would exceed the budget, so peak
        # memory tracks the cap (plus one request) rather than the
        # whole batch.
        max_group = max(1, _PACKED_INDEX_LIMIT // cfg.num_partitions)
        outputs: List[PartitionedOutput] = []
        start = 0
        while start < len(columns):
            stop = min(start + max_group, len(columns))
            if self.max_bytes_in_flight is not None:
                group_bytes = 0
                for i in range(start, stop):
                    request_bytes = 2 * columns[i][0].nbytes
                    if (
                        i > start
                        and group_bytes + request_bytes
                        > self.max_bytes_in_flight
                    ):
                        stop = i
                        break
                    group_bytes += request_bytes
            outputs.extend(
                self._partition_group(columns[start:stop], on_overflow)
            )
            start = stop
        return outputs

    def _partition_group(
        self,
        columns: List[Tuple[np.ndarray, np.ndarray]],
        on_overflow: OverflowPolicy,
    ) -> List[PartitionedOutput]:
        """One coalesced kernel pass over ≤ ``_PACKED_INDEX_LIMIT / P``
        requests (see :meth:`partition_many` for the contract)."""
        cfg = self.config
        num_partitions = cfg.num_partitions
        batch = len(columns)
        if batch == 1:
            keys, pays = columns[0]
            return [self.partition(keys, pays, on_overflow=on_overflow)]
        sizes = np.array([k.shape[0] for k, _ in columns], dtype=np.int64)
        n = int(sizes.sum())
        with self.tracer.span(
            "fpga.partition_many",
            requests=batch,
            tuples=n,
            partitions=num_partitions,
            mode=cfg.mode_label,
        ):
            return self._partition_group_traced(
                columns, on_overflow, sizes, n
            )

    def _partition_group_traced(
        self,
        columns: List[Tuple[np.ndarray, np.ndarray]],
        on_overflow: OverflowPolicy,
        sizes: np.ndarray,
        n: int,
    ) -> List[PartitionedOutput]:
        """The coalesced kernel body (span-wrapped by caller)."""
        cfg = self.config
        num_partitions = cfg.num_partitions
        lanes = cfg.num_lanes
        per_line = cfg.tuples_per_line
        batch = len(columns)
        keys = np.concatenate([k for k, _ in columns])
        pays = np.concatenate([p for _, p in columns])

        # packed = request * P + partition, in uint16 (radix-sortable);
        # the hash runs on the compiled kernel (GIL-free single pass)
        parts = kernels.hash_only(
            keys,
            num_partitions,
            cfg.uses_hash,
            parts_out=np.empty(n, dtype=np.uint16),
        )
        packed = np.repeat(
            (np.arange(batch, dtype=np.uint32) * num_partitions).astype(
                np.uint16
            ),
            sizes,
        )
        packed += parts

        # Lane of a tuple is its index *within its request* mod lanes;
        # globally that is a cyclic pattern phase-shifted per request.
        offsets = np.zeros(batch, dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        base_lane = np.tile(
            np.arange(lanes, dtype=np.uint8), n // lanes + 1
        )[:n]
        shift = np.repeat((offsets % lanes).astype(np.uint8), sizes)
        lane = (base_lane - shift) & np.uint8(lanes - 1)
        lane_packed = packed * np.int32(lanes)
        lane_packed += lane
        lane_matrix = np.bincount(
            lane_packed, minlength=batch * num_partitions * lanes
        ).reshape(batch, num_partitions, lanes)
        counts_matrix = lane_matrix.sum(axis=2)
        lines_matrix = (-(-lane_matrix // per_line)).sum(axis=2)

        # One stable scatter orders the whole batch by (request,
        # partition); each request's slice is then exactly its own
        # stable sort by partition index.  The destination bases come
        # straight from the (request, partition) histogram, so the
        # whole batch lands in one contiguous pair of output columns —
        # the very buffers the per-request PartitionSlices view.
        dest_base = np.zeros(batch * num_partitions, dtype=np.int64)
        np.cumsum(counts_matrix.reshape(-1)[:-1], out=dest_base[1:])
        sorted_keys = np.empty(n, dtype=np.uint32)
        sorted_payloads = np.empty(n, dtype=np.uint32)
        kernels.stable_scatter(
            keys, pays, packed, dest_base, batch * num_partitions,
            sorted_keys, sorted_payloads,
        )
        bounds = np.zeros(batch + 1, dtype=np.int64)
        np.cumsum(sizes, out=bounds[1:])

        outputs: List[PartitionedOutput] = []
        for i in range(batch):
            size_i = int(sizes[i])
            overflow = self._check_pad_overflow(lines_matrix[i], size_i)
            if overflow is not None:
                req_keys, req_pays = columns[i]
                outputs.append(
                    self._handle_overflow(
                        req_keys, req_pays, overflow[0], overflow[1],
                        on_overflow,
                    )
                )
                continue
            output = self._finalize_output(
                size_i,
                counts_matrix[i],
                lines_matrix[i],
                sorted_keys[bounds[i] : bounds[i + 1]],
                sorted_payloads[bounds[i] : bounds[i + 1]],
            )
            self._account_platform(output, None)
            outputs.append(output)
        return outputs

    # ------------------------------------------------------------------
    # Cycle-level simulation
    # ------------------------------------------------------------------

    def simulate(
        self,
        relation: Relation | np.ndarray,
        payloads: Optional[np.ndarray] = None,
        qpi_bandwidth_gbs: Optional[float] = None,
        enable_forwarding: bool = True,
        fast_forward: bool = False,
    ) -> CircuitResult:
        """Run the cycle-level circuit on (small) real data.

        When ``qpi_bandwidth_gbs`` is omitted and a platform is
        attached, the platform's Figure 2 bandwidth at this mode's
        read/write ratio is used; pass a value explicitly to explore
        hypothetical links (e.g. the 25.6 GB/s of Section 4.7).
        ``fast_forward=True`` uses the event-driven fast path of
        :mod:`repro.exec.fast_forward` where applicable — identical
        results and stats, much faster wall clock.
        """
        keys, payloads = self._extract_columns(relation, payloads)
        if qpi_bandwidth_gbs is None and self.platform is not None:
            qpi_bandwidth_gbs = self.platform.fpga_bandwidth_gbs(
                self.config.read_write_ratio()
            )
        circuit = PartitionerCircuit(
            self.config,
            qpi_bandwidth_gbs=qpi_bandwidth_gbs,
            enable_forwarding=enable_forwarding,
            tracer=self.tracer,
        )
        if self.config.layout_mode is LayoutMode.VRID:
            return circuit.run(keys, None, fast_forward=fast_forward)
        return circuit.run(keys, payloads, fast_forward=fast_forward)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _finalize_output(
        self,
        num_tuples: int,
        counts: np.ndarray,
        lines_per_partition: np.ndarray,
        sorted_keys: np.ndarray,
        sorted_payloads: np.ndarray,
    ) -> PartitionedOutput:
        """Build a :class:`PartitionedOutput` from the kernel results.

        Shared tail of :meth:`partition` and :meth:`partition_many`:
        region layout, per-partition slices, traffic and padding
        accounting — everything downstream of counts + sorted data.
        """
        cfg = self.config
        per_line = cfg.tuples_per_line
        if cfg.output_mode is OutputMode.PAD:
            capacity_lines = cfg.partition_capacity(num_tuples) // per_line
            base_lines = (
                np.arange(cfg.num_partitions, dtype=np.int64) * capacity_lines
            )
        else:
            base_lines = np.zeros(cfg.num_partitions, dtype=np.int64)
            np.cumsum(lines_per_partition[:-1], out=base_lines[1:])

        boundaries = np.zeros(cfg.num_partitions + 1, dtype=np.int64)
        np.cumsum(counts, out=boundaries[1:])
        partition_keys = PartitionSlices(sorted_keys, boundaries)
        partition_payloads = PartitionSlices(sorted_payloads, boundaries)

        bytes_read, bytes_written = self._traffic(
            num_tuples, int(lines_per_partition.sum())
        )
        dummy_slots = int(
            lines_per_partition.sum() * per_line - num_tuples
        )
        return PartitionedOutput(
            config=cfg,
            partition_keys=partition_keys,
            partition_payloads=partition_payloads,
            counts=counts,
            lines_per_partition=lines_per_partition,
            base_lines=base_lines,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            dummy_slots=dummy_slots,
        )

    def _extract_columns(
        self,
        relation: Relation | np.ndarray,
        payloads: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        if isinstance(relation, Relation):
            keys = relation.keys
            payloads = relation.payloads
        else:
            keys = np.ascontiguousarray(relation, dtype=np.uint32)
            if self.config.layout_mode is LayoutMode.VRID or payloads is None:
                payloads = np.arange(keys.shape[0], dtype=np.uint32)
            else:
                payloads = np.ascontiguousarray(payloads, dtype=np.uint32)
        if self.config.layout_mode is LayoutMode.VRID:
            # Column-store input: only keys exist; virtual record ids
            # are the positions, appended on the FPGA.
            payloads = np.arange(keys.shape[0], dtype=np.uint32)
        if keys.shape != payloads.shape:
            raise ConfigurationError("keys and payloads must align")
        if keys.size == 0:
            raise ConfigurationError("cannot partition an empty relation")
        check_payloads_valid(payloads)
        return keys, payloads

    def _check_pad_overflow(
        self, lines_per_partition: np.ndarray, n: int
    ) -> Optional[Tuple[int, int]]:
        """PAD-mode capacity check before any data is moved.

        Returns ``(partition, capacity_tuples)`` of the first
        overflowing partition, or None (always None in HIST mode) —
        mirroring the hardware, which aborts on overflow without
        completing the scatter.
        """
        cfg = self.config
        if cfg.output_mode is not OutputMode.PAD:
            return None
        per_line = cfg.tuples_per_line
        capacity_lines = cfg.partition_capacity(n) // per_line
        overflowed = np.nonzero(lines_per_partition > capacity_lines)[0]
        if overflowed.size:
            return int(overflowed[0]), capacity_lines * per_line
        return None

    def _lane_counts(self, parts: np.ndarray) -> np.ndarray:
        """Per-(partition, lane) tuple counts.

        Tuple ``i`` rides lane ``i mod num_lanes`` (its slot in the
        input cache line), and each lane's write combiner emits
        ``ceil(count / tuples_per_line)`` lines per partition — this is
        what makes the functional line/padding accounting exactly match
        the circuit.
        """
        lanes = self.config.num_lanes
        lane = np.arange(parts.shape[0], dtype=np.int64) % lanes
        combined = parts * lanes + lane
        flat = np.bincount(
            combined, minlength=self.config.num_partitions * lanes
        )
        return flat.reshape(self.config.num_partitions, lanes)

    def _traffic(self, n_tuples: int, lines_written: int) -> Tuple[int, int]:
        return self.config.traffic_bytes(n_tuples, lines_written)

    def _handle_overflow(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        partition: int,
        capacity_tuples: int,
        on_overflow: OverflowPolicy,
    ) -> PartitionedOutput:
        if on_overflow == "raise":
            raise PartitionOverflowError(
                partition=partition,
                capacity=capacity_tuples,
                tuples_seen=int(keys.shape[0]),
            )
        if on_overflow == "hist":
            hist_config = dataclasses.replace(
                self.config, output_mode=OutputMode.HIST
            )
            retried = FpgaPartitioner(hist_config, self.platform).partition(
                keys, payloads
            )
            # The aborted PAD attempt still paid (part of) a scan; we
            # charge the full failed pass, the worst case of Section 5.4
            # ("in the worst case, this might happen at the very end").
            retried.bytes_read += self._traffic(int(keys.shape[0]), 0)[0]
            return retried
        if on_overflow == "cpu":
            from repro.cpu.partitioner import CpuPartitioner

            cpu_out = CpuPartitioner.matching(self.config).partition(
                keys, payloads
            )
            cpu_out.fell_back_to_cpu = True
            return cpu_out
        raise ConfigurationError(
            f"unknown overflow policy {on_overflow!r}; "
            "expected 'raise', 'hist' or 'cpu'"
        )

    def _account_platform(
        self, output: PartitionedOutput, region_name: Optional[str]
    ) -> None:
        if self.platform is None:
            return
        name = region_name or f"fpga-partitions-{id(output):x}"
        self.platform.qpi.bytes_read += output.bytes_read
        self.platform.qpi.bytes_written += output.bytes_written
        self.platform.coherence.record_region_write(name, Socket.FPGA)
        output.produced_by = f"fpga-functional@{name}"
