"""The FPGA partitioner's public API.

:class:`FpgaPartitioner` computes exactly what the hardware would write
to memory — per-partition tuple sets, region layout, cache-line and
dummy-padding accounting — using vectorised NumPy, so experiments can
run on millions of tuples.  It is bit-equivalent (same partition
contents, same per-partition line counts, same byte traffic) to the
cycle-level :class:`~repro.core.circuit.PartitionerCircuit`, which it
can also drive via :meth:`simulate` for cycle-accurate runs; the
equivalence is enforced by property tests.

All four operating modes of Section 4.5 are supported (HIST/PAD x
RID/VRID), including PAD-mode overflow semantics: on overflow the run
aborts and, per the paper, falls back — to a CPU partitioner, to HIST
mode, or to an exception, as the caller chooses.
"""

from __future__ import annotations

import dataclasses
from typing import List, Literal, Optional, Tuple

import numpy as np

from repro.constants import CACHE_LINE_BYTES
from repro.core.circuit import CircuitResult, PartitionerCircuit
from repro.core.hashing import partition_of
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.core.tuples import check_payloads_valid
from repro.errors import ConfigurationError, PartitionOverflowError
from repro.platform.machine import XeonFpgaPlatform
from repro.platform.coherence import Socket
from repro.workloads.relations import Relation

OverflowPolicy = Literal["raise", "hist", "cpu"]


@dataclasses.dataclass
class PartitionedOutput:
    """Result of a partitioning run.

    The per-partition arrays hold real tuples only (dummy padding is
    accounted in the counters, not materialised).  ``base_lines`` and
    ``lines_per_partition`` describe the memory layout the hardware
    produced, in 64 B cache-line units.
    """

    config: PartitionerConfig
    partition_keys: List[np.ndarray]
    partition_payloads: List[np.ndarray]
    counts: np.ndarray
    lines_per_partition: np.ndarray
    base_lines: np.ndarray
    bytes_read: int
    bytes_written: int
    dummy_slots: int
    produced_by: str = "fpga-functional"
    fell_back_to_cpu: bool = False

    @property
    def num_partitions(self) -> int:
        return len(self.partition_keys)

    @property
    def num_tuples(self) -> int:
        return int(self.counts.sum())

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def padding_fraction(self) -> float:
        """Share of written tuple slots that are dummy padding."""
        slots = self.num_tuples + self.dummy_slots
        return self.dummy_slots / slots if slots else 0.0

    @property
    def read_write_ratio(self) -> float:
        """Realised byte ratio r = reads / writes."""
        return self.bytes_read / self.bytes_written if self.bytes_written else 0.0

    def partition(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """(keys, payloads) of one partition."""
        return self.partition_keys[index], self.partition_payloads[index]

    def max_partition_tuples(self) -> int:
        """Tuples in the largest partition (the skew headline)."""
        return int(self.counts.max()) if self.counts.size else 0


class FpgaPartitioner:
    """Functional model of the FPGA partitioner (Sections 4.1-4.5).

    Args:
        config: modes, fan-out, tuple width.
        platform: optional platform; when given, partitioning accounts
            its traffic on the QPI end-point and marks the output
            regions FPGA-written in the coherence directory (which is
            what slows down the hybrid join's build+probe, Section 2.2).
        engine: execution-engine knob.  ``None`` keeps the sequential
            reference path; ``"parallel"`` (or ``"serial"``/
            ``"thread"``/``"process"``, or an
            :class:`~repro.exec.engine.ExecutionEngine` instance to
            share pools) routes the histogram + scatter through the
            morsel-driven engine.  The output is byte-identical either
            way — the engine only changes where the kernels run.
        threads: worker count for a string ``engine`` spec (defaults
            to the machine's CPU count).
    """

    def __init__(
        self,
        config: PartitionerConfig | None = None,
        platform: Optional[XeonFpgaPlatform] = None,
        engine=None,
        threads: Optional[int] = None,
    ):
        from repro.exec.engine import resolve_engine

        self.config = config or PartitionerConfig()
        self.platform = platform
        self.engine = resolve_engine(engine, threads)

    # ------------------------------------------------------------------
    # Functional partitioning
    # ------------------------------------------------------------------

    def partition(
        self,
        relation: Relation | np.ndarray,
        payloads: Optional[np.ndarray] = None,
        on_overflow: OverflowPolicy = "raise",
        region_name: Optional[str] = None,
    ) -> PartitionedOutput:
        """Partition a relation.

        Args:
            relation: a :class:`Relation`, or a uint32 key array (then
                ``payloads`` supplies the payload column in RID mode).
            payloads: payload column when ``relation`` is a bare array.
                Ignored in VRID mode (virtual record ids are generated).
            on_overflow: PAD-mode overflow policy — ``"raise"`` (default,
                :class:`PartitionOverflowError`), ``"hist"`` (retry the
                run in HIST mode, the robust two-pass fallback), or
                ``"cpu"`` (fall back to the software partitioner, as the
                paper describes).
            region_name: label for coherence tracking when a platform is
                attached (defaults to an internal counter).

        Returns:
            A :class:`PartitionedOutput`.
        """
        keys, payloads = self._extract_columns(relation, payloads)
        cfg = self.config
        per_line = cfg.tuples_per_line

        if self.engine is not None:
            task = self.engine.begin_partition(
                keys,
                payloads,
                cfg.num_partitions,
                cfg.uses_hash,
                lanes=cfg.num_lanes,
            )
            try:
                counts = task.counts
                # task.lane_counts is (partition, lane), same
                # orientation as _lane_counts.
                lines_per_partition = (
                    -(-task.lane_counts // per_line)
                ).sum(axis=1)
                overflow = self._check_pad_overflow(
                    lines_per_partition, int(keys.shape[0])
                )
                if overflow is not None:
                    return self._handle_overflow(
                        keys, payloads, overflow[0], overflow[1], on_overflow
                    )
                sorted_keys, sorted_payloads = task.scatter()
            finally:
                task.close()
        else:
            parts = np.asarray(
                partition_of(keys, cfg.num_partitions, cfg.uses_hash)
            ).astype(np.int64)
            counts = np.bincount(parts, minlength=cfg.num_partitions)
            lane_counts = self._lane_counts(parts)
            lines_per_partition = (-(-lane_counts // per_line)).sum(axis=1)
            overflow = self._check_pad_overflow(
                lines_per_partition, int(keys.shape[0])
            )
            if overflow is not None:
                return self._handle_overflow(
                    keys, payloads, overflow[0], overflow[1], on_overflow
                )
            order = np.argsort(parts, kind="stable")
            sorted_keys = keys[order]
            sorted_payloads = payloads[order]

        if cfg.output_mode is OutputMode.PAD:
            capacity_lines = cfg.partition_capacity(keys.shape[0]) // per_line
            base_lines = (
                np.arange(cfg.num_partitions, dtype=np.int64) * capacity_lines
            )
        else:
            base_lines = np.zeros(cfg.num_partitions, dtype=np.int64)
            np.cumsum(lines_per_partition[:-1], out=base_lines[1:])

        boundaries = np.zeros(cfg.num_partitions + 1, dtype=np.int64)
        np.cumsum(counts, out=boundaries[1:])
        partition_keys = [
            sorted_keys[boundaries[p] : boundaries[p + 1]]
            for p in range(cfg.num_partitions)
        ]
        partition_payloads = [
            sorted_payloads[boundaries[p] : boundaries[p + 1]]
            for p in range(cfg.num_partitions)
        ]

        bytes_read, bytes_written = self._traffic(
            int(keys.shape[0]), int(lines_per_partition.sum())
        )
        dummy_slots = int(
            lines_per_partition.sum() * per_line - keys.shape[0]
        )

        output = PartitionedOutput(
            config=cfg,
            partition_keys=partition_keys,
            partition_payloads=partition_payloads,
            counts=counts,
            lines_per_partition=lines_per_partition,
            base_lines=base_lines,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            dummy_slots=dummy_slots,
        )
        self._account_platform(output, region_name)
        return output

    # ------------------------------------------------------------------
    # Cycle-level simulation
    # ------------------------------------------------------------------

    def simulate(
        self,
        relation: Relation | np.ndarray,
        payloads: Optional[np.ndarray] = None,
        qpi_bandwidth_gbs: Optional[float] = None,
        enable_forwarding: bool = True,
        fast_forward: bool = False,
    ) -> CircuitResult:
        """Run the cycle-level circuit on (small) real data.

        When ``qpi_bandwidth_gbs`` is omitted and a platform is
        attached, the platform's Figure 2 bandwidth at this mode's
        read/write ratio is used; pass a value explicitly to explore
        hypothetical links (e.g. the 25.6 GB/s of Section 4.7).
        ``fast_forward=True`` uses the event-driven fast path of
        :mod:`repro.exec.fast_forward` where applicable — identical
        results and stats, much faster wall clock.
        """
        keys, payloads = self._extract_columns(relation, payloads)
        if qpi_bandwidth_gbs is None and self.platform is not None:
            qpi_bandwidth_gbs = self.platform.fpga_bandwidth_gbs(
                self.config.read_write_ratio()
            )
        circuit = PartitionerCircuit(
            self.config,
            qpi_bandwidth_gbs=qpi_bandwidth_gbs,
            enable_forwarding=enable_forwarding,
        )
        if self.config.layout_mode is LayoutMode.VRID:
            return circuit.run(keys, None, fast_forward=fast_forward)
        return circuit.run(keys, payloads, fast_forward=fast_forward)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _extract_columns(
        self,
        relation: Relation | np.ndarray,
        payloads: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        if isinstance(relation, Relation):
            keys = relation.keys
            payloads = relation.payloads
        else:
            keys = np.ascontiguousarray(relation, dtype=np.uint32)
            if self.config.layout_mode is LayoutMode.VRID or payloads is None:
                payloads = np.arange(keys.shape[0], dtype=np.uint32)
            else:
                payloads = np.ascontiguousarray(payloads, dtype=np.uint32)
        if self.config.layout_mode is LayoutMode.VRID:
            # Column-store input: only keys exist; virtual record ids
            # are the positions, appended on the FPGA.
            payloads = np.arange(keys.shape[0], dtype=np.uint32)
        if keys.shape != payloads.shape:
            raise ConfigurationError("keys and payloads must align")
        if keys.size == 0:
            raise ConfigurationError("cannot partition an empty relation")
        check_payloads_valid(payloads)
        return keys, payloads

    def _check_pad_overflow(
        self, lines_per_partition: np.ndarray, n: int
    ) -> Optional[Tuple[int, int]]:
        """PAD-mode capacity check before any data is moved.

        Returns ``(partition, capacity_tuples)`` of the first
        overflowing partition, or None (always None in HIST mode) —
        mirroring the hardware, which aborts on overflow without
        completing the scatter.
        """
        cfg = self.config
        if cfg.output_mode is not OutputMode.PAD:
            return None
        per_line = cfg.tuples_per_line
        capacity_lines = cfg.partition_capacity(n) // per_line
        overflowed = np.nonzero(lines_per_partition > capacity_lines)[0]
        if overflowed.size:
            return int(overflowed[0]), capacity_lines * per_line
        return None

    def _lane_counts(self, parts: np.ndarray) -> np.ndarray:
        """Per-(partition, lane) tuple counts.

        Tuple ``i`` rides lane ``i mod num_lanes`` (its slot in the
        input cache line), and each lane's write combiner emits
        ``ceil(count / tuples_per_line)`` lines per partition — this is
        what makes the functional line/padding accounting exactly match
        the circuit.
        """
        lanes = self.config.num_lanes
        lane = np.arange(parts.shape[0], dtype=np.int64) % lanes
        combined = parts * lanes + lane
        flat = np.bincount(
            combined, minlength=self.config.num_partitions * lanes
        )
        return flat.reshape(self.config.num_partitions, lanes)

    def _traffic(self, n_tuples: int, lines_written: int) -> Tuple[int, int]:
        cfg = self.config
        passes = 2 if cfg.output_mode is OutputMode.HIST else 1
        if cfg.layout_mode is LayoutMode.VRID:
            keys_per_line = CACHE_LINE_BYTES // 4
            lines_read = -(-n_tuples // keys_per_line)
        else:
            lines_read = -(-n_tuples // cfg.tuples_per_line)
        bytes_read = passes * lines_read * CACHE_LINE_BYTES
        bytes_written = lines_written * CACHE_LINE_BYTES
        return bytes_read, bytes_written

    def _handle_overflow(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        partition: int,
        capacity_tuples: int,
        on_overflow: OverflowPolicy,
    ) -> PartitionedOutput:
        if on_overflow == "raise":
            raise PartitionOverflowError(
                partition=partition,
                capacity=capacity_tuples,
                tuples_seen=int(keys.shape[0]),
            )
        if on_overflow == "hist":
            hist_config = dataclasses.replace(
                self.config, output_mode=OutputMode.HIST
            )
            retried = FpgaPartitioner(hist_config, self.platform).partition(
                keys, payloads
            )
            # The aborted PAD attempt still paid (part of) a scan; we
            # charge the full failed pass, the worst case of Section 5.4
            # ("in the worst case, this might happen at the very end").
            retried.bytes_read += self._traffic(int(keys.shape[0]), 0)[0]
            return retried
        if on_overflow == "cpu":
            from repro.cpu.partitioner import CpuPartitioner

            cpu_out = CpuPartitioner.matching(self.config).partition(
                keys, payloads
            )
            cpu_out.fell_back_to_cpu = True
            return cpu_out
        raise ConfigurationError(
            f"unknown overflow policy {on_overflow!r}; "
            "expected 'raise', 'hist' or 'cpu'"
        )

    def _account_platform(
        self, output: PartitionedOutput, region_name: Optional[str]
    ) -> None:
        if self.platform is None:
            return
        name = region_name or f"fpga-partitions-{id(output):x}"
        self.platform.qpi.bytes_read += output.bytes_read
        self.platform.qpi.bytes_written += output.bytes_written
        self.platform.coherence.record_region_write(name, Socket.FPGA)
        output.produced_by = f"fpga-functional@{name}"
