"""Cycle-level model of the write-back module (Section 4.3).

The write-back module drains the write combiners' output FIFOs in
round-robin order and computes each cache line's destination address
from two BRAMs:

* a **base BRAM** holding, per partition, either the prefix sum of the
  histogram built in a HIST-mode first pass, or the fixed-size base
  address in PAD mode;
* an **offset BRAM** counting how many cache lines have already been
  written to each partition.

The sum of base and offset gives the line's destination, after which
the offset is incremented.  Back-to-back lines of the same partition
create the same read-latency hazard as the write combiner's fill rate,
handled with the same forwarding registers ("For maintaining the
integrity of the offset BRAM, the forwarding logic described in
Section 4.2 is used").

The drained lines are pushed into the last-stage FIFO toward the QPI
end-point, which applies back-pressure when the link is saturated.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.core.bram import Bram
from repro.core.fifo import Fifo
from repro.core.tuples import CacheLine
from repro.errors import PartitionOverflowError, SimulationError


@dataclasses.dataclass
class AddressedLine:
    """A cache line with its destination, in cache-line units."""

    line: CacheLine
    address: int


@dataclasses.dataclass
class _OffsetResolved:
    partition: int
    offset: int


class WriteBackModule:
    """Round-robin drain + destination addressing, one line per cycle."""

    OFFSET_READ_LATENCY = 2

    def __init__(
        self,
        num_partitions: int,
        input_fifos: Sequence[Fifo],
        output_fifo: Fifo,
        partition_capacity_lines: Optional[int] = None,
        name: str = "wb",
    ):
        self.num_partitions = num_partitions
        self.input_fifos = list(input_fifos)
        self.output_fifo = output_fifo
        self.partition_capacity_lines = partition_capacity_lines
        self.name = name

        self._base = Bram(num_partitions, latency=1, fill=0, name=f"{name}.base")
        self._offset = Bram(
            num_partitions,
            latency=self.OFFSET_READ_LATENCY,
            fill=0,
            name=f"{name}.offset",
        )
        self._rr_index = 0
        self._wait_pipe: List[Optional[CacheLine]] = [
            None
        ] * self.OFFSET_READ_LATENCY
        self._resolved_1d: Optional[_OffsetResolved] = None
        self._resolved_2d: Optional[_OffsetResolved] = None

        self.lines_out = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def load_base_addresses(self, bases: np.ndarray) -> None:
        """Load per-partition base addresses (cache-line units).

        In HIST mode this is the prefix sum over the first-pass
        histogram; in PAD mode the fixed-size bases.
        """
        if bases.shape[0] != self.num_partitions:
            raise SimulationError(
                f"{self.name}: expected {self.num_partitions} base "
                f"addresses, got {bases.shape[0]}"
            )
        for partition, base in enumerate(bases):
            self._base.poke(partition, int(base))

    def reset_offsets(self) -> None:
        """Clear the per-partition line counters (between runs)."""
        for partition in range(self.num_partitions):
            self._offset.poke(partition, 0)
        self._resolved_1d = None
        self._resolved_2d = None

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance one clock cycle.

        Stalls (clock-enable gating) when the last-stage FIFO cannot
        accept the line resolved this cycle — that is the QPI
        back-pressure of Section 4.3.
        """
        resolving = self._wait_pipe[-1]
        if resolving is not None and self.output_fifo.is_full():
            self.stall_cycles += 1
            return

        self._offset.tick()

        resolution: Optional[_OffsetResolved] = None
        self._wait_pipe = [None] + self._wait_pipe[:-1]
        if resolving is not None:
            resolution = self._resolve(resolving)
        self._resolved_2d = self._resolved_1d
        self._resolved_1d = resolution

        # Round-robin pop of the next combined line; work-conserving
        # (skips empty FIFOs so a busy lane is not starved by idle ones).
        line = self._round_robin_pop()
        if line is not None:
            self._offset.issue_read(line.partition)
            self._wait_pipe[0] = line

    def _round_robin_pop(self) -> Optional[CacheLine]:
        n = len(self.input_fifos)
        for step in range(n):
            fifo = self.input_fifos[(self._rr_index + step) % n]
            if not fifo.is_empty():
                self._rr_index = (self._rr_index + step + 1) % n
                return fifo.pop()
        self._rr_index = (self._rr_index + 1) % n
        return None

    def _resolve(self, line: CacheLine) -> _OffsetResolved:
        partition = line.partition
        if self._resolved_1d is not None and self._resolved_1d.partition == partition:
            offset = self._resolved_1d.offset + 1
        elif (
            self._resolved_2d is not None
            and self._resolved_2d.partition == partition
        ):
            offset = self._resolved_2d.offset + 1
        else:
            data = self._offset.read_data()
            offset = int(data) if data is not None else 0

        if (
            self.partition_capacity_lines is not None
            and offset >= self.partition_capacity_lines
        ):
            raise PartitionOverflowError(
                partition=partition,
                capacity=self.partition_capacity_lines,
                tuples_seen=self.lines_out,
            )

        base = int(self._base.peek(partition))
        self.output_fifo.push(AddressedLine(line=line, address=base + offset))
        self.lines_out += 1
        self._offset.write(partition, offset + 1)
        return _OffsetResolved(partition=partition, offset=offset)

    def is_drained(self) -> bool:
        """No line in flight and all input FIFOs empty."""
        pipeline_empty = all(slot is None for slot in self._wait_pipe)
        inputs_empty = all(f.is_empty() for f in self.input_fifos)
        return pipeline_empty and inputs_empty
