"""Cache-line packing of tuples (Section 4).

The circuit works in 64 B cache-line granularity: for 8 B tuples a line
carries 8 <4 B key, 4 B payload> tuples; for wider tuples
correspondingly fewer.  This module provides the packing/unpacking
between columnar NumPy arrays and streams of cache lines, and the
dummy-key convention used when flushing partially filled write-combiner
lines (Section 4.2: empty slots are filled with dummy keys "which later
on won't be regarded by the software application").

A cache line is represented as a pair of small ``uint32`` arrays
(keys, payloads) of length ``tuples_per_line``; slot validity is
signalled by payloads != DUMMY_PAYLOAD.  Keys alone cannot mark
dummies because any 32-bit key value is legal input, so — like the
software that consumes the real circuit's output — we reserve one
payload value.  Input relations use positional payloads, which never
reach 2**32 - 1 for realistic sizes; the partitioner validates this.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigurationError

DUMMY_KEY = 0xDEADBEEF
"""Key written into padding slots of flushed cache lines."""

DUMMY_PAYLOAD = 0xFFFFFFFF
"""Payload value marking an invalid (padding) tuple slot."""


@dataclasses.dataclass
class CacheLine:
    """One 64 B line of tuples in flight through the circuit.

    ``partition`` is carried alongside once assigned (the hardware
    routes the N-bit hash with the data, Figure 5).
    """

    keys: np.ndarray
    payloads: np.ndarray
    partition: int = -1

    def __post_init__(self) -> None:
        if self.keys.shape != self.payloads.shape:
            raise ConfigurationError("cache line keys/payloads shape mismatch")

    @property
    def capacity(self) -> int:
        return int(self.keys.shape[0])

    @property
    def valid_mask(self) -> np.ndarray:
        return self.payloads != np.uint32(DUMMY_PAYLOAD)

    @property
    def num_valid(self) -> int:
        return int(self.valid_mask.sum())

    def is_full(self) -> bool:
        """True when every slot holds a real tuple."""
        return bool(self.valid_mask.all())


def check_payloads_valid(payloads: np.ndarray) -> None:
    """Reject input payloads that collide with the dummy marker."""
    if payloads.size and int(payloads.max()) == DUMMY_PAYLOAD:
        raise ConfigurationError(
            "input payloads must not use the reserved dummy value "
            f"0x{DUMMY_PAYLOAD:08X}"
        )


def pack_cache_lines(
    keys: np.ndarray,
    payloads: np.ndarray,
    tuples_per_line: int,
) -> Iterator[CacheLine]:
    """Stream a relation as cache lines, padding the last line.

    This models the sequential read of the input region: the memory
    controller always transfers whole 64 B lines, so a relation whose
    size is not a multiple of the line capacity arrives with dummy
    slots in its final line.
    """
    check_payloads_valid(payloads)
    n = int(keys.shape[0])
    for start in range(0, n, tuples_per_line):
        stop = min(start + tuples_per_line, n)
        line_keys = np.full(tuples_per_line, DUMMY_KEY, dtype=np.uint32)
        line_payloads = np.full(tuples_per_line, DUMMY_PAYLOAD, dtype=np.uint32)
        line_keys[: stop - start] = keys[start:stop]
        line_payloads[: stop - start] = payloads[start:stop]
        yield CacheLine(keys=line_keys, payloads=line_payloads)


def unpack_cache_lines(
    lines: List[CacheLine],
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate the valid tuples of a line sequence (drops dummies)."""
    if not lines:
        empty = np.empty(0, dtype=np.uint32)
        return empty, empty.copy()
    keys = np.concatenate([line.keys for line in lines])
    payloads = np.concatenate([line.payloads for line in lines])
    valid = payloads != np.uint32(DUMMY_PAYLOAD)
    return keys[valid], payloads[valid]


def lines_needed(num_tuples: int, tuples_per_line: int) -> int:
    """Cache lines required to hold ``num_tuples`` tuples."""
    if num_tuples < 0:
        raise ConfigurationError(f"negative tuple count: {num_tuples}")
    return -(-num_tuples // tuples_per_line)
