"""Cycle-level occupancy tracing — a text waveform for the circuit.

Hardware designers debug pipelines by staring at waveforms; this is
the ASCII equivalent for the simulated partitioner.  A
:class:`CircuitTracer` attaches to :meth:`PartitionerCircuit.run` via
its ``on_cycle`` probe, samples the FIFO occupancies every cycle, and
renders a density timeline:

    lane0.in   ......2358888888888853......
    lane0.out  .....................2......
    last-stage .1111111111111111111111111.

Reading it tells you where the design breathes: the first-stage FIFOs
fill when QPI back-pressure throttles the drain, the combiner output
FIFOs stay near-empty in steady state (lines leave as fast as they
form), and the last-stage FIFO hugs the link's duty cycle.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.errors import ConfigurationError

_DENSITY = ".123456789"


@dataclasses.dataclass
class SignalTrace:
    """One signal's per-cycle samples plus its normalisation."""

    name: str
    samples: List[int]
    full_scale: int

    def density_row(self, width: int) -> str:
        """Downsample (or stretch) to ``width`` density characters.

        Always returns exactly ``width`` characters so multi-signal
        renders stay column-aligned even for short traces (fewer
        samples than columns just repeat samples).  A ``full_scale`` of
        zero — a signal whose capacity is unknown or degenerate —
        normalises against the observed peak instead of saturating
        every non-zero sample to 9.
        """
        if not self.samples or width < 1:
            return ""
        chars = []
        n = len(self.samples)
        scale = self.full_scale if self.full_scale > 0 else self.peak
        for col in range(width):
            lo = col * n // width
            hi = max(lo + 1, (col + 1) * n // width)
            window_peak = max(self.samples[lo:hi])
            level = min(9, round(9 * window_peak / max(1, scale)))
            chars.append(_DENSITY[level] if window_peak else _DENSITY[0])
        return "".join(chars)

    @property
    def peak(self) -> int:
        return max(self.samples) if self.samples else 0


class CircuitTracer:
    """Samples a circuit's FIFO occupancies every simulated cycle.

    Usage::

        tracer = CircuitTracer()
        circuit.run(keys, payloads, on_cycle=tracer)
        print(tracer.render())
    """

    def __init__(self, max_cycles: int = 200_000):
        if max_cycles < 1:
            raise ConfigurationError("max_cycles must be positive")
        self.max_cycles = max_cycles
        self._signals: Dict[str, SignalTrace] = {}
        self.cycles_seen = 0

    def __call__(self, circuit, cycle: int) -> None:
        if self.cycles_seen >= self.max_cycles:
            return
        self.cycles_seen += 1
        for fifo in circuit.lane_fifos + circuit.wc_out_fifos + [
            circuit.last_fifo
        ]:
            trace = self._signals.get(fifo.name)
            if trace is None:
                trace = SignalTrace(
                    name=fifo.name, samples=[], full_scale=fifo.capacity
                )
                self._signals[fifo.name] = trace
            trace.samples.append(len(fifo))

    @property
    def signals(self) -> Dict[str, SignalTrace]:
        return self._signals

    def render(self, width: int = 72, signals: List[str] | None = None) -> str:
        """The waveform: one density row per signal."""
        if not self._signals:
            raise ConfigurationError("no cycles traced yet")
        names = signals or sorted(self._signals)
        missing = [n for n in names if n not in self._signals]
        if missing:
            raise ConfigurationError(f"unknown signals: {missing}")
        label_width = max(len(n) for n in names)
        lines = [
            f"occupancy over {self.cycles_seen} cycles "
            f"(columns ~{max(1, self.cycles_seen // width)} cycles each; "
            f"0-9 = fill level)"
        ]
        for name in names:
            trace = self._signals[name]
            lines.append(
                f"{name.ljust(label_width)} |{trace.density_row(width)}| "
                f"peak {trace.peak}/{trace.full_scale}"
            )
        return "\n".join(lines)
