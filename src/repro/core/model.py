"""Analytical model of the FPGA partitioner (Section 4.6, Table 3).

The model expresses the end-to-end processing rate as the slower of
two terms (Equation 7):

* the **circuit rate** — the pipeline consumes/produces one 64 B cache
  line per clock cycle, so ``B_FPGA = (CL / W) * f_FPGA`` tuples/s
  (Equation 3), divided by the mode factor ``f_mode`` (2 for HIST's two
  passes, 1 for PAD) and diluted by the fill/flush latency ``L_FPGA``
  for small inputs (Equations 2, 4, 5);
* the **memory rate** — the QPI bandwidth at the run's read/write byte
  mix, ``B(r) / (W * (r + 1))`` tuples/s (Equation 6).

On the prototype the memory term always wins (Section 4.6's closing
remark); with the hypothetical 25.6 GB/s link of Section 4.7 the
circuit term takes over and the partitioner reaches 1.6 Gtuples/s.

Section 4.8's validation numbers are reproduced by
:meth:`FpgaCostModel.validation_table`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.constants import (
    CACHE_LINE_BYTES,
    CYCLES_FIFOS,
    CYCLES_HASHING,
    CYCLES_WRITE_COMBINER,
    FIGURE9_MEASURED_MTUPLES,
    FPGA_CLOCK_HZ,
)
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.errors import ConfigurationError
from repro.platform.bandwidth import GB, Agent, BandwidthModel


@dataclasses.dataclass(frozen=True)
class ModelPrediction:
    """Equation 7 decomposed, in tuples/second."""

    tuples_per_second: float
    circuit_rate: float     # first term of Eq. 7 (process-bound rate)
    memory_rate: float      # second term of Eq. 7 (bandwidth-bound rate)
    read_write_ratio: float
    bandwidth_gbs: float

    @property
    def memory_bound(self) -> bool:
        """True when Eq. 7's second term limits the run — the case on
        the Xeon+FPGA prototype."""
        return self.memory_rate <= self.circuit_rate

    @property
    def mtuples_per_second(self) -> float:
        return self.tuples_per_second / 1e6

    def seconds_for(self, num_tuples: int) -> float:
        """Wall time this rate implies for ``num_tuples``.

        Zero tuples take zero seconds by definition — short-circuited
        so a degenerate zero-rate prediction cannot turn ``0 / 0`` into
        a NaN that poisons downstream cost comparisons.
        """
        if num_tuples < 0:
            raise ConfigurationError(
                f"num_tuples must be >= 0, got {num_tuples}"
            )
        if num_tuples == 0:
            return 0.0
        return num_tuples / self.tuples_per_second


#: End-to-end / model ratios observed on the prototype (Figure 9 vs the
#: Section 4.8 predictions).  The model intentionally omits start-up,
#: histogram write-back and the full pipeline flush between HIST passes
#: ("we choose not to further detail the model"); these factors recover
#: the measured numbers from the modelled ones for the default 8 B
#: configuration.
MEASURED_CALIBRATION: Dict[str, float] = {
    "HIST/RID": 299.0 / 294.0,
    "HIST/VRID": 391.0 / 435.0,
    "PAD/RID": 436.0 / 435.0,
    "PAD/VRID": 514.0 / 495.0,
}


class FpgaCostModel:
    """Section 4.6's cost model over a Figure 2 bandwidth model."""

    def __init__(
        self,
        bandwidth: Optional[BandwidthModel] = None,
        clock_hz: float = FPGA_CLOCK_HZ,
    ):
        self.bandwidth = bandwidth or BandwidthModel()
        self.clock_hz = clock_hz
        self.clock_period_s = 1.0 / clock_hz

    # -- Equation 3 -------------------------------------------------------

    def circuit_tuple_rate(self, config: PartitionerConfig) -> float:
        """``B_FPGA = (CL / W) * f_FPGA`` — one line per cycle."""
        return (CACHE_LINE_BYTES / config.tuple_bytes) * self.clock_hz

    # -- Equation 4 -------------------------------------------------------

    def latency_seconds(self) -> float:
        """``L_FPGA = (c_hashing + c_writecomb + c_fifos) * T_FPGA``."""
        cycles = CYCLES_HASHING + CYCLES_WRITE_COMBINER + CYCLES_FIFOS
        return cycles * self.clock_period_s

    # -- Equation 5 -------------------------------------------------------

    def process_rate(self, config: PartitionerConfig, num_tuples: int) -> float:
        """Circuit-side rate including mode factor and latency dilution."""
        if num_tuples < 1:
            raise ConfigurationError(
                f"num_tuples must be >= 1, got {num_tuples}"
            )
        b_fpga = self.circuit_tuple_rate(config)
        l_fpga = self.latency_seconds()
        return 1.0 / (config.mode_factor * (1.0 / b_fpga + l_fpga / num_tuples))

    # -- Equation 6 -------------------------------------------------------

    def memory_rate(
        self, config: PartitionerConfig, interfered: bool = False
    ) -> float:
        """``P_mem = B(r) / (W * (r + 1))``."""
        r = config.read_write_ratio()
        b_r = (
            self.bandwidth.bandwidth_for_ratio(Agent.FPGA, r, interfered) * GB
        )
        return b_r / (config.tuple_bytes * (r + 1.0))

    # -- Equation 7 -------------------------------------------------------

    def predict(
        self,
        config: PartitionerConfig,
        num_tuples: int = 128 * 10**6,
        interfered: bool = False,
    ) -> ModelPrediction:
        """Total processing rate: ``min(P_FPGA, P_mem)``."""
        circuit = self.process_rate(config, num_tuples)
        memory = self.memory_rate(config, interfered)
        r = config.read_write_ratio()
        return ModelPrediction(
            tuples_per_second=min(circuit, memory),
            circuit_rate=circuit,
            memory_rate=memory,
            read_write_ratio=r,
            bandwidth_gbs=self.bandwidth.bandwidth_for_ratio(
                Agent.FPGA, r, interfered
            ),
        )

    def partitioning_seconds(
        self,
        num_tuples: int,
        config: PartitionerConfig,
        interfered: bool = False,
        calibrated: bool = False,
    ) -> float:
        """Wall time to partition ``num_tuples`` tuples.

        With ``calibrated=True``, the prototype-measured correction of
        :data:`MEASURED_CALIBRATION` is applied (8 B tuples only),
        yielding the Figure 9 end-to-end numbers instead of the pure
        Section 4.8 model.
        """
        if num_tuples < 0:
            raise ConfigurationError(
                f"num_tuples must be >= 0, got {num_tuples}"
            )
        if num_tuples == 0:
            return 0.0
        rate = self.predict(config, num_tuples, interfered).tuples_per_second
        if calibrated:
            rate *= MEASURED_CALIBRATION.get(config.mode_label, 1.0)
        return num_tuples / rate

    def end_to_end_mtuples(
        self,
        config: PartitionerConfig,
        num_tuples: int = 128 * 10**6,
        calibrated: bool = False,
    ) -> float:
        """Throughput in Mtuples/s, optionally prototype-calibrated."""
        seconds = self.partitioning_seconds(
            num_tuples, config, calibrated=calibrated
        )
        return num_tuples / seconds / 1e6

    # -- Section 4.8 -------------------------------------------------------

    def validation_table(
        self, num_tuples: int = 128 * 10**6
    ) -> Dict[str, Dict[str, float]]:
        """Model vs prototype measurement for all four 8 B modes.

        Reproduces the Section 4.8 arithmetic: HIST/RID at r=2 gives
        ~294 Mtuples/s, HIST/VRID and PAD/RID at r=1 give ~435,
        PAD/VRID at r=0.5 gives ~495 — each within ~10% of the Figure 9
        measurement.
        """
        table: Dict[str, Dict[str, float]] = {}
        for output_mode in (OutputMode.HIST, OutputMode.PAD):
            for layout_mode in (LayoutMode.RID, LayoutMode.VRID):
                config = PartitionerConfig(
                    output_mode=output_mode, layout_mode=layout_mode
                )
                prediction = self.predict(config, num_tuples)
                label = config.mode_label
                measured = FIGURE9_MEASURED_MTUPLES[label]
                model = prediction.mtuples_per_second
                table[label] = {
                    "r": prediction.read_write_ratio,
                    "bandwidth_gbs": prediction.bandwidth_gbs,
                    "model_mtuples": model,
                    "measured_mtuples": measured,
                    "relative_error": abs(model - measured) / measured,
                }
        return table
