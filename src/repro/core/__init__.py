"""The paper's primary contribution: the FPGA partitioner.

This package contains both layers of the reproduction:

* a **functional** partitioner (:class:`repro.core.partitioner.FpgaPartitioner`)
  that computes exactly the partitions the circuit would produce, fast,
  with NumPy; and
* a **cycle-level** simulation of the VHDL design described in
  Section 4 (:mod:`repro.core.circuit` and the per-module models it is
  assembled from), used to verify the paper's architectural claims —
  fully pipelined, no internal stalls, one cache line per clock cycle.

The analytical throughput model of Section 4.6 lives in
:mod:`repro.core.model` and the Table 2 resource model in
:mod:`repro.core.resources`.
"""

from repro.core.modes import (
    HashKind,
    LayoutMode,
    OutputMode,
    PartitionerConfig,
)
from repro.core.partitioner import FpgaPartitioner, PartitionedOutput
from repro.core.hashing import murmur3_finalizer, radix_bits, partition_of
from repro.core.model import FpgaCostModel, ModelPrediction
from repro.core.resources import ResourceUsage, estimate_resources

__all__ = [
    "HashKind",
    "LayoutMode",
    "OutputMode",
    "PartitionerConfig",
    "FpgaPartitioner",
    "PartitionedOutput",
    "murmur3_finalizer",
    "radix_bits",
    "partition_of",
    "FpgaCostModel",
    "ModelPrediction",
    "ResourceUsage",
    "estimate_resources",
]
