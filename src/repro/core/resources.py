"""FPGA resource-usage model (Table 2, Section 4.4).

Table 2 reports how the synthesised circuit's resource consumption
changes with the tuple width:

==========  ===========  ======  ===========
Tuple width  Logic units  BRAM    DSP blocks
==========  ===========  ======  ===========
8 B          37%          76%     14%
16 B         28%          42%     21%
32 B         27%          24%     11%
64 B         27%          15%      6%
==========  ===========  ======  ===========

The model derives these from the circuit's structure rather than
fitting arbitrary curves:

* **BRAM** is dominated by the write combiners' slot storage:
  ``lanes x slots_per_line x partitions x tuple_bytes`` bytes, which is
  ``(64/W)^2 * P * W`` — quartering with every width doubling — plus a
  fixed overhead (QPI end-point cache, page table, FIFOs).
* **Logic** is a fixed base (QPI end-point, page table, write-back)
  plus write-combiner mux/comparator logic that grows with the square
  of the lane count (each of ``lanes`` combiners routes into
  ``slots_per_line`` BRAMs).
* **DSP blocks** serve the hash multipliers (two per key per lane;
  64-bit keys need ~4x the DSPs of 32-bit keys, which is why 16 B
  tuples *increase* DSP usage — the paper calls this out) plus one
  address-arithmetic unit per combiner.

The constants below were fitted once against Table 2; tests pin the
model to the published numbers within a few percentage points.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.core.modes import HashKind, PartitionerConfig
from repro.errors import ConfigurationError

TOTAL_BRAM_BYTES = 6_250_000
"""Usable BRAM on the Altera Stratix V 5SGXEA (~50 Mbit)."""

TOTAL_DSP_UNITS = 256
"""DSP budget used for the percentage fit."""

_BRAM_OVERHEAD_FRACTION = 0.07   # end-point cache, page table, FIFOs
_LOGIC_BASE_PERCENT = 25.0       # QPI end-point + page table + write-back
_LOGIC_FLOOR_PERCENT = 27.0      # small-design floor (infrastructure)
_LOGIC_PER_LANE_SQ = 0.1875      # combiner routing, % per lane^2
_DSP_FIT_SCALE = 1.5             # percentage-points per fitted unit
_DSP_PER_MULT_32BIT = 1
_DSP_PER_MULT_64BIT = 4
_MULTS_PER_HASH = 2              # two multiply stages in the finalizer

#: Table 2 verbatim, for tests and reports.
TABLE2_PUBLISHED: Dict[int, Dict[str, float]] = {
    8: {"logic": 37.0, "bram": 76.0, "dsp": 14.0},
    16: {"logic": 28.0, "bram": 42.0, "dsp": 21.0},
    32: {"logic": 27.0, "bram": 24.0, "dsp": 11.0},
    64: {"logic": 27.0, "bram": 15.0, "dsp": 6.0},
}


@dataclasses.dataclass(frozen=True)
class ResourceUsage:
    """Estimated utilisation of the Stratix V, in percent."""

    tuple_bytes: int
    logic_percent: float
    bram_percent: float
    dsp_percent: float

    def as_dict(self) -> Dict[str, float]:
        """The three percentages keyed like Table 2's columns."""
        return {
            "logic": self.logic_percent,
            "bram": self.bram_percent,
            "dsp": self.dsp_percent,
        }


def estimate_resources(config: PartitionerConfig) -> ResourceUsage:
    """Structural resource estimate for a partitioner configuration."""
    lanes = config.num_lanes
    slots = config.tuples_per_line

    # BRAM: combiner slot storage + fill rates + fixed overhead.
    slot_bytes = lanes * slots * config.num_partitions * config.tuple_bytes
    fill_rate_bytes = lanes * config.num_partitions  # ~1 B per counter
    bram_fraction = (
        (slot_bytes + fill_rate_bytes) / TOTAL_BRAM_BYTES
        + _BRAM_OVERHEAD_FRACTION
    )
    bram_percent = min(100.0, 100.0 * bram_fraction)

    # Logic: base infrastructure + combiner routing (quadratic in lanes).
    logic_percent = max(
        _LOGIC_FLOOR_PERCENT,
        _LOGIC_BASE_PERCENT + _LOGIC_PER_LANE_SQ * lanes * lanes,
    )
    logic_percent = min(100.0, logic_percent)

    # DSP: hash multipliers + one address unit per combiner.
    key_bytes = 4 if config.tuple_bytes == 8 else 8
    dsp_per_mult = (
        _DSP_PER_MULT_32BIT if key_bytes == 4 else _DSP_PER_MULT_64BIT
    )
    if config.hash_kind is HashKind.MURMUR:
        hash_units = lanes * _MULTS_PER_HASH * dsp_per_mult
    else:
        hash_units = 0  # radix is a pure bit-select
    combiner_units = lanes
    dsp_percent = min(
        100.0,
        _DSP_FIT_SCALE * (hash_units + combiner_units) * 100.0 / TOTAL_DSP_UNITS,
    )

    return ResourceUsage(
        tuple_bytes=config.tuple_bytes,
        logic_percent=logic_percent,
        bram_percent=bram_percent,
        dsp_percent=dsp_percent,
    )


def max_partitions(tuple_bytes: int = 8, hash_kind=HashKind.MURMUR) -> int:
    """Largest power-of-two fan-out that fits the FPGA's resources.

    The write combiners' slot BRAM grows linearly with the fan-out, so
    the chip caps it.  For the paper's 8 B configuration the cap lands
    at exactly the 8192 partitions the evaluation uses — the design is
    sized to the chip; wider tuples leave room for larger fan-outs.
    """
    best = 0
    partitions = 2
    while True:
        config = PartitionerConfig(
            num_partitions=partitions,
            tuple_bytes=tuple_bytes,
            hash_kind=hash_kind,
        )
        usage = estimate_resources(config)
        if (
            usage.bram_percent >= 100.0
            or usage.logic_percent >= 100.0
            or usage.dsp_percent >= 100.0
        ):
            return best
        best = partitions
        partitions *= 2
        if partitions > 1 << 24:  # defensive bound
            return best


def table2_estimates(num_partitions: int = 8192) -> Dict[int, ResourceUsage]:
    """Model estimates for the four published configurations."""
    if num_partitions < 2:
        raise ConfigurationError("num_partitions must be >= 2")
    out = {}
    for width in sorted(TABLE2_PUBLISHED):
        config = PartitionerConfig(
            num_partitions=num_partitions, tuple_bytes=width
        )
        out[width] = estimate_resources(config)
    return out
