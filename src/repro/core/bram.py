"""Block-RAM (BRAM) model with read latency and forwarding hazards.

The write combiner's central data-hazard (Section 4.2, Code 4) exists
because FPGA BRAMs answer reads with latency: the fill-rate BRAM takes
2 cycles, the tuple BRAMs 1 cycle.  Reads can be *issued* every cycle
(the BRAM is itself pipelined), but the value that comes back reflects
the memory state at issue time — so a read issued in the same cycle as
(or one cycle after) a write to the same address returns the stale
value, and the surrounding logic must forward the in-flight value
instead.

This module models exactly that: :class:`Bram` services one read issue
and one write per cycle, delivering read data ``latency`` cycles later,
with *read-before-write* semantics in the colliding cycle.  It does not
itself forward — forwarding is the write combiner's job (Code 4 lines
6-9) and is implemented there, so tests can disable it and watch the
hazard corrupt data, demonstrating why the forwarding registers exist.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError


class Bram:
    """A word-addressed BRAM with fixed read latency.

    Usage per simulated cycle::

        bram.tick()              # advance the read pipeline
        data = bram.read_data()  # result of the read issued `latency` ago
        bram.issue_read(addr)    # schedule a read
        bram.write(addr, value)  # same-cycle write (read-before-write)
    """

    def __init__(
        self,
        depth: int,
        latency: int = 1,
        fill: Any = 0,
        name: str = "bram",
    ):
        if depth < 1:
            raise ConfigurationError(f"BRAM depth must be >= 1, got {depth}")
        if latency < 1:
            raise ConfigurationError(
                f"BRAM read latency must be >= 1 cycle, got {latency}"
            )
        self.depth = depth
        self.latency = latency
        self.name = name
        self._cells: List[Any] = [fill] * depth
        # Pipeline of (valid, data) pairs; index 0 pops out next tick.
        self._read_pipe: List[Tuple[bool, Any]] = [(False, None)] * latency
        self._delivered: Tuple[bool, Any] = (False, None)
        self._wrote_this_cycle = False
        self._read_issued_this_cycle = False

    def tick(self) -> None:
        """Advance one clock cycle: deliver the oldest in-flight read."""
        self._delivered = self._read_pipe[0]
        self._read_pipe = self._read_pipe[1:] + [(False, None)]
        self._wrote_this_cycle = False
        self._read_issued_this_cycle = False

    def issue_read(self, addr: int) -> None:
        """Issue a read; its data arrives after ``latency`` ticks.

        The data captured is the cell content *at issue time* (i.e.
        before any same-cycle write lands — read-before-write), which is
        what creates the hazard the write combiner must forward around.
        """
        self._check_addr(addr)
        if self._read_issued_this_cycle:
            raise SimulationError(
                f"{self.name}: second read issued in one cycle "
                "(single read port)"
            )
        self._read_issued_this_cycle = True
        self._read_pipe[-1] = (True, self._cells[addr])

    def read_data(self) -> Optional[Any]:
        """Data of the read issued ``latency`` cycles ago, else None."""
        valid, data = self._delivered
        return data if valid else None

    def read_data_valid(self) -> bool:
        """True when a read completed this cycle."""
        return self._delivered[0]

    def write(self, addr: int, value: Any) -> None:
        """Write a cell this cycle (one write port)."""
        self._check_addr(addr)
        if self._wrote_this_cycle:
            raise SimulationError(
                f"{self.name}: second write issued in one cycle "
                "(single write port)"
            )
        self._wrote_this_cycle = True
        self._cells[addr] = value

    def peek(self, addr: int) -> Any:
        """Zero-time inspection for tests and flush logic."""
        self._check_addr(addr)
        return self._cells[addr]

    def poke(self, addr: int, value: Any) -> None:
        """Zero-time backdoor write (initialisation only)."""
        self._check_addr(addr)
        self._cells[addr] = value

    def dump(self) -> Dict[int, Any]:
        """Non-default cells, for debugging."""
        return {i: v for i, v in enumerate(self._cells) if v}

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.depth:
            raise SimulationError(
                f"{self.name}: address {addr} out of range [0, {self.depth})"
            )
