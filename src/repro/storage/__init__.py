"""Out-of-core storage engine: stored relations + spill partitioning.

Two layers:

* :mod:`repro.storage.store` — :class:`RelationStore`, a chunked,
  memory-mapped columnar relation on disk with an atomically-updated
  JSON manifest (per-chunk CRC-32, ingest-time cardinality/skew
  sketch).
* :mod:`repro.storage.spill` — :class:`SpillPartitioner`, which
  streams a stored relation chunk by chunk through an in-memory
  backend under a bounded memory budget, spills per-partition runs to
  disk, merges them into final partition files **byte-identical** to
  the in-memory result, and can :meth:`~SpillPartitioner.resume` a
  killed run from its last checkpoint.  :class:`PartitionSpill` is the
  lazy handle over the finished partition files.

See ``docs/STORAGE.md`` for the on-disk formats and the recovery
protocol.
"""

from repro.storage.spill import (
    PartitionSpill,
    SpillPartitioner,
    config_from_dict,
    config_to_dict,
)
from repro.storage.store import (
    ChunkMeta,
    RelationStore,
    StorageError,
    write_json_atomic,
)

__all__ = [
    "ChunkMeta",
    "PartitionSpill",
    "RelationStore",
    "SpillPartitioner",
    "StorageError",
    "config_from_dict",
    "config_to_dict",
    "write_json_atomic",
]
