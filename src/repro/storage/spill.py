"""Spill-to-disk partitioning: stream chunks, spill runs, merge, resume.

:class:`SpillPartitioner` partitions a stored relation far larger than
memory by streaming it chunk by chunk through one of the existing
in-memory backends (:class:`~repro.core.partitioner.FpgaPartitioner`
or :class:`~repro.cpu.partitioner.CpuPartitioner`, optionally on the
morsel engine) and appending each chunk's per-partition output to
per-partition **run files** on disk.  Because a stable partition sort
keeps tuples of one partition in input order, appending chunk outputs
in chunk order reproduces the in-memory result *byte for byte* — the
run files, once merged into the final contiguous partition files, hold
exactly what one giant in-memory ``partition()`` call would have
produced (pinned by ``tests/test_storage.py``).

Memory is bounded by ``max_bytes_in_memory``: chunk outputs buffer in
RAM and are flushed to the run files whenever the buffered bytes reach
the budget, so peak usage is ~one chunk plus the budget, independent
of relation size.

**Crash recovery.**  Every flush is a checkpoint: run-file appends are
fsynced, then the accumulated per-(partition, lane) histogram is
written to a fresh side file, then the run manifest is atomically
replaced to name both.  A killed run therefore leaves (a) a manifest
describing the last completed checkpoint and (b) possibly some bytes
appended past it; :meth:`SpillPartitioner.resume` truncates the run
files back to the committed offsets and redoes only the chunks after
``next_chunk``.  Fault injection reuses
:class:`~repro.service.degradation.FaultInjector` — a checkpointed
``check()`` before each chunk and before each commit lets tests kill a
run at any point, including *between* the data append and the manifest
commit (the torn-write case).

The accounting (counts, cache-line layout, byte traffic, padding) is
computed from the lane-exact global histogram, so a spilled
:class:`PartitionSpill` reports the same numbers as the in-memory
partitioner — including PAD-mode overflow, which is detected at merge
time against the *global* histogram and handled per the usual policy
(``"raise"`` or ``"hist"``; ``"cpu"`` is meaningless here since the
spill path already runs in software).
"""

from __future__ import annotations

import collections.abc
import dataclasses
import json
import os
import pathlib
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.core.modes import (
    HashKind,
    LayoutMode,
    OutputMode,
    PartitionerConfig,
)
from repro.core.partitioner import PartitionedOutput
from repro.errors import ConfigurationError, PartitionOverflowError
from repro.obs.tracing import resolve_tracer
from repro.storage.store import (
    RelationStore,
    StorageError,
    write_json_atomic,
)

__all__ = [
    "PartitionSpill",
    "SpillPartitioner",
    "config_from_dict",
    "config_to_dict",
]

SPILL_MANIFEST_NAME = "SPILL_MANIFEST.json"
SPILL_MANIFEST_VERSION = 1

#: default in-memory buffering budget for chunk outputs (64 MiB)
DEFAULT_MAX_BYTES_IN_MEMORY = 64 << 20

_RUNS_DIR = "runs"
_PARTITIONS_DIR = "partitions"


def config_to_dict(config: PartitionerConfig) -> dict:
    """JSON-native form of a :class:`PartitionerConfig` (manifests)."""
    return {
        "num_partitions": config.num_partitions,
        "tuple_bytes": config.tuple_bytes,
        "output_mode": config.output_mode.value,
        "layout_mode": config.layout_mode.value,
        "hash_kind": config.hash_kind.value,
        "pad_tuples": config.pad_tuples,
    }


def config_from_dict(data: dict) -> PartitionerConfig:
    """Rebuild a :class:`PartitionerConfig` from its manifest form."""
    return PartitionerConfig(
        num_partitions=int(data["num_partitions"]),
        tuple_bytes=int(data["tuple_bytes"]),
        output_mode=OutputMode(data["output_mode"]),
        layout_mode=LayoutMode(data["layout_mode"]),
        hash_kind=HashKind(data["hash_kind"]),
        pad_tuples=(
            None if data["pad_tuples"] is None else int(data["pad_tuples"])
        ),
    )


class _SpillColumn(collections.abc.Sequence):
    """Lazy per-partition memmap views over final partition files.

    The disk twin of :class:`~repro.core.partitioner.PartitionSlices`:
    indexing memory-maps one partition file on demand, so touching one
    partition of a spilled terabyte costs one ``mmap``, not a read of
    the whole output.
    """

    __slots__ = ("_directory", "_counts", "_suffix")

    def __init__(self, directory: pathlib.Path, counts, suffix: str):
        self._directory = directory
        self._counts = counts
        self._suffix = suffix

    def __len__(self) -> int:
        return len(self._counts)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        count = int(self._counts[index])
        if count == 0:
            return np.empty(0, dtype=np.uint32)
        return np.memmap(
            self._directory / f"partition-{index:06d}.{self._suffix}",
            dtype=np.uint32,
            mode="r",
            shape=(count,),
        )


class PartitionSpill:
    """Handle over a completed spill run's final partition files.

    Everything is lazy: constructing the handle reads only the
    manifest; :meth:`partition` memory-maps one partition's key and
    payload files on first touch.  :meth:`to_output` adapts the spill
    into a regular :class:`~repro.core.partitioner.PartitionedOutput`
    so joins (and anything else written against the in-memory shape)
    can build+probe directly from disk.
    """

    def __init__(self, path, manifest: dict):
        self.path = pathlib.Path(path)
        self._manifest = manifest
        self.config = config_from_dict(manifest["effective_config"])
        self.requested_config = config_from_dict(manifest["config"])
        self.counts = np.asarray(manifest["counts"], dtype=np.int64)
        self.lines_per_partition = np.asarray(
            manifest["lines_per_partition"], dtype=np.int64
        )
        self.base_lines = np.asarray(
            manifest["base_lines"], dtype=np.int64
        )
        self.bytes_read = int(manifest["bytes_read"])
        self.bytes_written = int(manifest["bytes_written"])
        self.dummy_slots = int(manifest["dummy_slots"])
        self.num_chunks = int(manifest["next_chunk"])

    @classmethod
    def open(cls, path) -> "PartitionSpill":
        """Open a completed run directory; refuses unfinished runs."""
        path = pathlib.Path(path)
        manifest = _read_manifest(path)
        if manifest["state"] != "complete":
            raise StorageError(
                f"spill run at {path} is {manifest['state']!r}, not "
                "complete; use SpillPartitioner.resume() to finish it"
            )
        return cls(path, manifest)

    # -- reading --------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self.counts)

    @property
    def num_tuples(self) -> int:
        return int(self.counts.sum())

    @property
    def partitions_dir(self) -> pathlib.Path:
        return self.path / _PARTITIONS_DIR

    @property
    def partition_keys(self) -> _SpillColumn:
        return _SpillColumn(self.partitions_dir, self.counts, "keys")

    @property
    def partition_payloads(self) -> _SpillColumn:
        return _SpillColumn(self.partitions_dir, self.counts, "pay")

    def partition(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """(keys, payloads) of one partition, memory-mapped."""
        return self.partition_keys[index], self.partition_payloads[index]

    def to_output(self) -> PartitionedOutput:
        """Adapt into the in-memory result shape (lazy columns)."""
        return PartitionedOutput(
            config=self.config,
            partition_keys=self.partition_keys,
            partition_payloads=self.partition_payloads,
            counts=self.counts,
            lines_per_partition=self.lines_per_partition,
            base_lines=self.base_lines,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            dummy_slots=self.dummy_slots,
            produced_by=f"spill@{self.path}",
            fell_back_to_cpu=bool(self._manifest.get("fell_back", False)),
        )

    def verify(self) -> None:
        """Check every final partition file's length and CRC-32."""
        crcs = self._manifest["partition_crc32"]
        for index, count in enumerate(self.counts.tolist()):
            if count == 0:
                continue
            for suffix in ("keys", "pay"):
                file_path = (
                    self.partitions_dir / f"partition-{index:06d}.{suffix}"
                )
                expected = count * 4
                actual = (
                    file_path.stat().st_size if file_path.exists() else -1
                )
                if actual != expected:
                    raise StorageError(
                        f"partition {index} ({suffix}): expected "
                        f"{expected} bytes, found {actual}"
                    )
                crc = zlib.crc32(file_path.read_bytes())
                if crc != int(crcs[f"{index}:{suffix}"]):
                    raise StorageError(
                        f"partition {index} ({suffix}): CRC-32 mismatch"
                    )

    def cleanup(self) -> None:
        """Remove the run directory and everything under it."""
        import shutil

        shutil.rmtree(self.path, ignore_errors=True)


class _ChunkPrefetcher:
    """Double-buffered chunk read-ahead for the spill drive loop.

    While the partitioning kernels chew on chunk ``k``, one background
    thread opens chunk ``k + 1`` and faults its pages into the page
    cache (touching one element per page), so the next iteration's
    reads hit warm memory — I/O overlaps compute, and the chunk data is
    still served as the store's zero-copy memmap views, never copied.
    """

    #: uint32 elements per 4 KiB page
    _PAGE_STRIDE = 1024

    def __init__(self, store: RelationStore, start: int, stop: int):
        self._store = store
        self._stop = stop
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-spill-prefetch"
        )
        self._pending = {}
        self._submit(start)

    def _submit(self, index: int) -> None:
        if index < self._stop and index not in self._pending:
            self._pending[index] = self._pool.submit(self._load, index)

    def _load(self, index: int):
        keys, payloads = self._store.chunk(index)
        # touch one element per page so the fault cost lands here
        for column in (keys, payloads):
            if column.shape[0]:
                int(np.asarray(column[:: self._PAGE_STRIDE]).sum())
        return keys, payloads

    def take(self, index: int):
        """The (keys, payloads) views of ``index``; schedules
        ``index + 1`` before blocking on the pending read."""
        future = self._pending.pop(index, None)
        self._submit(index + 1)
        if future is None:
            return self._store.chunk(index)
        return future.result()

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


def _read_manifest(path: pathlib.Path) -> dict:
    manifest_path = path / SPILL_MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no {SPILL_MANIFEST_NAME} in {path}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    if manifest.get("version") != SPILL_MANIFEST_VERSION:
        raise StorageError(
            f"unsupported spill manifest version {manifest.get('version')!r}"
        )
    return manifest


class SpillPartitioner:
    """Out-of-core partitioner: chunked streaming with disk spill.

    Args:
        config: the *requested* partitioner configuration; accounting
            (line layout, traffic, PAD capacity) follows it exactly.
            Chunk kernels run a HIST/RID clone internally — content is
            identical across modes, and per-chunk PAD capacities or
            chunk-local virtual record ids would be wrong globally
            (the store supplies global positions as payloads instead).
        backend: ``"fpga"`` (default), ``"cpu"``, or a ready
            partitioner instance exposing ``partition(keys, payloads)``.
        engine / threads: forwarded to a string-spec backend.
        max_bytes_in_memory: flush buffered chunk outputs to the run
            files once they reach this many bytes.
        tracer: optional tracer; the run emits ``spill`` /
            ``spill_chunk`` / ``spill_flush`` / ``spill_merge`` /
            ``resume`` spans with tuple and byte attributes.
        fault_injector: optional
            :class:`~repro.service.degradation.FaultInjector`; its
            ``check()`` runs before every chunk and before every
            checkpoint commit, so tests can kill the run at either
            side of the torn-write window.
        skew_warn_factor: warn (``warnings.warn``) when the store's
            ingest sketch predicts the largest partition exceeds this
            many fair shares.
        prefetch: double-buffered chunk read-ahead (default on) — a
            background thread faults the next chunk's pages into the
            page cache while the kernels partition the current one, so
            disk I/O overlaps compute.  Purely a read-side overlap:
            checkpoints, fault injection and the output bytes are
            unaffected.
    """

    def __init__(
        self,
        config: Optional[PartitionerConfig] = None,
        backend="fpga",
        engine=None,
        threads: Optional[int] = None,
        max_bytes_in_memory: int = DEFAULT_MAX_BYTES_IN_MEMORY,
        tracer=None,
        fault_injector=None,
        skew_warn_factor: float = 2.0,
        prefetch: bool = True,
    ):
        if max_bytes_in_memory < 1:
            raise ConfigurationError(
                f"max_bytes_in_memory must be >= 1, got {max_bytes_in_memory}"
            )
        self.config = config or PartitionerConfig()
        self.max_bytes_in_memory = int(max_bytes_in_memory)
        self.tracer = resolve_tracer(tracer)
        self.fault_injector = fault_injector
        self.skew_warn_factor = skew_warn_factor
        self.prefetch = prefetch
        self._backend_spec = backend
        self._engine = engine
        self._threads = threads
        #: HIST/RID clone driving the per-chunk kernels (see class doc)
        self.backend_config = dataclasses.replace(
            self.config,
            output_mode=OutputMode.HIST,
            layout_mode=LayoutMode.RID,
        )
        self.backend = self._resolve_backend(backend)

    def _resolve_backend(self, backend):
        if backend == "fpga":
            from repro.core.partitioner import FpgaPartitioner

            return FpgaPartitioner(
                self.backend_config,
                engine=self._engine,
                threads=self._threads,
                tracer=self.tracer if self.tracer.enabled else None,
            )
        if backend == "cpu":
            from repro.cpu.partitioner import CpuPartitioner

            return CpuPartitioner.matching(
                self.backend_config,
                threads=self._threads or 1,
                engine=self._engine,
            )
        if hasattr(backend, "partition"):
            return backend
        raise ConfigurationError(
            f"unknown spill backend {backend!r}; expected 'fpga', 'cpu' "
            "or a partitioner instance"
        )

    def close(self) -> None:
        """Release backend resources (worker pools); idempotent.

        Only backends this spiller built from a string spec are
        closed; a caller-supplied instance stays the caller's to close
        (same ownership rule as the in-memory partitioners).
        """
        if isinstance(self._backend_spec, str):
            close = getattr(self.backend, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "SpillPartitioner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- checkpointed fault injection -----------------------------------

    def _checkpoint(self) -> None:
        if self.fault_injector is not None:
            self.fault_injector.check()

    # -- public API -----------------------------------------------------

    def run(
        self,
        store: RelationStore,
        run_dir,
        on_overflow: str = "raise",
    ) -> PartitionSpill:
        """Partition ``store`` into ``run_dir``; returns the handle.

        ``on_overflow`` is the PAD-mode policy: ``"raise"`` or
        ``"hist"`` (``"cpu"`` is rejected — the spill path *is* the
        software path).
        """
        if on_overflow not in ("raise", "hist"):
            raise ConfigurationError(
                f"spill on_overflow must be 'raise' or 'hist', got "
                f"{on_overflow!r} (the spill path already runs in "
                "software, so a 'cpu' fallback is meaningless)"
            )
        run_dir = pathlib.Path(run_dir)
        if (run_dir / SPILL_MANIFEST_NAME).exists():
            raise StorageError(
                f"{run_dir} already holds a spill run; use resume()"
            )
        state = _RunState.fresh(
            run_dir, store, self.config, on_overflow,
            self.max_bytes_in_memory,
        )
        self._warn_on_skew(store)
        return self._drive(store, state)

    def resume(self, run_dir) -> PartitionSpill:
        """Finish an interrupted run: roll back past the last
        checkpoint, redo the remaining chunks, merge."""
        run_dir = pathlib.Path(run_dir)
        manifest = _read_manifest(run_dir)
        if manifest["state"] == "complete":
            return PartitionSpill(run_dir, manifest)
        store = RelationStore.open(manifest["store_path"])
        config = config_from_dict(manifest["config"])
        if config != self.config:
            raise ConfigurationError(
                "spill manifest was written with a different partitioner "
                "configuration; build the SpillPartitioner with the "
                "manifest's config"
            )
        state = _RunState.from_manifest(run_dir, manifest)
        with self.tracer.span(
            "resume",
            next_chunk=state.next_chunk,
            committed_tuples=int(state.committed_counts().sum()),
        ):
            state.rollback_to_checkpoint()
        return self._drive(store, state)

    # -- the drive loop -------------------------------------------------

    def _drive(
        self, store: RelationStore, state: "_RunState"
    ) -> PartitionSpill:
        cfg = self.config
        with self.tracer.span(
            "spill",
            tuples=store.num_tuples,
            partitions=cfg.num_partitions,
            chunks=store.num_chunks,
            next_chunk=state.next_chunk,
        ):
            lanes = cfg.num_lanes
            offset = store.chunk_offset(state.next_chunk)
            prefetcher = (
                _ChunkPrefetcher(store, state.next_chunk, store.num_chunks)
                if self.prefetch
                else None
            )
            try:
                for index in range(state.next_chunk, store.num_chunks):
                    keys, payloads = (
                        prefetcher.take(index)
                        if prefetcher is not None
                        else store.chunk(index)
                    )
                    n = int(keys.shape[0])
                    self._checkpoint()
                    with self.tracer.span(
                        "spill_chunk", chunk=index, tuples=n, bytes=n * 8
                    ):
                        output = self.backend.partition(keys, payloads)
                        # lane-exact global histogram: a tuple's lane is
                        # its *global* input index mod lanes, so
                        # misaligned chunks still account exactly like
                        # one big run; the fused kernel counts it in one
                        # GIL-free pass over the chunk
                        _, _, lane_hist = kernels.hash_histogram(
                            np.asarray(keys),
                            cfg.num_partitions,
                            cfg.uses_hash,
                            lanes=lanes,
                            global_offset=offset,
                        )
                        state.lane_counts += lane_hist
                        state.buffer_output(output)
                    offset += n
                    if state.buffered_bytes >= self.max_bytes_in_memory:
                        self._flush(state, next_chunk=index + 1)
            finally:
                if prefetcher is not None:
                    prefetcher.close()
            if state.buffered_bytes or state.next_chunk < store.num_chunks:
                self._flush(state, next_chunk=store.num_chunks)
            return self._merge(store, state)

    def _flush(self, state: "_RunState", next_chunk: int) -> None:
        """Append buffered outputs to the run files and checkpoint."""
        with self.tracer.span(
            "spill_flush",
            next_chunk=next_chunk,
            bytes=state.buffered_bytes,
        ):
            state.append_buffers()
            self._checkpoint()  # the torn-write window: data > manifest
            state.commit(next_chunk)

    def _warn_on_skew(self, store: RelationStore) -> None:
        if store.sketch is None:
            return
        plan = store.sketch.partition_plan(
            self.config.num_partitions, skew_factor=self.skew_warn_factor
        )
        if plan.skewed:
            import warnings

            warnings.warn(
                f"ingest sketch predicts heavy-hitter skew: one key "
                f"holds {100 * plan.max_key_share:.1f}% of the input, "
                f"so the largest partition will reach at least "
                f"{plan.expected_tuples_per_partition} tuples "
                f"(fair share "
                f"{plan.num_tuples // self.config.num_partitions})",
                stacklevel=3,
            )

    # -- merge ----------------------------------------------------------

    def _merge(
        self, store: RelationStore, state: "_RunState"
    ) -> PartitionSpill:
        """Seal run files into final contiguous partition files and
        write the complete manifest (idempotent — resume re-enters)."""
        cfg = self.config
        n = store.num_tuples
        counts = state.lane_counts.sum(axis=1)
        per_line = cfg.tuples_per_line
        lines_per_partition = (-(-state.lane_counts // per_line)).sum(axis=1)
        effective = cfg
        fell_back = False
        extra_read = 0

        if cfg.output_mode is OutputMode.PAD:
            capacity_lines = cfg.partition_capacity(n) // per_line
            overflowed = np.nonzero(lines_per_partition > capacity_lines)[0]
            if overflowed.size:
                if state.on_overflow == "raise":
                    raise PartitionOverflowError(
                        partition=int(overflowed[0]),
                        capacity=capacity_lines * per_line,
                        tuples_seen=n,
                    )
                # "hist": the data is already HIST-identical on disk;
                # only the accounting switches mode, and the aborted
                # PAD scan is still charged (Section 5.4 worst case)
                effective = dataclasses.replace(
                    cfg, output_mode=OutputMode.HIST
                )
                extra_read = cfg.traffic_bytes(n, 0)[0]

        if effective.output_mode is OutputMode.PAD:
            capacity_lines = effective.partition_capacity(n) // per_line
            base_lines = (
                np.arange(cfg.num_partitions, dtype=np.int64)
                * capacity_lines
            )
        else:
            base_lines = np.zeros(cfg.num_partitions, dtype=np.int64)
            np.cumsum(lines_per_partition[:-1], out=base_lines[1:])

        bytes_read, bytes_written = effective.traffic_bytes(
            n, int(lines_per_partition.sum())
        )
        total_bytes = int(counts.sum()) * 8
        with self.tracer.span("spill_merge", bytes=total_bytes):
            crcs = state.finalize_partitions(counts)
            state.complete(
                counts=counts,
                lines_per_partition=lines_per_partition,
                base_lines=base_lines,
                bytes_read=bytes_read + extra_read,
                bytes_written=bytes_written,
                dummy_slots=int(
                    lines_per_partition.sum() * per_line - counts.sum()
                ),
                effective_config=effective,
                fell_back=fell_back,
                partition_crc32=crcs,
            )
        return PartitionSpill(state.run_dir, _read_manifest(state.run_dir))


class _RunState:
    """On-disk state machine of one spill run (manifest + run files)."""

    def __init__(
        self,
        run_dir: pathlib.Path,
        store_path: str,
        config: PartitionerConfig,
        on_overflow: str,
        max_bytes_in_memory: int,
        next_chunk: int,
        lane_counts: np.ndarray,
        lane_file: Optional[str],
        presize_tuples: int,
    ):
        self.run_dir = run_dir
        self.store_path = store_path
        self.config = config
        self.on_overflow = on_overflow
        self.max_bytes_in_memory = max_bytes_in_memory
        self.next_chunk = next_chunk
        #: accumulated (partition, lane) histogram over committed +
        #: buffered chunks
        self.lane_counts = lane_counts
        self._lane_file = lane_file
        #: per-partition tuple counts already durably committed
        self._committed = lane_counts.sum(axis=1)
        self.presize_tuples = presize_tuples
        self.buffered_bytes = 0
        self._buffers_keys: List[List[np.ndarray]] = [
            [] for _ in range(config.num_partitions)
        ]
        self._buffers_pays: List[List[np.ndarray]] = [
            [] for _ in range(config.num_partitions)
        ]
        (run_dir / _RUNS_DIR).mkdir(parents=True, exist_ok=True)

    # -- construction ---------------------------------------------------

    @classmethod
    def fresh(
        cls,
        run_dir: pathlib.Path,
        store: RelationStore,
        config: PartitionerConfig,
        on_overflow: str,
        max_bytes_in_memory: int,
    ) -> "_RunState":
        run_dir.mkdir(parents=True, exist_ok=True)
        presize = 0
        if store.sketch is not None:
            presize = store.sketch.partition_plan(
                config.num_partitions
            ).expected_tuples_per_partition
        state = cls(
            run_dir=run_dir,
            store_path=str(pathlib.Path(store.path).resolve()),
            config=config,
            on_overflow=on_overflow,
            max_bytes_in_memory=max_bytes_in_memory,
            next_chunk=0,
            lane_counts=np.zeros(
                (config.num_partitions, config.num_lanes), dtype=np.int64
            ),
            lane_file=None,
            presize_tuples=presize,
        )
        state.commit(0)
        return state

    @classmethod
    def from_manifest(
        cls, run_dir: pathlib.Path, manifest: dict
    ) -> "_RunState":
        config = config_from_dict(manifest["config"])
        lane_file = manifest["lane_file"]
        lane_path = run_dir / lane_file
        if not lane_path.exists():
            raise StorageError(f"missing lane histogram file {lane_file}")
        raw = lane_path.read_bytes()
        if zlib.crc32(raw) != int(manifest["lane_crc32"]):
            raise StorageError(
                "lane histogram CRC-32 mismatch; the spill run directory "
                "is corrupt beyond chunk-level recovery"
            )
        lane_counts = np.frombuffer(raw, dtype=np.int64).reshape(
            config.num_partitions, config.num_lanes
        ).copy()
        return cls(
            run_dir=run_dir,
            store_path=manifest["store_path"],
            config=config,
            on_overflow=manifest["on_overflow"],
            max_bytes_in_memory=int(manifest["max_bytes_in_memory"]),
            next_chunk=int(manifest["next_chunk"]),
            lane_counts=lane_counts,
            lane_file=lane_file,
            presize_tuples=int(manifest.get("presize_tuples", 0)),
        )

    # -- paths ----------------------------------------------------------

    def _run_file(self, partition: int, suffix: str) -> pathlib.Path:
        return self.run_dir / _RUNS_DIR / f"p{partition:06d}.{suffix}"

    def _final_file(self, partition: int, suffix: str) -> pathlib.Path:
        return (
            self.run_dir
            / _PARTITIONS_DIR
            / f"partition-{partition:06d}.{suffix}"
        )

    # -- buffering ------------------------------------------------------

    def buffer_output(self, output: PartitionedOutput) -> None:
        """Stash one chunk's per-partition slices in memory."""
        for p in range(self.config.num_partitions):
            keys = output.partition_keys[p]
            if keys.shape[0] == 0:
                continue
            self._buffers_keys[p].append(keys)
            self._buffers_pays[p].append(output.partition_payloads[p])
            self.buffered_bytes += int(keys.shape[0]) * 8

    def committed_counts(self) -> np.ndarray:
        return self._committed

    def append_buffers(self) -> None:
        """Append buffered slices to the run files at the committed
        offsets; fsync so the following manifest commit orders after
        the data."""
        pending = self._committed.copy()
        for p in range(self.config.num_partitions):
            if not self._buffers_keys[p]:
                continue
            for suffix, buffers in (
                ("keys", self._buffers_keys[p]),
                ("pay", self._buffers_pays[p]),
            ):
                path = self._run_file(p, suffix)
                exists = path.exists()
                with open(path, "r+b" if exists else "w+b") as handle:
                    if not exists and self.presize_tuples:
                        handle.truncate(self.presize_tuples * 4)
                    handle.seek(int(pending[p]) * 4)
                    for chunk in buffers:
                        # memoryview write: the partition slice goes to
                        # the file straight from the kernel's output
                        # buffer, no intermediate bytes copy
                        handle.write(np.ascontiguousarray(chunk).data)
                    handle.flush()
                    os.fsync(handle.fileno())
            self._buffers_keys[p] = []
            self._buffers_pays[p] = []
        self.buffered_bytes = 0

    def commit(self, next_chunk: int) -> None:
        """Checkpoint: lane histogram side file, then atomic manifest."""
        lane_file = f"lane_counts-{next_chunk:06d}.bin"
        raw = np.ascontiguousarray(self.lane_counts).tobytes()
        lane_tmp = self.run_dir / (lane_file + ".tmp")
        with open(lane_tmp, "wb") as handle:
            handle.write(raw)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(lane_tmp, self.run_dir / lane_file)
        previous = self._lane_file
        self._lane_file = lane_file
        self.next_chunk = next_chunk
        self._committed = self.lane_counts.sum(axis=1)
        self._write_manifest(state="running", lane_crc32=zlib.crc32(raw))
        if previous and previous != lane_file:
            (self.run_dir / previous).unlink(missing_ok=True)

    def rollback_to_checkpoint(self) -> None:
        """Drop bytes appended past the last committed checkpoint."""
        for p in range(self.config.num_partitions):
            committed_bytes = int(self._committed[p]) * 4
            for suffix in ("keys", "pay"):
                path = self._run_file(p, suffix)
                if not path.exists():
                    if committed_bytes:
                        raise StorageError(
                            f"run file for partition {p} vanished with "
                            f"{committed_bytes} committed bytes"
                        )
                    continue
                # presized files legitimately extend past the committed
                # offset; truncating to max(committed, 0) is still safe
                # because finalize truncates to the exact count later
                if path.stat().st_size > committed_bytes:
                    with open(path, "r+b") as handle:
                        handle.truncate(committed_bytes)

    # -- finalisation ---------------------------------------------------

    def finalize_partitions(self, counts: np.ndarray) -> dict:
        """Truncate run files to exact sizes and move them into
        ``partitions/``; idempotent across crashes.  Returns CRCs."""
        final_dir = self.run_dir / _PARTITIONS_DIR
        final_dir.mkdir(exist_ok=True)
        crcs = {}
        for p, count in enumerate(counts.tolist()):
            if count == 0:
                continue
            for suffix in ("keys", "pay"):
                final_path = self._final_file(p, suffix)
                if not final_path.exists():
                    run_path = self._run_file(p, suffix)
                    if not run_path.exists():
                        raise StorageError(
                            f"partition {p} has {count} tuples but no "
                            f"run file ({suffix})"
                        )
                    with open(run_path, "r+b") as handle:
                        handle.truncate(count * 4)
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(run_path, final_path)
                crcs[f"{p}:{suffix}"] = zlib.crc32(final_path.read_bytes())
        return crcs

    def complete(
        self,
        counts: np.ndarray,
        lines_per_partition: np.ndarray,
        base_lines: np.ndarray,
        bytes_read: int,
        bytes_written: int,
        dummy_slots: int,
        effective_config: PartitionerConfig,
        fell_back: bool,
        partition_crc32: dict,
    ) -> None:
        """Write the final manifest and drop intermediate state."""
        self._write_manifest(
            state="complete",
            lane_crc32=zlib.crc32(
                np.ascontiguousarray(self.lane_counts).tobytes()
            ),
            counts=counts.tolist(),
            lines_per_partition=lines_per_partition.tolist(),
            base_lines=base_lines.tolist(),
            bytes_read=int(bytes_read),
            bytes_written=int(bytes_written),
            dummy_slots=int(dummy_slots),
            effective_config=config_to_dict(effective_config),
            fell_back=fell_back,
            partition_crc32=partition_crc32,
        )
        if self._lane_file:
            (self.run_dir / self._lane_file).unlink(missing_ok=True)
            self._lane_file = None
        runs_dir = self.run_dir / _RUNS_DIR
        if runs_dir.exists():
            for stray in runs_dir.iterdir():
                stray.unlink()
            runs_dir.rmdir()

    def _write_manifest(self, state: str, lane_crc32: int, **extra) -> None:
        payload = {
            "version": SPILL_MANIFEST_VERSION,
            "state": state,
            "store_path": self.store_path,
            "config": config_to_dict(self.config),
            "on_overflow": self.on_overflow,
            "max_bytes_in_memory": self.max_bytes_in_memory,
            "presize_tuples": self.presize_tuples,
            "next_chunk": self.next_chunk,
            "lane_file": self._lane_file,
            "lane_crc32": lane_crc32,
        }
        payload.update(extra)
        write_json_atomic(self.run_dir / SPILL_MANIFEST_NAME, payload)
