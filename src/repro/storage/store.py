"""On-disk columnar relation storage for out-of-core partitioning.

A :class:`RelationStore` is a directory holding one relation as a
sequence of fixed-width <key, payload> chunks plus a JSON manifest:

.. code-block:: text

    store/
      MANIFEST.json          # layout, dtype, per-chunk checksums, sketch
      chunk-000000.bin       # uint32[2][n]: row 0 keys, row 1 payloads
      chunk-000001.bin
      ...

Chunks are raw little-endian buffers read and written through
``numpy.memmap``, so reading a chunk touches no more physical memory
than the pages actually scanned — the property the whole spill path is
built on.  The manifest is rewritten **atomically** (temp file +
``os.replace``) after every appended chunk, so a killed ingest leaves
a consistent prefix: every chunk named by the manifest is fully on
disk with a matching CRC-32, and any trailing partial chunk file is
simply not referenced (and is removed on the next open).

Payloads default to the tuple's *global* position in the relation —
exactly the virtual record ids VRID mode would append — so a chunked
scan reproduces the in-memory partitioner's payload column bit for
bit regardless of chunk boundaries.

The ingest pass also feeds a :class:`~repro.analysis.sketch.StreamSketch`
(HyperLogLog cardinality + Misra–Gries heavy hitters) recorded in the
manifest; the spill partitioner reads it back to pre-size partition
files and to warn when a heavy key makes balanced partitioning
impossible.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import zlib
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.analysis.sketch import StreamSketch
from repro.errors import ConfigurationError, ReproError
from repro.workloads.relations import Relation

__all__ = [
    "ChunkMeta",
    "RelationStore",
    "StorageError",
    "write_json_atomic",
]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1

#: default ingest granularity — 1 Mi tuples = 8 MiB per chunk
DEFAULT_CHUNK_TUPLES = 1 << 20


class StorageError(ReproError):
    """A storage-engine invariant failed (corruption, bad manifest)."""


def write_json_atomic(path: pathlib.Path, payload: dict) -> None:
    """Write ``payload`` as JSON via temp file + ``os.replace``.

    ``os.replace`` is atomic on POSIX, so readers (and crash recovery)
    see either the old manifest or the new one, never a torn write.
    The temp file is fsynced before the rename so the rename cannot be
    durably ordered ahead of the data it names.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


@dataclasses.dataclass(frozen=True)
class ChunkMeta:
    """Manifest entry for one stored chunk."""

    file: str
    tuples: int
    crc32: int

    def to_dict(self) -> dict:
        """JSON-native manifest form."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ChunkMeta":
        return cls(
            file=str(data["file"]),
            tuples=int(data["tuples"]),
            crc32=int(data["crc32"]),
        )


class RelationStore:
    """A chunked, memory-mapped columnar relation on disk.

    Build one with :meth:`create` + :meth:`append_chunk` (streaming
    ingest), or in one call with :meth:`ingest`; reopen an existing
    directory with :meth:`open`.  Chunk reads come back as read-only
    ``numpy.memmap`` views.

    Args are internal — use the classmethods.
    """

    def __init__(
        self,
        path: pathlib.Path,
        chunk_tuples: int,
        tuple_bytes: int,
        chunks: List[ChunkMeta],
        sketch: Optional[StreamSketch],
        meta: dict,
        writable: bool,
    ):
        self.path = pathlib.Path(path)
        self.chunk_tuples = chunk_tuples
        self.tuple_bytes = tuple_bytes
        self.chunks = chunks
        self.sketch = sketch
        #: free-form manifest metadata (e.g. the radix/partitioner
        #: config this relation is staged for)
        self.meta = meta
        self._writable = writable

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls,
        path,
        chunk_tuples: int = DEFAULT_CHUNK_TUPLES,
        tuple_bytes: int = 8,
        sketch: bool = True,
        sketch_precision: int = 12,
        meta: Optional[dict] = None,
    ) -> "RelationStore":
        """Create an empty store directory (must not already hold one)."""
        if chunk_tuples < 1:
            raise ConfigurationError(
                f"chunk_tuples must be >= 1, got {chunk_tuples}"
            )
        path = pathlib.Path(path)
        path.mkdir(parents=True, exist_ok=True)
        if (path / MANIFEST_NAME).exists():
            raise StorageError(f"{path} already holds a relation store")
        store = cls(
            path=path,
            chunk_tuples=int(chunk_tuples),
            tuple_bytes=int(tuple_bytes),
            chunks=[],
            sketch=(
                StreamSketch(precision=sketch_precision) if sketch else None
            ),
            meta=dict(meta or {}),
            writable=True,
        )
        store._write_manifest()
        return store

    @classmethod
    def ingest(
        cls,
        relation: "Relation | np.ndarray",
        path,
        payloads: Optional[np.ndarray] = None,
        chunk_tuples: int = DEFAULT_CHUNK_TUPLES,
        **create_kwargs,
    ) -> "RelationStore":
        """Write a whole relation into a new store, chunk by chunk."""
        if isinstance(relation, Relation):
            keys, payloads = relation.keys, relation.payloads
            create_kwargs.setdefault("tuple_bytes", relation.tuple_bytes)
        else:
            keys = np.ascontiguousarray(relation, dtype=np.uint32)
        store = cls.create(path, chunk_tuples=chunk_tuples, **create_kwargs)
        n = int(keys.shape[0])
        for lo in range(0, n, chunk_tuples):
            hi = min(n, lo + chunk_tuples)
            store.append_chunk(
                keys[lo:hi],
                payloads[lo:hi] if payloads is not None else None,
            )
        return store

    @classmethod
    def open(cls, path) -> "RelationStore":
        """Open an existing store read-only; drops unreferenced chunk
        files left behind by a killed ingest."""
        path = pathlib.Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise StorageError(f"no {MANIFEST_NAME} in {path}")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        if manifest.get("version") != MANIFEST_VERSION:
            raise StorageError(
                f"unsupported manifest version {manifest.get('version')!r}"
            )
        chunks = [ChunkMeta.from_dict(c) for c in manifest["chunks"]]
        referenced = {chunk.file for chunk in chunks}
        for stray in sorted(path.glob("chunk-*.bin")):
            if stray.name not in referenced:
                stray.unlink()
        return cls(
            path=path,
            chunk_tuples=int(manifest["chunk_tuples"]),
            tuple_bytes=int(manifest["tuple_bytes"]),
            chunks=chunks,
            sketch=StreamSketch.from_dict(manifest.get("sketch")),
            meta=dict(manifest.get("meta", {})),
            writable=False,
        )

    # -- writing --------------------------------------------------------

    def append_chunk(
        self, keys: np.ndarray, payloads: Optional[np.ndarray] = None
    ) -> ChunkMeta:
        """Append one chunk; commits it to the manifest atomically.

        ``payloads=None`` assigns global positions (the VRID payload
        column).  Returns the committed :class:`ChunkMeta`.
        """
        if not self._writable:
            raise StorageError("store was opened read-only")
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        n = int(keys.shape[0])
        if n == 0:
            raise ConfigurationError("cannot append an empty chunk")
        if payloads is None:
            offset = self.num_tuples
            payloads = np.arange(
                offset, offset + n, dtype=np.uint32
            )
        else:
            payloads = np.ascontiguousarray(payloads, dtype=np.uint32)
            if payloads.shape != keys.shape:
                raise ConfigurationError("keys and payloads must align")
        name = f"chunk-{len(self.chunks):06d}.bin"
        file_path = self.path / name
        mm = np.memmap(
            file_path, dtype=np.uint32, mode="w+", shape=(2, n)
        )
        mm[0] = keys
        mm[1] = payloads
        mm.flush()
        crc = zlib.crc32(mm.tobytes())
        del mm
        if self.sketch is not None:
            self.sketch.add(keys)
        meta = ChunkMeta(file=name, tuples=n, crc32=crc)
        self.chunks.append(meta)
        self._write_manifest()
        return meta

    def _write_manifest(self) -> None:
        write_json_atomic(
            self.path / MANIFEST_NAME,
            {
                "version": MANIFEST_VERSION,
                "chunk_tuples": self.chunk_tuples,
                "tuple_bytes": self.tuple_bytes,
                "dtype": "uint32",
                "num_tuples": self.num_tuples,
                "chunks": [chunk.to_dict() for chunk in self.chunks],
                "sketch": (
                    self.sketch.to_dict() if self.sketch is not None else None
                ),
                "meta": self.meta,
            },
        )

    def seal(self, **meta) -> "RelationStore":
        """Attach final metadata (e.g. the radix config) and freeze."""
        if meta:
            self.meta.update(meta)
            self._write_manifest()
        self._writable = False
        return self

    # -- reading --------------------------------------------------------

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def num_tuples(self) -> int:
        return sum(chunk.tuples for chunk in self.chunks)

    @property
    def total_bytes(self) -> int:
        """Bytes of stored key+payload columns (excludes the manifest)."""
        return self.num_tuples * 8

    def chunk(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """(keys, payloads) of one chunk as read-only memmap views."""
        meta = self.chunks[index]
        mm = np.memmap(
            self.path / meta.file,
            dtype=np.uint32,
            mode="r",
            shape=(2, meta.tuples),
        )
        return mm[0], mm[1]

    def chunk_offset(self, index: int) -> int:
        """Global tuple offset of chunk ``index``'s first tuple."""
        return sum(chunk.tuples for chunk in self.chunks[:index])

    def iter_chunks(
        self,
    ) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray]]:
        """Yield ``(index, global_offset, keys, payloads)`` per chunk."""
        offset = 0
        for index, meta in enumerate(self.chunks):
            keys, payloads = self.chunk(index)
            yield index, offset, keys, payloads
            offset += meta.tuples

    def verify(self) -> None:
        """Recompute every chunk CRC-32; raises :class:`StorageError`
        on any mismatch (bit rot, torn write, wrong-length file)."""
        for index, meta in enumerate(self.chunks):
            file_path = self.path / meta.file
            expected_bytes = 2 * meta.tuples * 4
            actual = file_path.stat().st_size if file_path.exists() else -1
            if actual != expected_bytes:
                raise StorageError(
                    f"chunk {index} ({meta.file}): expected "
                    f"{expected_bytes} bytes, found {actual}"
                )
            crc = zlib.crc32(file_path.read_bytes())
            if crc != meta.crc32:
                raise StorageError(
                    f"chunk {index} ({meta.file}): CRC-32 mismatch "
                    f"(manifest {meta.crc32:#010x}, disk {crc:#010x})"
                )

    def delete(self) -> None:
        """Remove the store directory and everything under it."""
        import shutil

        shutil.rmtree(self.path, ignore_errors=True)
