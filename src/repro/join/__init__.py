"""Radix hash joins (Sections 3.3 and 5).

The partitioned (radix) hash join: partition both relations into
cache-sized blocks, then build + probe a cache-resident bucket-chaining
hash table per partition pair.  Two drivers:

* :func:`cpu_radix_join` — partitioning and build+probe on the CPU;
* :func:`hybrid_join` — partitioning offloaded to the FPGA, build+probe
  on the CPU (and paying the Section 2.2 coherence penalty for reading
  FPGA-written partitions);
* :func:`hybrid_join_spilled` — build+probe directly from two on-disk
  :class:`~repro.storage.spill.PartitionSpill` partitionings, memory-
  mapping one partition pair at a time (the out-of-core join).
"""

from repro.join.hash_table import BucketChainingHashTable
from repro.join.build_probe import build_probe_partition, BuildProbeCostModel
from repro.join.radix_join import cpu_radix_join
from repro.join.hybrid_join import hybrid_join, hybrid_join_spilled
from repro.join.timing import JoinTiming, JoinResult

__all__ = [
    "BucketChainingHashTable",
    "build_probe_partition",
    "BuildProbeCostModel",
    "cpu_radix_join",
    "hybrid_join",
    "hybrid_join_spilled",
    "JoinTiming",
    "JoinResult",
]
