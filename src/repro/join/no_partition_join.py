"""Non-partitioned (NPO) hash join — the hardware-oblivious baseline.

The paper's whole premise rests on Schuh et al. [31]'s finding that
"partitioned, hardware-conscious, radix hash-joins have a clear
performance advantage over non-partitioned ... joins on modern
multi-core architectures for large and non-skewed relations".  To make
that comparison runnable, this module implements the baseline the
radix join beats: build ONE global bucket-chaining hash table over all
of R, probe it with all of S — no partitioning pass at all.

Cost model: when the global table fits in the L3 cache the join runs
at the in-cache build/probe rates; once it spills, every build insert
and probe walk is a dependent random DRAM access, charged at the
single-thread random-read rate the paper measured in Table 1
(512 MB / 64 B lines in 1.1537 s ≈ 7.3 M lines/s/thread), scaled by
the thread count.  That grounds the NPO penalty in the paper's own
micro-benchmark rather than a fitted constant.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.constants import (
    BUILD_CYCLES_PER_TUPLE,
    CACHE_LINE_BYTES,
    CPU_CLOCK_HZ,
    CPU_L3_BYTES,
    PROBE_CYCLES_PER_TUPLE,
    TABLE1_SECONDS,
)
from repro.errors import ConfigurationError
from repro.join.build_probe import build_probe_partition
from repro.join.timing import JoinResult, JoinTiming
from repro.workloads.relations import Workload

_TABLE1_REGION_BYTES = 512 * 1024 * 1024

RANDOM_LINES_PER_SECOND_PER_THREAD = (
    _TABLE1_REGION_BYTES / CACHE_LINE_BYTES
) / TABLE1_SECONDS[("cpu", "random")]
"""~7.3e6 — single-thread random cache-line reads (Table 1, CPU row)."""


@dataclasses.dataclass(frozen=True)
class NoPartitionEstimate:
    build_seconds: float
    probe_seconds: float
    table_bytes: int
    in_cache: bool

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.probe_seconds


class NoPartitionCostModel:
    """Timing for the global-table hash join."""

    def __init__(
        self,
        l3_bytes: int = CPU_L3_BYTES,
        clock_hz: float = CPU_CLOCK_HZ,
        random_rate_per_thread: float = RANDOM_LINES_PER_SECOND_PER_THREAD,
    ):
        self.l3_bytes = l3_bytes
        self.clock_hz = clock_hz
        self.random_rate_per_thread = random_rate_per_thread

    def table_bytes(self, r_tuples: int, tuple_bytes: int = 8) -> int:
        """Footprint of the global hash table over R."""
        # tuples + bucket heads + next chain (~2x the data, as in [3])
        return 2 * r_tuples * tuple_bytes

    def estimate(
        self,
        r_tuples: int,
        s_tuples: int,
        threads: int = 1,
        tuple_bytes: int = 8,
    ) -> NoPartitionEstimate:
        """Build+probe time for the global-table join."""
        if threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        table = self.table_bytes(r_tuples, tuple_bytes)
        in_cache = table <= self.l3_bytes
        if in_cache:
            build = r_tuples * BUILD_CYCLES_PER_TUPLE / self.clock_hz
            probe = s_tuples * PROBE_CYCLES_PER_TUPLE / self.clock_hz
        else:
            # each insert/probe is a dependent random line access
            rate = self.random_rate_per_thread
            build = r_tuples / rate
            probe = s_tuples / rate
        return NoPartitionEstimate(
            build_seconds=build / threads,
            probe_seconds=probe / threads,
            table_bytes=table,
            in_cache=in_cache,
        )


def no_partition_join(
    workload: Workload,
    threads: int = 1,
    collect_payloads: bool = False,
    cost_model: Optional[NoPartitionCostModel] = None,
    timing_r_tuples: Optional[int] = None,
    timing_s_tuples: Optional[int] = None,
) -> JoinResult:
    """Execute and time the non-partitioned hash join.

    Functionally identical output to the radix join (same matches);
    the timing shows why the paper partitions first for large R.
    """
    r, s = workload.r, workload.s
    matches, r_pay, s_pay, _hops = build_probe_partition(
        r.keys, r.payloads, s.keys, s.payloads, collect_payloads
    )
    cost_model = cost_model or NoPartitionCostModel()
    n_r = timing_r_tuples if timing_r_tuples is not None else len(r)
    n_s = timing_s_tuples if timing_s_tuples is not None else len(s)
    estimate = cost_model.estimate(
        n_r, n_s, threads=threads, tuple_bytes=r.tuple_bytes
    )
    timing = JoinTiming(
        partition_seconds=0.0,
        build_probe_seconds=estimate.total_seconds,
        r_tuples=n_r,
        s_tuples=n_s,
        threads=threads,
        partitioner="none (NPO)",
        num_partitions=1,
    )
    return JoinResult(
        matches=matches, r_payloads=r_pay, s_payloads=s_pay, timing=timing
    )
