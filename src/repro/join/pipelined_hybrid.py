"""Pipelined hybrid join — overlapping the FPGA and CPU phases.

The paper runs the hybrid join's phases back to back: FPGA partitions
R, FPGA partitions S, then the CPU builds and probes.  But the
platform's whole selling point (Section 1: "true hybrid applications
where part of the program executes on the CPU and part of it on the
FPGA") invites overlap: while the FPGA partitions S, the CPU can
already build hash tables over R's finished partitions.

Overlap is not free — both agents hammer the same memory, so each runs
at its *interfered* Figure 2 bandwidth (the starred curves).  This
module models that trade:

* sequential: ``t = fpga(R) + fpga(S) + build + probe`` at alone
  bandwidths;
* pipelined: ``t = fpga(R) + max(fpga*(S), build*) + probe`` where the
  starred terms use interfered bandwidths (the probe still needs all
  of S partitioned, so only the build overlaps).

Whether pipelining wins depends on how much the interference costs
versus how much the overlap hides — which is exactly what the
extension benchmark sweeps.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.model import FpgaCostModel
from repro.core.modes import PartitionerConfig
from repro.errors import ConfigurationError
from repro.join.build_probe import BuildProbeCostModel
from repro.join.timing import JoinTiming
from repro.platform.bandwidth import BandwidthModel


@dataclasses.dataclass(frozen=True)
class PipelinedTiming:
    """Sequential vs pipelined schedule for one hybrid join."""

    sequential: JoinTiming
    pipelined_seconds: float
    overlap_seconds: float          # work hidden under the overlap
    interference_cost_seconds: float  # extra time paid for sharing memory

    @property
    def speedup(self) -> float:
        return self.sequential.total_seconds / self.pipelined_seconds

    @property
    def worthwhile(self) -> bool:
        return self.pipelined_seconds < self.sequential.total_seconds


def pipelined_hybrid_timing(
    r_tuples: int,
    s_tuples: int,
    config: Optional[PartitionerConfig] = None,
    threads: int = 10,
    num_partitions: int = 8192,
    bandwidth: Optional[BandwidthModel] = None,
    calibrated: bool = True,
) -> PipelinedTiming:
    """Model the sequential and pipelined hybrid-join schedules.

    Functional results are unaffected by scheduling (same partitions,
    same matches), so this is a pure timing analysis; pair it with
    :func:`repro.join.hybrid_join.hybrid_join` for the data plane.
    """
    if threads < 1:
        raise ConfigurationError(f"threads must be >= 1, got {threads}")
    config = config or PartitionerConfig(num_partitions=num_partitions)
    bandwidth = bandwidth or BandwidthModel()
    fpga = FpgaCostModel(bandwidth=bandwidth)
    bp = BuildProbeCostModel()

    # --- sequential schedule (the paper's) -----------------------------
    fpga_r = fpga.partitioning_seconds(r_tuples, config, calibrated=calibrated)
    fpga_s = fpga.partitioning_seconds(s_tuples, config, calibrated=calibrated)
    estimate = bp.estimate(
        r_tuples,
        s_tuples,
        config.num_partitions,
        threads=threads,
        fpga_partitioned=True,
    )
    sequential = JoinTiming(
        partition_seconds=fpga_r + fpga_s,
        build_probe_seconds=estimate.total_seconds,
        r_tuples=r_tuples,
        s_tuples=s_tuples,
        threads=threads,
        partitioner=f"fpga {config.mode_label} (sequential)",
        num_partitions=config.num_partitions,
    )

    # --- pipelined schedule --------------------------------------------
    # While the FPGA partitions S, the CPU builds over R's partitions;
    # both run at their interfered bandwidths.
    fpga_s_interfered = fpga.partitioning_seconds(
        s_tuples, config, interfered=True, calibrated=calibrated
    )
    build_alone = estimate.build_seconds
    # The build is compute-and-latency bound in cache; interference
    # slows its memory share (the sequential partition scans), modelled
    # with the CPU interfered/alone ratio on its coherent-read part.
    cpu_ratio = bandwidth.bandwidth_gbs("cpu", 0.8) / bandwidth.bandwidth_gbs(
        "cpu", 0.8, interfered=True
    )
    build_interfered = build_alone * cpu_ratio
    overlapped = max(fpga_s_interfered, build_interfered)
    pipelined_seconds = fpga_r + overlapped + estimate.probe_seconds

    overlap_hidden = min(fpga_s_interfered, build_interfered)
    interference_cost = (fpga_s_interfered - fpga_s) + (
        build_interfered - build_alone
    )
    return PipelinedTiming(
        sequential=sequential,
        pipelined_seconds=pipelined_seconds,
        overlap_seconds=overlap_hidden,
        interference_cost_seconds=interference_cost,
    )
