"""Join phase timing containers (the y axes of Figures 10-13).

Every join figure in the paper is a stacked bar of partitioning time
plus build+probe time.  :class:`JoinTiming` holds that decomposition;
:class:`JoinResult` pairs it with the functional join output so
correctness and performance come out of one call.

Throughput convention: the paper quotes join throughput as the combined
input size over total time — e.g. workload A's 436 Mtuples/s CPU join
corresponds to (128e6 + 128e6) tuples in ~0.59 s — and that is what
:attr:`JoinTiming.throughput_mtuples` computes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np


@dataclasses.dataclass(frozen=True)
class JoinTiming:
    """Modelled wall-clock decomposition of one join execution."""

    partition_seconds: float
    build_probe_seconds: float
    r_tuples: int
    s_tuples: int
    threads: int
    partitioner: str            # "cpu" or an FPGA mode label
    num_partitions: int

    @property
    def total_seconds(self) -> float:
        return self.partition_seconds + self.build_probe_seconds

    @property
    def total_tuples(self) -> int:
        return self.r_tuples + self.s_tuples

    @property
    def throughput_mtuples(self) -> float:
        """(|R| + |S|) / total time, in Mtuples/s."""
        return self.total_tuples / self.total_seconds / 1e6

    def scaled_to(self, r_tuples: int, s_tuples: int) -> "JoinTiming":
        """Re-express the timing for the paper-scale relation sizes.

        The cost models are rates, so timings scale linearly in the
        tuple counts; this converts a scaled-down run's timing to what
        the model predicts at full scale (used by the benchmarks to
        print paper-comparable seconds).
        """
        r_factor = r_tuples / max(1, self.r_tuples)
        s_factor = s_tuples / max(1, self.s_tuples)
        # Partitioning touches R and S once each; build is R, probe S.
        blended = (
            (self.r_tuples * r_factor + self.s_tuples * s_factor)
            / max(1, self.total_tuples)
        )
        return JoinTiming(
            partition_seconds=self.partition_seconds * blended,
            build_probe_seconds=self.build_probe_seconds * blended,
            r_tuples=r_tuples,
            s_tuples=s_tuples,
            threads=self.threads,
            partitioner=self.partitioner,
            num_partitions=self.num_partitions,
        )


@dataclasses.dataclass
class JoinResult:
    """Functional output + modelled timing of one join."""

    matches: int
    r_payloads: Optional[np.ndarray]
    s_payloads: Optional[np.ndarray]
    timing: JoinTiming
    fell_back_to_cpu: bool = False

    @property
    def throughput_mtuples(self) -> float:
        return self.timing.throughput_mtuples
