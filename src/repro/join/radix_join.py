"""The CPU radix hash join (Section 3.3).

Partition R and S with the software partitioner so every partition pair
fits in cache, then build+probe each pair.  Functional results come
from the real partitioner and hash table; wall-clock comes from the
calibrated cost models (the Python data plane is not the thing being
timed — the paper's platform is).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.modes import HashKind
from repro.cpu.cost_model import CpuCostModel
from repro.cpu.partitioner import CpuPartitioner
from repro.errors import ConfigurationError
from repro.join.build_probe import (
    BuildProbeCostModel,
    build_probe_partition,
    shares_if_dense,
)
from repro.join.timing import JoinResult, JoinTiming
from repro.workloads.relations import Workload


def cpu_radix_join(
    workload: Workload,
    num_partitions: int = 8192,
    threads: int = 1,
    hash_kind: HashKind | str = HashKind.RADIX,
    collect_payloads: bool = False,
    cpu_cost_model: Optional[CpuCostModel] = None,
    bp_cost_model: Optional[BuildProbeCostModel] = None,
    timing_r_tuples: Optional[int] = None,
    timing_s_tuples: Optional[int] = None,
    engine=None,
    fused: bool = False,
) -> JoinResult:
    """Execute and time a CPU-only partitioned hash join.

    Returns a :class:`JoinResult` whose ``matches`` (and optional
    payload pairs) come from actually joining the data, and whose
    ``timing`` comes from the Figure 4 / build+probe cost models for
    the given thread count.

    ``timing_r_tuples`` / ``timing_s_tuples`` let the timing be
    evaluated at different (typically the paper's full-scale) relation
    sizes than the data actually joined — the functional result stays
    scaled, the modelled seconds become paper-comparable.

    ``engine`` (spec or :class:`~repro.exec.engine.ExecutionEngine`)
    runs the partitioning phases and the per-partition build+probe on
    a worker pool; the functional result is unchanged.

    ``fused`` routes the partition → build+probe chain through the
    plan layer's one-pass executor (:func:`repro.plan.execute_plan`):
    no materialized ``PartitionedOutput``, same rows (partition
    contents are backend-invariant, pinned by the kernel tests).
    """
    r, s = workload.r, workload.s
    if r.tuple_bytes != s.tuple_bytes:
        raise ConfigurationError("R and S must share a tuple width")
    hash_kind = HashKind(hash_kind)
    n_r = timing_r_tuples if timing_r_tuples is not None else len(r)
    n_s = timing_s_tuples if timing_s_tuples is not None else len(s)

    from repro.exec.engine import resolve_engine

    engine = resolve_engine(engine, threads)
    if fused:
        from repro.core.modes import PartitionerConfig
        from repro.plan import execute_plan, join_query

        config = PartitionerConfig(
            num_partitions=num_partitions,
            hash_kind=hash_kind,
            tuple_bytes=r.tuple_bytes,
        )
        result = execute_plan(
            join_query(
                r, s, config=config, collect_payloads=collect_payloads
            ),
            engine=engine,
        )
        r_out, s_out = result.inputs
        matches, r_pay, s_pay = (
            result.matches, result.r_payloads, result.s_payloads
        )
    else:
        partitioner = CpuPartitioner(
            num_partitions=num_partitions,
            hash_kind=hash_kind,
            threads=threads,
            tuple_bytes=r.tuple_bytes,
            engine=engine,
        )
        r_out = partitioner.partition(r)
        s_out = partitioner.partition(s)

        matches, r_pay, s_pay = _join_partitions(
            r_out, s_out, collect_payloads, engine=engine
        )

    cpu_cost_model = cpu_cost_model or CpuCostModel()
    bp_cost_model = bp_cost_model or BuildProbeCostModel()
    distribution = workload.distribution
    partition_seconds = cpu_cost_model.partitioning_seconds(
        n_r + n_s,
        threads,
        hash_kind=hash_kind,
        distribution=distribution,
        num_partitions=num_partitions,
        tuple_bytes=r.tuple_bytes,
    )
    # The slowest thread is pinned by the heaviest partition on either
    # side — a skewed probe relation (Figure 13) throttles build+probe
    # even when the build side is balanced.
    max_share = max(
        r_out.max_partition_tuples() / max(1, len(r)),
        s_out.max_partition_tuples() / max(1, len(s)),
    )
    bp = bp_cost_model.estimate(
        r_tuples=n_r,
        s_tuples=n_s,
        num_partitions=num_partitions,
        threads=threads,
        tuple_bytes=r.tuple_bytes,
        fpga_partitioned=False,
        max_partition_share=max_share,
        r_shares=shares_if_dense(r_out.counts, len(r)),
        s_shares=shares_if_dense(s_out.counts, len(s)),
    )
    timing = JoinTiming(
        partition_seconds=partition_seconds,
        build_probe_seconds=bp.total_seconds,
        r_tuples=n_r,
        s_tuples=n_s,
        threads=threads,
        partitioner=f"cpu/{hash_kind.value}" + (" fused" if fused else ""),
        num_partitions=num_partitions,
    )
    return JoinResult(
        matches=matches, r_payloads=r_pay, s_payloads=s_pay, timing=timing
    )


def _join_partitions(r_out, s_out, collect_payloads: bool, engine=None):
    """Build+probe every partition pair of two partitioned outputs.

    With an :class:`~repro.exec.engine.ExecutionEngine`, the
    per-partition build+probe tasks fan out onto the engine's worker
    pool; results are merged back in partition order, so the match
    count and payload concatenation are identical to the serial loop.
    """

    def _one(p: int):
        """Build+probe a single partition pair; returns (count, rp, sp)."""
        r_keys, r_payloads = r_out.partition(p)
        s_keys, s_payloads = s_out.partition(p)
        if r_keys.shape[0] == 0 or s_keys.shape[0] == 0:
            return 0, None, None
        count, rp, sp, _hops = build_probe_partition(
            r_keys, r_payloads, s_keys, s_payloads, collect_payloads
        )
        if collect_payloads and count:
            return count, rp, sp
        return count, None, None

    partitions = range(r_out.num_partitions)
    if engine is not None:
        results = engine.map_tasks(_one, partitions)
    else:
        results = [_one(p) for p in partitions]

    matches = 0
    r_parts: list = []
    s_parts: list = []
    for count, rp, sp in results:
        matches += count
        if rp is not None:
            r_parts.append(rp)
            s_parts.append(sp)
    if collect_payloads:
        r_pay = (
            np.concatenate(r_parts) if r_parts else np.empty(0, np.uint32)
        )
        s_pay = (
            np.concatenate(s_parts) if s_parts else np.empty(0, np.uint32)
        )
        return matches, r_pay, s_pay
    return matches, None, None
