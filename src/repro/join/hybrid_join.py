"""The hybrid join: FPGA partitioning + CPU build+probe (Section 5).

The headline experiment of the paper.  The FPGA partitions both
relations (any of its four modes); the CPU then builds and probes the
cache-resident hash tables — paying the coherence penalty for touching
FPGA-written memory (Section 2.2).  When a PAD-mode run overflows on a
skewed relation, the join transparently retries in HIST mode or falls
back to the CPU partitioner, per the chosen policy (Section 5.4).

Relations too large to partition in memory can come in pre-partitioned
on disk: :func:`hybrid_join_spilled` builds and probes directly from
two :class:`~repro.storage.spill.PartitionSpill` handles, memory-
mapping one partition pair at a time — the out-of-core completion of
the same join.
"""

from __future__ import annotations

from typing import Optional

from repro.core.model import FpgaCostModel
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner, OverflowPolicy
from repro.errors import ConfigurationError
from repro.join.build_probe import BuildProbeCostModel, shares_if_dense
from repro.join.radix_join import _join_partitions
from repro.join.timing import JoinResult, JoinTiming
from repro.platform.machine import XeonFpgaPlatform
from repro.workloads.relations import Workload


def _partition_timing(
    config: PartitionerConfig,
    pairs,
    fpga_cost_model: FpgaCostModel,
    threads: int,
    calibrated: bool,
):
    """Partitioning seconds + effective mode labels for a join's inputs.

    ``pairs`` is ``(tuple_bytes, output, n_timing)`` triples where
    ``output`` exposes ``fell_back_to_cpu`` and ``config`` — either a
    full :class:`~repro.core.partitioner.PartitionedOutput` or the
    fused executor's :class:`~repro.plan.executor.InputSummary`.  Each
    relation is timed by the mode that actually ran for it — overflow
    may have forced one (usually the skewed S) into HIST or onto the
    CPU, with the aborted PAD pass still charged (worst case of
    Section 5.4: detection at the very end of the run).
    """
    partition_seconds = 0.0
    effective_labels = []
    for tuple_bytes, output, n_timing in pairs:
        if output.fell_back_to_cpu:
            from repro.cpu.cost_model import CpuCostModel

            cpu_seconds = CpuCostModel().partitioning_seconds(
                n_timing,
                threads,
                hash_kind=config.hash_kind,
                num_partitions=config.num_partitions,
                tuple_bytes=tuple_bytes,
            )
            aborted = fpga_cost_model.partitioning_seconds(
                n_timing, config, calibrated=calibrated
            )
            partition_seconds += cpu_seconds + aborted
            effective_labels.append("cpu-fallback")
            continue
        partition_seconds += fpga_cost_model.partitioning_seconds(
            n_timing, output.config, calibrated=calibrated
        )
        if (
            config.output_mode is OutputMode.PAD
            and output.config.output_mode is OutputMode.HIST
        ):
            partition_seconds += fpga_cost_model.partitioning_seconds(
                n_timing, config, calibrated=calibrated
            )
            effective_labels.append(output.config.mode_label + "(retry)")
        else:
            effective_labels.append(output.config.mode_label)
    return partition_seconds, effective_labels


def hybrid_join(
    workload: Workload,
    config: Optional[PartitionerConfig] = None,
    threads: int = 1,
    collect_payloads: bool = False,
    on_overflow: OverflowPolicy = "hist",
    platform: Optional[XeonFpgaPlatform] = None,
    fpga_cost_model: Optional[FpgaCostModel] = None,
    bp_cost_model: Optional[BuildProbeCostModel] = None,
    calibrated: bool = True,
    timing_r_tuples: Optional[int] = None,
    timing_s_tuples: Optional[int] = None,
    engine=None,
    fused: bool = False,
) -> JoinResult:
    """Execute and time a hybrid FPGA/CPU radix hash join.

    Args:
        workload: the R/S pair.
        config: FPGA partitioner configuration (defaults to the paper's
            comparison mode PAD/RID with murmur hashing at 8192-way).
        threads: CPU threads for build+probe (the FPGA partitioning is
            thread-free; Section 5.1's "10-threaded hybrid join" means
            exactly this).
        collect_payloads: materialise matching payload pairs.
        on_overflow: PAD skew policy — "hist" (default; robust two-pass
            retry), "cpu" (software fallback) or "raise".
        platform: platform for traffic/coherence accounting.
        calibrated: apply the prototype calibration to the FPGA
            partitioning rate (Figure 9 end-to-end numbers) instead of
            the pure Section 4.8 model.
        timing_r_tuples / timing_s_tuples: evaluate the timing models
            at these relation sizes instead of the actual (possibly
            scaled-down) data sizes; the functional join still runs on
            the real data.
        engine: execution-engine spec (``None``, ``"parallel"``,
            ``"serial"``, ``"thread"``, ``"process"`` or an
            :class:`~repro.exec.engine.ExecutionEngine`); parallelises
            the partitioning phases and the per-partition build+probe
            without changing the functional result.
        fused: run through the plan layer's fused one-pass executor
            (:func:`repro.plan.execute_plan`) — build+probe starts per
            partition as soon as the scatter lands, with no
            materialized ``PartitionedOutput`` between the stages.
            Row-identical to the staged path; when fusion is declined
            (e.g. a ``platform`` is attached), the staged operators run
            with the reason recorded.

    Returns:
        A :class:`JoinResult`; ``timing.partitioner`` records the FPGA
        mode actually used (after any fallback).
    """
    if config is None:
        config = PartitionerConfig(
            output_mode=OutputMode.PAD, layout_mode=LayoutMode.RID
        )
    r, s = workload.r, workload.s
    if r.tuple_bytes != config.tuple_bytes:
        raise ConfigurationError(
            f"workload tuples are {r.tuple_bytes} B but the partitioner "
            f"is configured for {config.tuple_bytes} B"
        )

    from repro.exec.engine import resolve_engine

    engine = resolve_engine(engine, threads)

    if fused:
        from repro.plan import execute_plan, join_query

        result = execute_plan(
            join_query(
                r,
                s,
                config=config,
                on_overflow=on_overflow,
                collect_payloads=collect_payloads,
            ),
            engine=engine,
            platform=platform,
        )
        r_out, s_out = result.inputs
        matches, r_pay, s_pay = (
            result.matches, result.r_payloads, result.s_payloads
        )
    else:
        partitioner = FpgaPartitioner(
            config, platform=platform, engine=engine
        )
        r_out = partitioner.partition(r, on_overflow=on_overflow)
        s_out = partitioner.partition(s, on_overflow=on_overflow)

        matches, r_pay, s_pay = _join_partitions(
            r_out, s_out, collect_payloads, engine=engine
        )

    fell_back = r_out.fell_back_to_cpu or s_out.fell_back_to_cpu

    fpga_cost_model = fpga_cost_model or FpgaCostModel(
        bandwidth=platform.bandwidth if platform else None
    )
    bp_cost_model = bp_cost_model or BuildProbeCostModel()

    n_r = timing_r_tuples if timing_r_tuples is not None else len(r)
    n_s = timing_s_tuples if timing_s_tuples is not None else len(s)
    partition_seconds, effective_labels = _partition_timing(
        config,
        ((r.tuple_bytes, r_out, n_r), (s.tuple_bytes, s_out, n_s)),
        fpga_cost_model,
        threads,
        calibrated,
    )

    max_share = max(
        r_out.max_partition_tuples() / max(1, len(r)),
        s_out.max_partition_tuples() / max(1, len(s)),
    )
    bp = bp_cost_model.estimate(
        r_tuples=n_r,
        s_tuples=n_s,
        num_partitions=config.num_partitions,
        threads=threads,
        tuple_bytes=r.tuple_bytes,
        fpga_partitioned=not fell_back,
        max_partition_share=max_share,
        r_shares=shares_if_dense(r_out.counts, len(r)),
        s_shares=shares_if_dense(s_out.counts, len(s)),
    )
    label = (
        "cpu-fallback" if fell_back else f"fpga {'+'.join(effective_labels)}"
    )
    if fused:
        label += " fused"
    timing = JoinTiming(
        partition_seconds=partition_seconds,
        build_probe_seconds=bp.total_seconds,
        r_tuples=n_r,
        s_tuples=n_s,
        threads=threads,
        partitioner=label,
        num_partitions=config.num_partitions,
    )
    return JoinResult(
        matches=matches,
        r_payloads=r_pay,
        s_payloads=s_pay,
        timing=timing,
        fell_back_to_cpu=fell_back,
    )


def hybrid_join_spilled(
    r_spill,
    s_spill,
    threads: int = 1,
    collect_payloads: bool = False,
    fpga_cost_model: Optional[FpgaCostModel] = None,
    bp_cost_model: Optional[BuildProbeCostModel] = None,
    calibrated: bool = True,
    engine=None,
) -> JoinResult:
    """Build+probe a join from two spilled (on-disk) partitionings.

    Args:
        r_spill / s_spill: completed
            :class:`~repro.storage.spill.PartitionSpill` handles (e.g.
            from :meth:`SpillPartitioner.run <repro.storage.spill.
            SpillPartitioner.run>` or a spill-routed
            :class:`~repro.service.service.PartitionResponse`).  Both
            must share a fan-out; partition pairs are memory-mapped one
            at a time, so the working set is one pair, not the
            relations.
        threads / collect_payloads / cost models / calibrated / engine:
            as in :func:`hybrid_join`.  Partitioning seconds are timed
            by the mode each spill *effectively* ran (PAD runs demoted
            to HIST accounting at merge are charged the retry, exactly
            like the in-memory path).

    Returns:
        A :class:`JoinResult`; ``timing.partitioner`` is labelled
        ``"spill ..."``.
    """
    if r_spill.num_partitions != s_spill.num_partitions:
        raise ConfigurationError(
            f"spills disagree on fan-out: {r_spill.num_partitions} vs "
            f"{s_spill.num_partitions}"
        )
    r_out = r_spill.to_output()
    s_out = s_spill.to_output()

    from repro.exec.engine import resolve_engine

    engine = resolve_engine(engine, threads)
    matches, r_pay, s_pay = _join_partitions(
        r_out, s_out, collect_payloads, engine=engine
    )

    fpga_cost_model = fpga_cost_model or FpgaCostModel()
    bp_cost_model = bp_cost_model or BuildProbeCostModel()
    n_r, n_s = r_spill.num_tuples, s_spill.num_tuples
    partition_seconds = 0.0
    labels = []
    for spill, n in ((r_spill, n_r), (s_spill, n_s)):
        partition_seconds += fpga_cost_model.partitioning_seconds(
            n, spill.config, calibrated=calibrated
        )
        if spill.config != spill.requested_config:
            # PAD overflow demoted to HIST at merge: charge the
            # aborted PAD pass too, like the in-memory retry
            partition_seconds += fpga_cost_model.partitioning_seconds(
                n, spill.requested_config, calibrated=calibrated
            )
            labels.append(spill.config.mode_label + "(retry)")
        else:
            labels.append(spill.config.mode_label)

    max_share = max(
        r_out.max_partition_tuples() / max(1, n_r),
        s_out.max_partition_tuples() / max(1, n_s),
    )
    bp = bp_cost_model.estimate(
        r_tuples=n_r,
        s_tuples=n_s,
        num_partitions=r_spill.num_partitions,
        threads=threads,
        tuple_bytes=r_spill.config.tuple_bytes,
        fpga_partitioned=True,
        max_partition_share=max_share,
        r_shares=shares_if_dense(r_out.counts, n_r),
        s_shares=shares_if_dense(s_out.counts, n_s),
    )
    timing = JoinTiming(
        partition_seconds=partition_seconds,
        build_probe_seconds=bp.total_seconds,
        r_tuples=n_r,
        s_tuples=n_s,
        threads=threads,
        partitioner=f"spill {'+'.join(labels)}",
        num_partitions=r_spill.num_partitions,
    )
    return JoinResult(
        matches=matches,
        r_payloads=r_pay,
        s_payloads=s_pay,
        timing=timing,
    )
