"""Per-partition build + probe, functional kernel and cost model.

Functional side: :func:`build_probe_partition` joins one partition pair
with the bucket-chaining table.  Cost side:
:class:`BuildProbeCostModel` turns partition geometry into seconds,
capturing the three effects the paper's join figures hinge on:

* **cache fit** — partitions larger than the cache budget slow down
  per doubling (the "too few partitions" regime of Figure 10);
* **thread scaling with skew sensitivity** — threads split partitions,
  so the slowest thread is bounded below by the largest partition
  (visible in the Zipf experiment of Figure 13);
* **coherence** — after FPGA partitioning the CPU's random accesses
  into the partitions are snooped on the FPGA socket and slowed by the
  Table 1 factor, modelled as the calibrated
  ``HYBRID_BUILD_PROBE_PENALTY`` on build+probe time (Section 2.2's
  "the build+probe phase after the FPGA partitioning is always
  disadvantaged").
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.constants import (
    BP_CACHE_BUDGET_BYTES,
    BP_MISS_PENALTY_PER_DOUBLING,
    BUILD_CYCLES_PER_TUPLE,
    CPU_CLOCK_HZ,
    HYBRID_BUILD_PROBE_PENALTY,
    PROBE_CYCLES_PER_TUPLE,
)
from repro.errors import ConfigurationError
from repro.join.hash_table import BucketChainingHashTable

import math


def build_probe_partition(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
    collect_payloads: bool = True,
) -> Tuple[int, Optional[np.ndarray], Optional[np.ndarray], int]:
    """Join one partition pair.

    Returns ``(match_count, r_match_payloads, s_match_payloads,
    chain_hops)``; the payload arrays are None when
    ``collect_payloads=False`` (count-only joins, as used by the
    benchmarks to avoid materialisation costs the paper doesn't time).

    Key hashing inside the table goes through the ``kernels`` dispatch
    (GIL-free native murmur when the compiled backend is loaded), so
    concurrent per-partition build/probe tasks scale on threads.
    """
    if r_keys.shape[0] == 0 or s_keys.shape[0] == 0:
        return 0, (np.empty(0, np.uint32) if collect_payloads else None), (
            np.empty(0, np.uint32) if collect_payloads else None
        ), 0
    table = BucketChainingHashTable(r_keys)
    probe_idx, build_idx, hops = table.probe(s_keys)
    count = int(probe_idx.shape[0])
    if not collect_payloads:
        return count, None, None, hops
    return count, r_payloads[build_idx], s_payloads[probe_idx], hops


def shares_if_dense(
    counts: np.ndarray, num_tuples: int, min_per_partition: float = 8.0
) -> Optional[np.ndarray]:
    """Partition shares, or None when the sample is too sparse.

    The joins run on scaled-down data but are *timed* at paper-scale
    sizes; a share vector measured from a sample with fewer than
    ``min_per_partition`` tuples per partition is dominated by sampling
    noise (every occupied partition looks huge), so callers should fall
    back to the balanced estimate plus the max-share skew bound.
    """
    counts = np.asarray(counts)
    if num_tuples < min_per_partition * counts.size:
        return None
    return counts / max(1, num_tuples)


@dataclasses.dataclass(frozen=True)
class BuildProbeEstimate:
    """Time decomposition of the build+probe phase."""

    build_seconds: float
    probe_seconds: float
    cache_penalty: float
    coherence_penalty: float
    parallel_fraction: float

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.probe_seconds


class BuildProbeCostModel:
    """Seconds for the build+probe phase of a radix join."""

    def __init__(
        self,
        build_cycles: float = BUILD_CYCLES_PER_TUPLE,
        probe_cycles: float = PROBE_CYCLES_PER_TUPLE,
        clock_hz: float = CPU_CLOCK_HZ,
        cache_budget_bytes: int = BP_CACHE_BUDGET_BYTES,
    ):
        self.build_cycles = build_cycles
        self.probe_cycles = probe_cycles
        self.clock_hz = clock_hz
        self.cache_budget_bytes = cache_budget_bytes

    def cache_penalty(self, partition_bytes: float) -> float:
        """Slowdown when a partition exceeds the cache budget."""
        if partition_bytes <= self.cache_budget_bytes:
            return 1.0
        doublings = math.log2(partition_bytes / self.cache_budget_bytes)
        return 1.0 + BP_MISS_PENALTY_PER_DOUBLING * doublings

    def estimate(
        self,
        r_tuples: int,
        s_tuples: int,
        num_partitions: int,
        threads: int = 1,
        tuple_bytes: int = 8,
        fpga_partitioned: bool = False,
        max_partition_share: Optional[float] = None,
        r_shares: Optional[np.ndarray] = None,
        s_shares: Optional[np.ndarray] = None,
    ) -> BuildProbeEstimate:
        """Build+probe time for the whole join.

        Args:
            r_tuples / s_tuples: relation sizes.
            num_partitions: fan-out the partitioning produced.
            threads: CPU threads working partition-at-a-time.
            tuple_bytes: tuple width (sets the partition byte size).
            fpga_partitioned: partitions were written by the FPGA —
                applies the coherence penalty.
            max_partition_share: largest partition's share of the
                build relation (defaults to the balanced 1/fanout, or
                to ``r_shares.max()`` when shares are given); bounds
                thread scaling under skew.
            r_shares / s_shares: per-partition fractions of R and S
                (summing to ~1).  When given, the cache penalty is
                charged per partition at its *actual* size — which is
                what makes unbalanced radix partitions slower to join
                than balanced hash partitions (Figure 12).
        """
        if threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        if num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        coherence = HYBRID_BUILD_PROBE_PENALTY if fpga_partitioned else 1.0

        if r_shares is not None:
            r_shares = np.asarray(r_shares, dtype=np.float64)
            if s_shares is None:
                s_shares = r_shares
            else:
                s_shares = np.asarray(s_shares, dtype=np.float64)
            partition_bytes = r_shares * r_tuples * tuple_bytes
            penalties = np.array(
                [self.cache_penalty(b) for b in partition_bytes]
            )
            # effective (tuple-weighted) penalties for each phase: the
            # probe of partition p walks chains inside R's partition p,
            # so both phases key off the build side's partition size.
            build_weight = float((r_shares * penalties).sum())
            probe_weight = float((s_shares * penalties).sum())
            penalty = build_weight  # reported headline penalty
            if max_partition_share is None:
                max_partition_share = float(r_shares.max())
        else:
            avg_partition_bytes = r_tuples * tuple_bytes / num_partitions
            penalty = self.cache_penalty(avg_partition_bytes)
            build_weight = probe_weight = penalty
            if max_partition_share is None:
                max_partition_share = 1.0 / num_partitions

        # The slowest thread does at least the largest partition, at
        # best 1/threads of everything.
        parallel_fraction = max(1.0 / threads, max_partition_share)

        build = (
            r_tuples * self.build_cycles / self.clock_hz
        ) * build_weight * parallel_fraction
        probe = (
            s_tuples * self.probe_cycles / self.clock_hz
        ) * probe_weight * parallel_fraction * coherence
        # The build reads FPGA-written partitions *sequentially*, so its
        # coherence cost is the mild Table 1 sequential factor folded
        # into the calibrated constant's probe share; we charge the
        # full constant on the probe (random access) and the sequential
        # ~1.11x on the build.
        if fpga_partitioned:
            build *= 1.11
        return BuildProbeEstimate(
            build_seconds=build,
            probe_seconds=probe,
            cache_penalty=penalty,
            coherence_penalty=coherence,
            parallel_fraction=parallel_fraction,
        )
