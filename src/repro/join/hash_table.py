"""Cache-resident bucket-chaining hash table ([21], Section 3.3).

The build+probe kernel of the radix join, following Manegold et al.:
the build side's tuples stay where the partitioner put them; the "hash
table" is an index over them — an array of bucket heads plus a `next`
chain, both indices into the partition.  Build appends each tuple to
the front of its bucket's chain; probe walks the chain comparing keys.

The implementation is fully vectorised but *structurally faithful*:

* the chains are materialised exactly as the scalar algorithm would
  build them (head = last inserted tuple of the bucket, ``next``
  pointing to earlier ones);
* the probe advances all active probes one chain hop per iteration, so
  the number of vector iterations equals the longest chain walked —
  the same memory-access structure the CPU implementation has, which
  is also what the random-access coherence penalty of Section 2.2
  applies to.

Bucket count defaults to the next power of two >= the build size, a
load factor <= 1 as in [3].
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.hashing import murmur3_finalizer
from repro.errors import ConfigurationError

_EMPTY = np.int64(-1)


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


class BucketChainingHashTable:
    """Bucket-chaining index over a build-side key array."""

    def __init__(self, keys: np.ndarray, num_buckets: Optional[int] = None):
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        n = int(keys.shape[0])
        if n == 0:
            raise ConfigurationError("cannot build a hash table on 0 tuples")
        if num_buckets is None:
            num_buckets = max(2, _next_pow2(n))
        if num_buckets & (num_buckets - 1):
            raise ConfigurationError(
                f"num_buckets must be a power of two, got {num_buckets}"
            )
        self.keys = keys
        self.num_buckets = num_buckets
        self.mask = np.uint32(num_buckets - 1)
        self._build()

    def _bucket_of(self, keys: np.ndarray) -> np.ndarray:
        """In-table hash: murmur over the key, masked to buckets.

        The radix join already consumed the low key/hash bits for
        partitioning, so the in-table hash must mix the remaining
        entropy — the same reason the C implementations re-hash here.
        """
        return (murmur3_finalizer(keys) & self.mask).astype(np.int64)

    def _build(self) -> None:
        n = self.keys.shape[0]
        buckets = self._bucket_of(self.keys)
        heads = np.full(self.num_buckets, _EMPTY, dtype=np.int64)
        nxt = np.full(n, _EMPTY, dtype=np.int64)
        # Chain construction, vectorised: within each bucket, tuple i's
        # `next` is the previous (lower-index) tuple of that bucket and
        # the head is the bucket's last tuple — identical chains to the
        # scalar front-insertion loop.
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        same_as_prev = np.zeros(n, dtype=bool)
        same_as_prev[1:] = sorted_buckets[1:] == sorted_buckets[:-1]
        # element order[k]'s predecessor in its chain is order[k-1]
        # when both share a bucket, else it terminates the chain
        prev = np.full(n, _EMPTY, dtype=np.int64)
        prev[1:] = np.where(same_as_prev[1:], order[:-1], _EMPTY)
        nxt[order] = prev
        # head of each bucket = its last element in sorted order
        is_last = np.ones(n, dtype=bool)
        is_last[:-1] = sorted_buckets[:-1] != sorted_buckets[1:]
        heads[sorted_buckets[is_last]] = order[is_last]
        self.heads = heads
        self.next = nxt
        self.buckets = buckets

    # ------------------------------------------------------------------

    def probe(
        self, probe_keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Find all matches for a probe key array.

        Returns ``(probe_idx, build_idx, chain_hops)`` — the matching
        index pairs (a probe key with k build-side duplicates yields k
        pairs) and the total number of chain hops walked (the
        random-access count the cost models charge for).
        """
        probe_keys = np.ascontiguousarray(probe_keys, dtype=np.uint32)
        m = int(probe_keys.shape[0])
        if m == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), 0

        current = self.heads[self._bucket_of(probe_keys)]
        probe_idx_parts = []
        build_idx_parts = []
        hops = 0
        active = np.nonzero(current != _EMPTY)[0]
        cursor = current[active]
        while active.size:
            hops += int(active.size)
            matched = self.keys[cursor] == probe_keys[active]
            if matched.any():
                probe_idx_parts.append(active[matched])
                build_idx_parts.append(cursor[matched])
            cursor = self.next[cursor]
            alive = cursor != _EMPTY
            active = active[alive]
            cursor = cursor[alive]

        if probe_idx_parts:
            probe_idx = np.concatenate(probe_idx_parts)
            build_idx = np.concatenate(build_idx_parts)
        else:
            probe_idx = np.empty(0, dtype=np.int64)
            build_idx = np.empty(0, dtype=np.int64)
        return probe_idx, build_idx, hops

    def probe_scalar(self, key: int) -> list:
        """Scalar chain walk (reference implementation for tests)."""
        bucket = int(self._bucket_of(np.array([key], dtype=np.uint32))[0])
        matches = []
        cursor = int(self.heads[bucket])
        while cursor != int(_EMPTY):
            if int(self.keys[cursor]) == int(np.uint32(key)):
                matches.append(cursor)
            cursor = int(self.next[cursor])
        return matches

    @property
    def max_chain_length(self) -> int:
        counts = np.bincount(self.buckets, minlength=self.num_buckets)
        return int(counts.max()) if counts.size else 0
