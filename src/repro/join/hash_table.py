"""Cache-resident bucket-chaining hash table ([21], Section 3.3).

The build+probe kernel of the radix join, following Manegold et al.:
the build side's tuples stay where the partitioner put them; the "hash
table" is an index over them — an array of bucket heads plus a `next`
chain, both indices into the partition.  Build appends each tuple to
the front of its bucket's chain; probe walks the chain comparing keys.

The implementation is fully vectorised but *structurally faithful*:

* the chains are materialised exactly as the scalar algorithm would
  build them (head = last inserted tuple of the bucket, ``next``
  pointing to earlier ones);
* the probe advances all active probes one chain hop per iteration, so
  the number of vector iterations equals the longest chain walked —
  the same memory-access structure the CPU implementation has, which
  is also what the random-access coherence penalty of Section 2.2
  applies to.

Bucket count defaults to the next power of two >= the build size, a
load factor <= 1 as in [3].
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import kernels
from repro.errors import ConfigurationError
from repro.kernels import numpy_impl

_EMPTY = np.int64(-1)


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


class BucketChainingHashTable:
    """Bucket-chaining index over a build-side key array."""

    def __init__(self, keys: np.ndarray, num_buckets: Optional[int] = None):
        keys = np.ascontiguousarray(keys, dtype=np.uint32)
        n = int(keys.shape[0])
        if n == 0:
            raise ConfigurationError("cannot build a hash table on 0 tuples")
        if num_buckets is None:
            num_buckets = max(2, _next_pow2(n))
        if num_buckets & (num_buckets - 1):
            raise ConfigurationError(
                f"num_buckets must be a power of two, got {num_buckets}"
            )
        self.keys = keys
        self.num_buckets = num_buckets
        self.mask = np.uint32(num_buckets - 1)
        self._build()

    def _bucket_of(self, keys: np.ndarray) -> np.ndarray:
        """In-table hash: the HIGH bits of the murmur hash.

        The radix join already consumed the LOW hash bits for
        partitioning; indexing the table with the same masked hash
        would collapse every key of a partition into a handful of
        buckets (``num_buckets / fan_out``) and degenerate the chains.
        The top murmur bits are independent of the partition index.
        Must match the bucket computation inside both kernel backends —
        only the diagnostics (``probe_scalar``, ``max_chain_length``)
        call this Python path.
        """
        return numpy_impl._join_buckets(
            np.ascontiguousarray(keys, dtype=np.uint32), self.num_buckets
        )

    def _build(self) -> None:
        # Chain construction through the kernels dispatch: the native
        # backend runs the scalar front-insertion loop in C, the NumPy
        # fallback builds the same chains vectorised (within each
        # bucket, tuple i's `next` is the previous lower-index tuple
        # and the head is the bucket's last tuple).
        self.heads, self.next = kernels.bucket_build(
            self.keys, self.num_buckets
        )

    @property
    def buckets(self) -> np.ndarray:
        """Per-build-tuple bucket index (computed on demand)."""
        return self._bucket_of(self.keys)

    # ------------------------------------------------------------------

    def probe(
        self, probe_keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Find all matches for a probe key array.

        Returns ``(probe_idx, build_idx, chain_hops)`` — the matching
        index pairs (a probe key with k build-side duplicates yields k
        pairs) and the total number of chain hops walked (the
        random-access count the cost models charge for).
        """
        probe_keys = np.ascontiguousarray(probe_keys, dtype=np.uint32)
        m = int(probe_keys.shape[0])
        if m == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), 0
        # One kernels call for the whole walk: the native backend runs
        # it GIL-free in C; both backends emit matches probe-major
        # (each probe's matches in chain order, probes in input order),
        # so the match ordering is backend-invariant.
        return kernels.bucket_probe(
            self.keys, self.heads, self.next, self.num_buckets, probe_keys
        )

    def probe_scalar(self, key: int) -> list:
        """Scalar chain walk (reference implementation for tests)."""
        bucket = int(self._bucket_of(np.array([key], dtype=np.uint32))[0])
        matches = []
        cursor = int(self.heads[bucket])
        while cursor != int(_EMPTY):
            if int(self.keys[cursor]) == int(np.uint32(key)):
                matches.append(cursor)
            cursor = int(self.next[cursor])
        return matches

    @property
    def max_chain_length(self) -> int:
        counts = np.bincount(self.buckets, minlength=self.num_buckets)
        return int(counts.max()) if counts.size else 0
