"""Logical plan nodes: ``scan → partition → build/probe → aggregate``.

A :class:`LogicalPlan` describes one query over one or two inputs as a
small chain of declarative nodes.  The plan says *what* runs — which
relations, which partitioning config, whether a join and/or a group-by
aggregation follows — and the compiler (:mod:`repro.plan.compiler`)
decides *how*: fused into one morsel-driven pass, or staged through the
classic materializing operators when fusion is declined.

Supported chain shapes (the four the repo's operators cover):

* ``scan → partition → collect`` — plain partitioning;
* ``scan → partition → aggregate`` — partitioned group-by;
* ``scan ×2 → partition ×2 → join`` — radix/hybrid hash join;
* ``scan ×2 → partition ×2 → join → aggregate`` — join then group-by
  on the join key.

A scan's source may be an in-memory :class:`~repro.workloads.relations.
Relation` (or bare key array), or an on-disk
:class:`~repro.storage.spill.PartitionSpill` — spilled inputs arrive
pre-partitioned and stream partition-by-partition through the plan.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.core.modes import PartitionerConfig
from repro.core.partitioner import OverflowPolicy
from repro.errors import ConfigurationError
from repro.workloads.relations import Relation

__all__ = [
    "AggregateNode",
    "CollectNode",
    "JoinNode",
    "LogicalPlan",
    "PartitionNode",
    "ScanNode",
    "groupby_query",
    "join_groupby_query",
    "join_query",
    "partition_query",
]

#: aggregates the plan layer accepts (same set as partitioned_groupby)
AGGREGATES = ("sum", "count", "min", "max", "mean")


def _is_spill(source) -> bool:
    """Duck-typed spill detection (PartitionSpill-shaped handles)."""
    return hasattr(source, "counts") and hasattr(source, "to_output")


@dataclasses.dataclass(frozen=True)
class ScanNode:
    """Leaf input: an in-memory relation/array or a partition spill.

    Args:
        source: a :class:`Relation`, a ``uint32`` key array, or a
            :class:`~repro.storage.spill.PartitionSpill` handle (the
            input then arrives pre-partitioned on disk).
        payloads: payload column when ``source`` is a bare key array
            (``None`` means positional record ids, as everywhere else).
        name: label used in summaries and spans.
    """

    source: object
    payloads: Optional[np.ndarray] = None
    name: str = "scan"

    @property
    def is_spilled(self) -> bool:
        return _is_spill(self.source)

    @property
    def num_tuples(self) -> int:
        if self.is_spilled:
            return int(self.source.num_tuples)
        if isinstance(self.source, Relation):
            return len(self.source)
        return int(np.asarray(self.source).shape[0])


@dataclasses.dataclass(frozen=True)
class PartitionNode:
    """Hash-partition one scan.

    ``config=None`` lets the compiler plan the fan-out (per-partition
    build tables sized to the build+probe cache budget); a spilled scan
    ignores this node's config — its partitioning already happened.
    """

    config: Optional[PartitionerConfig] = None
    on_overflow: OverflowPolicy = "raise"


@dataclasses.dataclass(frozen=True)
class JoinNode:
    """Per-partition build (R side) + probe (S side).

    ``collect_payloads`` materializes the matching payload pairs, as in
    the staged joins.
    """

    collect_payloads: bool = False


@dataclasses.dataclass(frozen=True)
class AggregateNode:
    """Group-by aggregation keyed on the (join) key.

    After a join, ``value_side`` picks which relation's payload column
    feeds the aggregate (``"s"`` — the probe side — or ``"r"``).  For a
    plain group-by the values come from the scan (payloads for spilled
    inputs, an explicit column or all-ones otherwise).
    """

    aggregate: str = "sum"
    value_side: str = "s"

    def __post_init__(self):
        if self.aggregate not in AGGREGATES:
            raise ConfigurationError(
                f"unknown aggregate {self.aggregate!r}; "
                f"expected one of {sorted(AGGREGATES)}"
            )
        if self.value_side not in ("r", "s"):
            raise ConfigurationError(
                f"value_side must be 'r' or 's', got {self.value_side!r}"
            )


@dataclasses.dataclass(frozen=True)
class CollectNode:
    """Terminal: materialize the chain's result for the caller."""


@dataclasses.dataclass(frozen=True)
class LogicalPlan:
    """One query: scans, their partition nodes, optional join/aggregate.

    ``scans`` and ``partitions`` align (one partition node per scan);
    a two-scan plan must carry a :class:`JoinNode`.  ``values`` is the
    explicit aggregation column for single-input group-by plans.
    """

    scans: Tuple[ScanNode, ...]
    partitions: Tuple[PartitionNode, ...]
    join: Optional[JoinNode] = None
    aggregate: Optional[AggregateNode] = None
    collect: CollectNode = dataclasses.field(default_factory=CollectNode)
    values: Optional[np.ndarray] = None

    def __post_init__(self):
        if len(self.scans) not in (1, 2):
            raise ConfigurationError(
                f"a plan takes 1 or 2 scans, got {len(self.scans)}"
            )
        if len(self.partitions) != len(self.scans):
            raise ConfigurationError(
                "each scan needs exactly one partition node"
            )
        if (len(self.scans) == 2) != (self.join is not None):
            raise ConfigurationError(
                "two-scan plans need a JoinNode and vice versa"
            )
        if self.values is not None and self.join is not None:
            raise ConfigurationError(
                "explicit values apply to group-by plans only; a join "
                "aggregates a payload side (AggregateNode.value_side)"
            )

    def describe(self) -> str:
        """Human-readable chain, e.g. ``scan×2 → partition → join →
        aggregate(sum) → collect``."""
        stages = [
            f"scan×{len(self.scans)}",
            "partition",
        ]
        if self.join is not None:
            stages.append("join")
        if self.aggregate is not None:
            stages.append(f"aggregate({self.aggregate.aggregate})")
        stages.append("collect")
        return " → ".join(stages)


# ----------------------------------------------------------------------
# Plan builders (the shapes the operators wire to)
# ----------------------------------------------------------------------

def partition_query(
    source,
    payloads: Optional[np.ndarray] = None,
    config: Optional[PartitionerConfig] = None,
    on_overflow: OverflowPolicy = "raise",
) -> LogicalPlan:
    """``scan → partition → collect``."""
    return LogicalPlan(
        scans=(ScanNode(source, payloads, name="input"),),
        partitions=(PartitionNode(config, on_overflow),),
    )


def groupby_query(
    source,
    values: Optional[np.ndarray] = None,
    aggregate: str = "sum",
    config: Optional[PartitionerConfig] = None,
    on_overflow: OverflowPolicy = "raise",
) -> LogicalPlan:
    """``scan → partition → aggregate → collect``.

    A :class:`Relation` source aggregates its payload column (unless
    ``values`` overrides it); the scan partitions ``<key, row-id>`` so
    the executor gathers values per partition.
    """
    if isinstance(source, Relation):
        if values is None:
            values = source.payloads
        source = source.keys
    return LogicalPlan(
        scans=(ScanNode(source, name="input"),),
        partitions=(PartitionNode(config, on_overflow),),
        aggregate=AggregateNode(aggregate),
        values=values,
    )


def join_query(
    r,
    s,
    config: Optional[PartitionerConfig] = None,
    on_overflow: OverflowPolicy = "hist",
    collect_payloads: bool = False,
    r_payloads: Optional[np.ndarray] = None,
    s_payloads: Optional[np.ndarray] = None,
) -> LogicalPlan:
    """``scan ×2 → partition ×2 → join → collect``."""
    return LogicalPlan(
        scans=(
            ScanNode(r, r_payloads, name="r"),
            ScanNode(s, s_payloads, name="s"),
        ),
        partitions=(
            PartitionNode(config, on_overflow),
            PartitionNode(config, on_overflow),
        ),
        join=JoinNode(collect_payloads),
    )


def join_groupby_query(
    r,
    s,
    aggregate: str = "sum",
    value_side: str = "s",
    config: Optional[PartitionerConfig] = None,
    on_overflow: OverflowPolicy = "hist",
    collect_payloads: bool = False,
) -> LogicalPlan:
    """``scan ×2 → partition ×2 → join → aggregate → collect``."""
    return LogicalPlan(
        scans=(ScanNode(r, name="r"), ScanNode(s, name="s")),
        partitions=(
            PartitionNode(config, on_overflow),
            PartitionNode(config, on_overflow),
        ),
        join=JoinNode(collect_payloads),
        aggregate=AggregateNode(aggregate, value_side),
    )
