"""Plan compiler: fuse the chain, or decline with a reason.

``compile_plan`` turns a :class:`~repro.plan.nodes.LogicalPlan` into a
:class:`CompiledSchedule` — the resolved per-input configs plus the
knobs (engine, tracer, optimizer) the executor needs.  Compilation
checks the **fusion rules**:

1. every input of a join must share the partition-relevant config
   (fan-out, hash kind, hash-vs-radix) — a key must land in the same
   partition on both sides, and a spilled input's partitioning is
   already fixed on disk;
2. there must be a downstream consumer (join or aggregate): a
   partition-only plan has nothing to fuse into, so the materialized
   :class:`~repro.core.partitioner.PartitionedOutput` *is* the result;
3. no platform attached: coherence/QPI accounting is defined over
   materialized FPGA-written regions, which the fused pass never
   assembles.

Rule 1 failing is a :class:`~repro.errors.ConfigurationError` (the
staged path cannot run it either); rules 2–3 raise
:class:`FusionDeclined`, which the executor catches to fall back to
staged execution with the reason recorded on the result.

When no config is given, the fan-out comes from the optimizer:
:func:`~repro.optimize.optimizer.plan_fused_fanout` sizes partitions so
each per-partition build table fits the build+probe cache budget.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.core.modes import PartitionerConfig
from repro.errors import ConfigurationError, ReproError
from repro.plan.nodes import LogicalPlan

__all__ = ["CompiledSchedule", "FusionDeclined", "compile_plan"]


class FusionDeclined(ReproError):
    """The plan cannot be fused; carries the human-readable reason."""

    def __init__(self, reason: str):
        super().__init__(f"fusion declined: {reason}")
        self.reason = reason


@dataclasses.dataclass
class CompiledSchedule:
    """A compiled plan: resolved configs + execution knobs.

    ``configs`` aligns with ``plan.scans`` and holds each input's
    *requested* partitioner config (a spilled input contributes the
    config its spill effectively ran).  ``on_overflow`` is the PAD
    policy shared by the in-memory partition nodes.
    """

    plan: LogicalPlan
    configs: Tuple[PartitionerConfig, ...]
    on_overflow: str
    engine: object = None
    tracer: object = None
    optimizer: object = None

    @property
    def num_partitions(self) -> int:
        return self.configs[0].num_partitions


def _partition_signature(config: PartitionerConfig) -> tuple:
    """The config fields that decide *which partition a key lands in*."""
    return (config.num_partitions, config.hash_kind, config.uses_hash)


def _default_config(plan: LogicalPlan, optimizer) -> PartitionerConfig:
    """Plan a config for scans that did not bring one.

    Fan-out sizes the *build side* (scan 0) per-partition table to the
    build+probe cache budget; HIST mode because the fused chain keeps
    partitions as lazy slices (PAD's single-pass layout buys nothing
    while its overflow risk remains).
    """
    build_tuples = plan.scans[0].num_tuples
    if optimizer is not None and hasattr(optimizer, "plan_chain_config"):
        return optimizer.plan_chain_config(build_tuples)
    from repro.optimize.optimizer import plan_fused_fanout

    return PartitionerConfig(num_partitions=plan_fused_fanout(build_tuples))


def compile_plan(
    plan: LogicalPlan,
    engine=None,
    threads: Optional[int] = None,
    tracer=None,
    optimizer=None,
    platform=None,
) -> CompiledSchedule:
    """Compile a plan into a fused schedule (or raise).

    Raises:
        FusionDeclined: the plan is executable but not fusable (rules
            2–3 above); callers fall back to staged execution.
        ConfigurationError: the plan is invalid for *any* execution
            path (e.g. join inputs that partition keys differently).
    """
    from repro.exec.engine import resolve_engine
    from repro.obs.tracing import resolve_tracer

    configs: List[Optional[PartitionerConfig]] = []
    policies = set()
    for scan, node in zip(plan.scans, plan.partitions):
        if scan.is_spilled:
            if node.config is not None and _partition_signature(
                node.config
            ) != _partition_signature(scan.source.config):
                raise ConfigurationError(
                    f"scan {scan.name!r} is spilled with "
                    f"{scan.source.config.num_partitions}-way "
                    f"{scan.source.config.hash_kind.value} partitioning; "
                    "the partition node requests an incompatible config"
                )
            configs.append(scan.source.config)
        else:
            configs.append(node.config)
            policies.add(node.on_overflow)

    if len(policies) > 1:
        raise ConfigurationError(
            f"partition nodes disagree on the overflow policy: {policies}"
        )
    on_overflow = policies.pop() if policies else "raise"

    # One shared config for the chain: explicit ones must agree on the
    # partition function; config-less in-memory scans inherit it (or a
    # freshly planned one when nobody brought a config).
    explicit = [c for c in configs if c is not None]
    if explicit:
        signatures = {_partition_signature(c) for c in explicit}
        if len(signatures) > 1:
            raise ConfigurationError(
                "join inputs partition keys differently "
                f"({[c.mode_label + f'/{c.num_partitions}' for c in explicit]}); "
                "repartition one side first"
            )
        shared = explicit[0]
    else:
        shared = _default_config(plan, optimizer)
    resolved = tuple(c if c is not None else shared for c in configs)

    if plan.join is None and plan.aggregate is None:
        raise FusionDeclined(
            "partition-only plan: no downstream operator to fuse, the "
            "materialized PartitionedOutput is the result"
        )
    if platform is not None:
        raise FusionDeclined(
            "platform accounting requires materialized partition "
            "regions (coherence directory tracks FPGA-written memory)"
        )

    return CompiledSchedule(
        plan=plan,
        configs=resolved,
        on_overflow=on_overflow,
        engine=resolve_engine(engine, threads, tracer=tracer),
        tracer=resolve_tracer(tracer),
        optimizer=optimizer,
    )
