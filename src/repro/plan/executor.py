"""Plan execution: one fused morsel-driven pass, or the staged fallback.

The fused executor is the point of the plan layer: as soon as an
input's partitions are scattered, the downstream build/probe and
reduceat aggregation run **per partition, immediately, on the same
worker pool** — intermediates are never assembled into a full
:class:`~repro.core.partitioner.PartitionedOutput`.  Concretely:

* in-memory inputs run histogram → overflow check → scatter through
  :meth:`ExecutionEngine.begin_partition
  <repro.exec.engine.ExecutionEngine.begin_partition>` (or the kernels
  directly without an engine); the scattered columns are wrapped in a
  lazy boundary view (:class:`_FusedColumns`) whose per-partition
  slices feed the next operator directly;
* spilled inputs skip partitioning entirely — each partition is
  memory-mapped on demand, so the chain streams the spill
  partition-by-partition without ever loading it whole;
* the per-partition tasks (build+probe, then group-starts + reduceat)
  fan out over :meth:`ExecutionEngine.map_tasks`, and their results
  merge in partition order — which is what makes the fused output
  **row-identical** to the staged operators: every key lives in
  exactly one partition, stable scatter preserves within-partition
  order, and the final stable sort runs over *distinct* group keys.

PAD overflow inside the fused pass keeps the staged policies: partition
*contents* are mode- and backend-independent (pinned repo-wide), so the
``hist``/``cpu`` fallbacks proceed with the already-computed scatter and
only the effective mode label (for cost-model timing) changes;
``raise`` aborts before the scatter exactly like the hardware.

The staged path (``fused=False``, or a :class:`FusionDeclined` plan)
runs the same chain through the classic materializing operators —
full ``PartitionedOutput`` per input, concatenated match columns, a
fresh partitioning pass for the group-by — and is the identity oracle
the property tests and benchmarks compare against.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.core.partitioner import FpgaPartitioner, PartitionedOutput
from repro.core.tuples import check_payloads_valid
from repro.errors import ConfigurationError, PartitionOverflowError
from repro.join.hash_table import BucketChainingHashTable
from repro.obs.tracing import operator_times, resolve_tracer
from repro.ops.groupby import _aggregate_runs, _group_starts
from repro.plan.compiler import CompiledSchedule, FusionDeclined, compile_plan
from repro.plan.nodes import LogicalPlan, ScanNode
from repro.workloads.relations import Relation

__all__ = ["InputSummary", "QueryResult", "execute_plan"]


@dataclasses.dataclass
class InputSummary:
    """Per-input partitioning summary (duck-compatible with the
    ``PartitionedOutput`` fields the join timing models read)."""

    name: str
    tuples: int
    counts: np.ndarray
    config: PartitionerConfig
    requested_config: PartitionerConfig
    fell_back_to_cpu: bool = False
    spilled: bool = False

    def max_partition_tuples(self) -> int:
        """Largest partition size (the PAD overflow-check quantity)."""
        return int(self.counts.max()) if self.counts.size else 0


@dataclasses.dataclass
class QueryResult:
    """What a plan produced (fused or staged — identical rows).

    ``declined`` records why a ``fused=True`` request fell back to
    staged execution; ``operator_stats`` holds the fused pass's
    per-operator call/busy-time accumulation.
    """

    num_partitions: int
    fused: bool
    inputs: List[InputSummary]
    matches: Optional[int] = None
    r_payloads: Optional[np.ndarray] = None
    s_payloads: Optional[np.ndarray] = None
    group_keys: Optional[np.ndarray] = None
    group_values: Optional[np.ndarray] = None
    aggregate: Optional[str] = None
    outputs: Optional[List[PartitionedOutput]] = None
    declined: Optional[str] = None
    operator_stats: Dict[str, dict] = dataclasses.field(default_factory=dict)

    @property
    def num_groups(self) -> int:
        return 0 if self.group_keys is None else int(self.group_keys.shape[0])


class _FusedColumns:
    """Lazy per-partition views over freshly scattered columns.

    The fused substitute for a ``PartitionedOutput``: holds only the
    two sorted columns and the boundary prefix sum; each
    ``partition(p)`` call builds two views.  Nothing else — no line
    accounting, no slices list, no traffic counters.
    """

    __slots__ = ("keys", "payloads", "boundaries")

    def __init__(self, keys, payloads, boundaries):
        self.keys = keys
        self.payloads = payloads
        self.boundaries = boundaries

    def partition(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = self.boundaries[p], self.boundaries[p + 1]
        return self.keys[lo:hi], self.payloads[lo:hi]


class _SpillColumns:
    """Adapter giving a spill handle the ``_FusedColumns`` surface."""

    __slots__ = ("spill",)

    def __init__(self, spill):
        self.spill = spill

    def partition(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.spill.partition(p)


def execute_plan(
    plan: LogicalPlan,
    engine=None,
    threads: Optional[int] = None,
    fused: bool = True,
    tracer=None,
    optimizer=None,
    platform=None,
) -> QueryResult:
    """Compile and run a plan.

    ``fused=True`` (default) runs the one-pass schedule and falls back
    to staged execution — recording the reason — when the compiler
    declines fusion; ``fused=False`` forces the staged operators (the
    identity baseline).
    """
    tracer = resolve_tracer(tracer)
    declined = None
    try:
        schedule = compile_plan(
            plan,
            engine=engine,
            threads=threads,
            tracer=tracer,
            optimizer=optimizer,
            platform=platform,
        )
    except FusionDeclined as fell:
        declined = fell.reason
        schedule = _staged_schedule(plan, engine, threads, tracer, optimizer)
    if fused and declined is None:
        return _execute_fused(schedule)
    result = _execute_staged(schedule, platform=platform)
    result.declined = declined if fused else None
    return result


def _staged_schedule(plan, engine, threads, tracer, optimizer):
    """Resolve configs for a declined plan without the fusion rules."""
    from repro.exec.engine import resolve_engine

    configs = []
    for scan, node in zip(plan.scans, plan.partitions):
        if scan.is_spilled:
            configs.append(scan.source.config)
        else:
            configs.append(node.config or PartitionerConfig(
                num_partitions=256
            ))
    policies = {
        node.on_overflow
        for scan, node in zip(plan.scans, plan.partitions)
        if not scan.is_spilled
    }
    return CompiledSchedule(
        plan=plan,
        configs=tuple(configs),
        on_overflow=policies.pop() if policies else "raise",
        engine=resolve_engine(engine, threads, tracer=tracer),
        tracer=resolve_tracer(tracer),
        optimizer=optimizer,
    )


# ----------------------------------------------------------------------
# Shared input normalization
# ----------------------------------------------------------------------

def _extract_columns(
    scan: ScanNode, config: PartitionerConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Mirror of ``FpgaPartitioner._extract_columns`` for plan scans."""
    source = scan.source
    if isinstance(source, Relation):
        keys, payloads = source.keys, source.payloads
    else:
        keys = np.ascontiguousarray(source, dtype=np.uint32)
        if config.layout_mode is LayoutMode.VRID or scan.payloads is None:
            payloads = np.arange(keys.shape[0], dtype=np.uint32)
        else:
            payloads = np.ascontiguousarray(scan.payloads, dtype=np.uint32)
    if config.layout_mode is LayoutMode.VRID:
        payloads = np.arange(keys.shape[0], dtype=np.uint32)
    if keys.shape != payloads.shape:
        raise ConfigurationError("keys and payloads must align")
    if keys.size == 0:
        raise ConfigurationError("cannot partition an empty relation")
    check_payloads_valid(payloads)
    return keys, payloads


def _check_overflow(
    config: PartitionerConfig, lines_per_partition: np.ndarray, n: int
) -> Optional[Tuple[int, int]]:
    """PAD capacity check (same arithmetic as the partitioner's)."""
    if config.output_mode is not OutputMode.PAD:
        return None
    per_line = config.tuples_per_line
    capacity_lines = config.partition_capacity(n) // per_line
    overflowed = np.nonzero(lines_per_partition > capacity_lines)[0]
    if overflowed.size:
        return int(overflowed[0]), capacity_lines * per_line
    return None


# ----------------------------------------------------------------------
# The fused pass
# ----------------------------------------------------------------------

def _prepare_fused_input(scan, config, on_overflow, engine, ops):
    """Histogram + overflow check + scatter for one in-memory input
    (spilled inputs pass straight through as memmap partitions)."""
    if scan.is_spilled:
        spill = scan.source
        summary = InputSummary(
            name=scan.name,
            tuples=int(spill.num_tuples),
            counts=np.asarray(spill.counts, dtype=np.int64),
            config=spill.config,
            requested_config=spill.requested_config,
            spilled=True,
        )
        return _SpillColumns(spill), summary

    keys, payloads = _extract_columns(scan, config)
    n = int(keys.shape[0])
    per_line = config.tuples_per_line
    effective = config
    fell_back = False

    if engine is not None:
        task = engine.begin_partition(
            keys,
            payloads,
            config.num_partitions,
            config.uses_hash,
            lanes=config.num_lanes,
        )
        try:
            with ops.time("partition.histogram"):
                counts = task.counts
                lines = (-(-task.lane_counts // per_line)).sum(axis=1)
            overflow = _check_overflow(config, lines, n)
            if overflow is not None:
                effective, fell_back = _overflow_labels(
                    config, overflow, n, on_overflow
                )
            with ops.time("partition.scatter"):
                sorted_keys, sorted_payloads = task.scatter()
        finally:
            task.close()
    else:
        with ops.time("partition.histogram"):
            parts, counts, lane_counts = kernels.hash_histogram(
                keys,
                config.num_partitions,
                config.uses_hash,
                lanes=config.num_lanes,
            )
        lines = (-(-lane_counts // per_line)).sum(axis=1)
        overflow = _check_overflow(config, lines, n)
        if overflow is not None:
            effective, fell_back = _overflow_labels(
                config, overflow, n, on_overflow
            )
        with ops.time("partition.scatter"):
            partition_base = np.zeros(config.num_partitions, dtype=np.int64)
            np.cumsum(counts[:-1], out=partition_base[1:])
            sorted_keys = np.empty(n, dtype=np.uint32)
            sorted_payloads = np.empty(n, dtype=np.uint32)
            kernels.stable_scatter(
                keys, payloads, parts, partition_base,
                config.num_partitions, sorted_keys, sorted_payloads,
            )

    boundaries = np.zeros(config.num_partitions + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    summary = InputSummary(
        name=scan.name,
        tuples=n,
        counts=np.asarray(counts, dtype=np.int64),
        config=effective,
        requested_config=config,
        fell_back_to_cpu=fell_back,
    )
    return _FusedColumns(sorted_keys, sorted_payloads, boundaries), summary


def _overflow_labels(config, overflow, n, on_overflow):
    """Apply a PAD-overflow policy inside the fused pass.

    Partition contents are identical across modes and backends (same
    hash, same stable order — pinned by the kernel identity tests), so
    the ``hist`` and ``cpu`` fallbacks keep the already-computed
    scatter and only change the *labels* the cost models see:
    ``hist`` demotes the effective config, ``cpu`` flags the fallback.
    ``raise`` aborts before any data moves, like the hardware.
    """
    if on_overflow == "raise":
        raise PartitionOverflowError(
            partition=overflow[0], capacity=overflow[1], tuples_seen=n
        )
    if on_overflow == "hist":
        return (
            dataclasses.replace(config, output_mode=OutputMode.HIST),
            False,
        )
    if on_overflow == "cpu":
        return config, True
    raise ConfigurationError(
        f"unknown overflow policy {on_overflow!r}; "
        "expected 'raise', 'hist' or 'cpu'"
    )


def _execute_fused(schedule: CompiledSchedule) -> QueryResult:
    plan = schedule.plan
    engine = schedule.engine
    tracer = schedule.tracer
    ops = operator_times(tracer)
    num_partitions = schedule.num_partitions

    with tracer.span(
        "plan.execute",
        fused=True,
        chain=plan.describe(),
        partitions=num_partitions,
    ) as root:
        prepared = [
            _prepare_fused_input(
                scan, cfg, schedule.on_overflow, engine, ops
            )
            for scan, cfg in zip(plan.scans, schedule.configs)
        ]
        inputs = [columns for columns, _ in prepared]
        summaries = [summary for _, summary in prepared]

        result = QueryResult(
            num_partitions=num_partitions,
            fused=True,
            inputs=summaries,
        )
        if plan.join is not None:
            _fused_join(plan, inputs, engine, ops, result)
        else:
            _fused_groupby(plan, inputs[0], summaries[0], engine, ops, result)
        ops.emit(tracer, parent=root)
        result.operator_stats = ops.to_dict()
        return result


#: float64 integer sums stay exact below 2^53; past that the bincount
#: fast path could round where the staged reduceat would not.
_EXACT_F64 = 1 << 53


def _fused_partition_agg(
    aggregate: str,
    build_keys: np.ndarray,
    build_idx: np.ndarray,
    probe_keys: np.ndarray,
    probe_idx: np.ndarray,
    match_values: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate one partition's matches grouped by key.

    The fused operator still holds the join's internal build index, so
    ``sum``/``count``/``mean`` aggregate per *build tuple* with a
    bincount — no sort of the match stream — and only the matched build
    tuples get sorted for the final per-key grouping.  The staged
    pipeline cannot do this: by the time ``partitioned_groupby`` runs,
    the matches are a flat key/value stream and the build index is
    gone.  Exactness: integer values accumulate exactly in the float64
    bincount while the largest possible group sum stays below 2^53
    (checked), so the results are bit-identical to the staged reduceat;
    outside that envelope — and for ``min``/``max`` — the sort-based
    grouping runs instead.
    """
    fast = aggregate in ("sum", "count", "mean")
    if fast and aggregate != "count":
        if match_values.dtype.kind not in "iu" or (
            match_values.size
            and int(probe_idx.shape[0]) * int(match_values.max())
            >= _EXACT_F64
        ):
            fast = False
    if not fast:
        match_keys = probe_keys[probe_idx]
        uniques, starts = _group_starts(match_keys, match_values)
        return uniques, _aggregate_runs(
            aggregate, starts["values"], starts["bounds"]
        )
    n = int(build_keys.shape[0])
    counts = np.bincount(build_idx, minlength=n)
    if counts.min() > 0:  # every build tuple matched (common FK case)
        keys_c = build_keys
        counts_c = counts
        matched = None
    else:
        matched = counts > 0
        keys_c = build_keys[matched]
        counts_c = counts[matched]
    order = np.argsort(keys_c, kind="stable")
    sorted_keys = keys_c[order]
    boundaries = np.empty(sorted_keys.shape[0], dtype=bool)
    boundaries[0] = True
    boundaries[1:] = sorted_keys[1:] != sorted_keys[:-1]
    starts = np.nonzero(boundaries)[0]
    uniques = sorted_keys[starts]
    count_runs = np.add.reduceat(counts_c[order], starts)
    if aggregate == "count":
        return uniques, count_runs.astype(np.int64)
    sums = np.bincount(build_idx, weights=match_values, minlength=n)
    if matched is not None:
        sums = sums[matched]
    sum_runs = np.add.reduceat(sums[order], starts)
    if aggregate == "sum":
        return uniques, sum_runs.astype(np.int64)
    return uniques, sum_runs / count_runs


def _fused_join(plan, inputs, engine, ops, result: QueryResult) -> None:
    """Per-partition build+probe (+ immediate reduceat aggregation)."""
    r_in, s_in = inputs
    join = plan.join
    agg = plan.aggregate
    collect = join.collect_payloads

    def _one(p: int):
        r_keys, r_pays = r_in.partition(p)
        s_keys, s_pays = s_in.partition(p)
        if r_keys.shape[0] == 0 or s_keys.shape[0] == 0:
            return 0, None, None, None, None
        with ops.time("join.build_probe"):
            table = BucketChainingHashTable(r_keys)
            probe_idx, build_idx, _hops = table.probe(s_keys)
        count = int(probe_idx.shape[0])
        r_pay = s_pay = None
        if collect and count:
            r_pay = np.asarray(r_pays)[build_idx]
            s_pay = np.asarray(s_pays)[probe_idx]
        uniques = values = None
        if agg is not None and count:
            if agg.value_side == "s":
                match_values = np.asarray(s_pays)[probe_idx]
            else:
                match_values = np.asarray(r_pays)[build_idx]
            with ops.time("aggregate.reduce"):
                uniques, values = _fused_partition_agg(
                    agg.aggregate,
                    np.asarray(table.keys),
                    build_idx,
                    np.asarray(s_keys),
                    probe_idx,
                    match_values,
                )
        return count, r_pay, s_pay, uniques, values

    partitions = range(result.num_partitions)
    if engine is not None:
        outcomes = engine.map_tasks(_one, partitions)
    else:
        outcomes = [_one(p) for p in partitions]

    matches = 0
    r_parts: List[np.ndarray] = []
    s_parts: List[np.ndarray] = []
    g_keys: List[np.ndarray] = []
    g_values: List[np.ndarray] = []
    for count, r_pay, s_pay, uniques, values in outcomes:
        matches += count
        if r_pay is not None:
            r_parts.append(r_pay)
            s_parts.append(s_pay)
        if uniques is not None:
            g_keys.append(uniques)
            g_values.append(values)

    result.matches = matches
    if collect:
        result.r_payloads = (
            np.concatenate(r_parts) if r_parts else np.empty(0, np.uint32)
        )
        result.s_payloads = (
            np.concatenate(s_parts) if s_parts else np.empty(0, np.uint32)
        )
    if agg is not None:
        _merge_groups(g_keys, g_values, agg.aggregate, result)


def _fused_groupby(plan, columns, summary, engine, ops, result) -> None:
    """Per-partition group-starts + reduceat straight off the scatter."""
    agg = plan.aggregate
    spilled = summary.spilled
    values = plan.values
    if not spilled and values is None:
        values = np.ones(summary.tuples, dtype=np.uint32)
    if values is not None:
        values = np.asarray(values)
        if values.shape[0] != summary.tuples:
            raise ConfigurationError("values must align with keys")

    def _one(p: int):
        p_keys, p_rows = columns.partition(p)
        if p_keys.shape[0] == 0:
            return None
        # in-memory scans partitioned <key, row-id>: gather the value
        # column; a spilled scan's payloads *are* its values unless an
        # explicit column reinterprets them as row ids
        if values is None:
            p_values = np.asarray(p_rows)
        else:
            p_values = values[np.asarray(p_rows)]
        with ops.time("aggregate.reduce"):
            uniques, starts = _group_starts(np.asarray(p_keys), p_values)
            return uniques, _aggregate_runs(
                agg.aggregate, starts["values"], starts["bounds"]
            )

    partitions = range(result.num_partitions)
    if engine is not None:
        outcomes = engine.map_tasks(_one, partitions)
    else:
        outcomes = [_one(p) for p in partitions]

    g_keys = [u for out in outcomes if out is not None for u in (out[0],)]
    g_values = [v for out in outcomes if out is not None for v in (out[1],)]
    _merge_groups(g_keys, g_values, agg.aggregate, result)


def _merge_groups(g_keys, g_values, aggregate, result: QueryResult) -> None:
    """Concatenate per-partition groups; final stable sort by key.

    No cross-partition merge is needed — a key lives in exactly one
    partition — so the sort runs over *distinct* keys and the
    concatenation order cannot affect the result.
    """
    if g_keys:
        all_keys = np.concatenate(g_keys)
        all_values = np.concatenate(g_values)
    else:
        all_keys = np.empty(0, dtype=np.uint32)
        all_values = np.empty(0)
    order = np.argsort(all_keys, kind="stable")
    result.group_keys = all_keys[order]
    result.group_values = all_values[order]
    result.aggregate = aggregate


# ----------------------------------------------------------------------
# The staged reference path
# ----------------------------------------------------------------------

def _materialize_input(scan, config, on_overflow, engine, platform):
    """Full ``PartitionedOutput`` for one input (the staged way)."""
    if scan.is_spilled:
        output = scan.source.to_output()
        summary = InputSummary(
            name=scan.name,
            tuples=int(scan.source.num_tuples),
            counts=np.asarray(output.counts, dtype=np.int64),
            config=scan.source.config,
            requested_config=scan.source.requested_config,
            spilled=True,
        )
        return output, summary
    keys, payloads = _extract_columns(scan, config)
    partitioner = FpgaPartitioner(config, platform=platform, engine=engine)
    output = partitioner.partition(keys, payloads, on_overflow=on_overflow)
    summary = InputSummary(
        name=scan.name,
        tuples=int(keys.shape[0]),
        counts=np.asarray(output.counts, dtype=np.int64),
        config=output.config,
        requested_config=config,
        fell_back_to_cpu=output.fell_back_to_cpu,
    )
    return output, summary


def _execute_staged(
    schedule: CompiledSchedule, platform=None
) -> QueryResult:
    """The materializing pipeline: every stage assembles its output."""
    plan = schedule.plan
    engine = schedule.engine
    tracer = schedule.tracer
    num_partitions = schedule.num_partitions

    with tracer.span(
        "plan.execute",
        fused=False,
        chain=plan.describe(),
        partitions=num_partitions,
    ):
        prepared = [
            _materialize_input(
                scan, cfg, schedule.on_overflow, engine, platform
            )
            for scan, cfg in zip(plan.scans, schedule.configs)
        ]
        outputs = [output for output, _ in prepared]
        summaries = [summary for _, summary in prepared]
        result = QueryResult(
            num_partitions=num_partitions,
            fused=False,
            inputs=summaries,
        )
        if plan.join is not None:
            _staged_join(plan, outputs, engine, result)
        elif plan.aggregate is not None:
            _staged_groupby(plan, outputs[0], summaries[0], engine, result)
        else:
            result.outputs = outputs
        return result


def _staged_join(plan, outputs, engine, result: QueryResult) -> None:
    """Join all partitions, materializing the match columns, then (for
    an aggregate) re-partition the matches through the staged
    group-by — the extra pass the fused path avoids."""
    r_out, s_out = outputs
    agg = plan.aggregate
    collect = plan.join.collect_payloads

    if agg is None:
        from repro.join.radix_join import _join_partitions

        matches, r_pay, s_pay = _join_partitions(
            r_out, s_out, collect, engine=engine
        )
        result.matches = matches
        result.r_payloads = r_pay
        result.s_payloads = s_pay
        return

    def _one(p: int):
        r_keys, r_pays = r_out.partition(p)
        s_keys, s_pays = s_out.partition(p)
        if r_keys.shape[0] == 0 or s_keys.shape[0] == 0:
            return None
        table = BucketChainingHashTable(r_keys)
        probe_idx, build_idx, _hops = table.probe(s_keys)
        if probe_idx.shape[0] == 0:
            return None
        match_keys = np.asarray(s_keys)[probe_idx]
        if agg.value_side == "s":
            match_values = np.asarray(s_pays)[probe_idx]
        else:
            match_values = np.asarray(r_pays)[build_idx]
        r_pay = s_pay = None
        if collect:
            r_pay = np.asarray(r_pays)[build_idx]
            s_pay = np.asarray(s_pays)[probe_idx]
        return match_keys, match_values, r_pay, s_pay

    partitions = range(result.num_partitions)
    if engine is not None:
        outcomes = engine.map_tasks(_one, partitions)
    else:
        outcomes = [_one(p) for p in partitions]
    outcomes = [out for out in outcomes if out is not None]

    # the staged intermediate: the full concatenated match columns
    if outcomes:
        match_keys = np.concatenate([out[0] for out in outcomes])
        match_values = np.concatenate([out[1] for out in outcomes])
    else:
        match_keys = np.empty(0, dtype=np.uint32)
        match_values = np.empty(0, dtype=np.uint32)
    result.matches = int(match_keys.shape[0])
    if collect:
        r_parts = [out[2] for out in outcomes if out[2] is not None]
        s_parts = [out[3] for out in outcomes if out[3] is not None]
        result.r_payloads = (
            np.concatenate(r_parts) if r_parts else np.empty(0, np.uint32)
        )
        result.s_payloads = (
            np.concatenate(s_parts) if s_parts else np.empty(0, np.uint32)
        )

    if match_keys.shape[0] == 0:
        result.group_keys = np.empty(0, dtype=np.uint32)
        result.group_values = np.empty(0)
        result.aggregate = agg.aggregate
        return
    from repro.ops.groupby import partitioned_groupby

    grouped = partitioned_groupby(
        match_keys,
        match_values,
        aggregate=agg.aggregate,
        num_partitions=result.num_partitions,
    )
    result.group_keys = grouped.keys
    result.group_values = grouped.values
    result.aggregate = agg.aggregate


def _staged_groupby(plan, output, summary, engine, result) -> None:
    """Aggregate a fully materialized partitioning, partition by
    partition (the classic ``partitioned_groupby`` loop)."""
    agg = plan.aggregate
    values = plan.values
    if not summary.spilled and values is None:
        values = np.ones(summary.tuples, dtype=np.uint32)
    if values is not None:
        values = np.asarray(values)
        if values.shape[0] != summary.tuples:
            raise ConfigurationError("values must align with keys")

    g_keys: List[np.ndarray] = []
    g_values: List[np.ndarray] = []
    for p in range(result.num_partitions):
        p_keys, p_rows = output.partition(p)
        if p_keys.shape[0] == 0:
            continue
        if values is None:
            p_values = np.asarray(p_rows)
        else:
            p_values = values[np.asarray(p_rows)]
        uniques, starts = _group_starts(np.asarray(p_keys), p_values)
        g_keys.append(uniques)
        g_values.append(
            _aggregate_runs(agg.aggregate, starts["values"], starts["bounds"])
        )
    _merge_groups(g_keys, g_values, agg.aggregate, result)
