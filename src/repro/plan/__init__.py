"""Logical plans and the fused dataflow pipeline compiler.

Build a plan with the query builders (:func:`join_query`,
:func:`join_groupby_query`, :func:`groupby_query`,
:func:`partition_query`), then run it with :func:`execute_plan` — the
compiler fuses ``partition → build/probe → aggregate`` into one
morsel-driven pass with no materialized intermediates, falling back to
the staged operators (with the reason recorded) when fusion is
declined.  See ``docs/PIPELINE.md``.
"""

from repro.plan.compiler import CompiledSchedule, FusionDeclined, compile_plan
from repro.plan.executor import InputSummary, QueryResult, execute_plan
from repro.plan.nodes import (
    AGGREGATES,
    AggregateNode,
    CollectNode,
    JoinNode,
    LogicalPlan,
    PartitionNode,
    ScanNode,
    groupby_query,
    join_groupby_query,
    join_query,
    partition_query,
)

__all__ = [
    "AGGREGATES",
    "AggregateNode",
    "CollectNode",
    "CompiledSchedule",
    "FusionDeclined",
    "InputSummary",
    "JoinNode",
    "LogicalPlan",
    "PartitionNode",
    "QueryResult",
    "ScanNode",
    "compile_plan",
    "execute_plan",
    "groupby_query",
    "join_groupby_query",
    "join_query",
    "partition_query",
]
