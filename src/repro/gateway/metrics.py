"""Gateway observability: counters, gauges, latency histograms.

Mirrors :class:`repro.service.metrics.ServiceMetrics` in shape so one
exporter serves both: :meth:`GatewayMetrics.to_dict` produces the
``{"counters": ..., "gauges": ..., "latency": ...}`` snapshot that
:func:`repro.obs.export.prometheus_from_snapshot` renders, here under
the ``repro_gateway`` prefix (connections, frames, bytes, backpressure
stalls, per-chunk and per-stream latency).
"""

from __future__ import annotations

import threading
import time
from typing import Dict

from repro.service.metrics import LatencyHistogram

#: every counter the gateway increments — exports always carry the full
#: set (zeros included) so dashboards need no existence checks
GATEWAY_COUNTERS = (
    "connections_opened",
    "connections_closed",
    "streams_opened",
    "streams_completed",
    "streams_failed",
    "streams_drained",
    "frames_in",
    "frames_out",
    "bytes_in",
    "bytes_out",
    "chunks_in",
    "chunks_out",
    "tuples_in",
    "backpressure_stalls",
    "credits_granted",
    "errors_sent",
    "protocol_errors",
    "optimizer_plans",
)

#: latency histograms: one per chunk round-trip, one per whole stream
GATEWAY_STAGES = ("chunk", "stream")


class GatewayMetrics:
    """Thread-safe metrics registry for one gateway server.

    Written from the event loop and (for executor-side chunk waits)
    worker threads, hence the lock despite the mostly-async callers.
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self.started_at = clock()
        self.counters: Dict[str, int] = {
            name: 0 for name in GATEWAY_COUNTERS
        }
        self.gauges: Dict[str, float] = {
            "open_connections": 0,
            "open_streams": 0,
            "inflight_chunks": 0,
            # high-water mark of any single stream's in-flight window —
            # the slow-consumer isolation bound (must stay <= credits)
            "max_stream_window": 0,
        }
        self.histograms: Dict[str, LatencyHistogram] = {
            stage: LatencyHistogram() for stage in GATEWAY_STAGES
        }

    def increment(self, counter: str, amount: int = 1) -> None:
        """Add to a counter (must be one of :data:`GATEWAY_COUNTERS`)."""
        with self._lock:
            self.counters[counter] += amount

    def observe(self, stage: str, seconds: float) -> None:
        """Record one chunk/stream latency observation."""
        with self._lock:
            self.histograms[stage].record(seconds)

    def adjust_gauge(self, gauge: str, delta: float) -> float:
        """Add ``delta`` to a gauge; returns the new value."""
        with self._lock:
            self.gauges[gauge] += delta
            return self.gauges[gauge]

    def set_gauge_max(self, gauge: str, value: float) -> None:
        """Raise a high-water-mark gauge to ``value`` if it is higher."""
        with self._lock:
            if value > self.gauges[gauge]:
                self.gauges[gauge] = value

    def snapshot(self) -> dict:
        """Alias of :meth:`to_dict` (conventional metrics name)."""
        return self.to_dict()

    def to_dict(self) -> dict:
        """JSON-native export of every counter, gauge and histogram."""
        with self._lock:
            elapsed = max(1e-9, self._clock() - self.started_at)
            return {
                "elapsed_s": elapsed,
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "latency": {
                    stage: hist.to_dict()
                    for stage, hist in self.histograms.items()
                },
            }

    def to_prometheus(self, labels: Dict[str, str] | None = None) -> str:
        """Prometheus text exposition under the ``repro_gateway`` prefix."""
        from repro.obs.export import prometheus_from_snapshot

        return prometheus_from_snapshot(
            self.to_dict(), prefix="repro_gateway", labels=labels
        )
