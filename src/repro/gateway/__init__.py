"""Async streaming gateway — the network edge of the partition stack.

The subsystem the ROADMAP's "millions of users" north star was missing:
a dependency-free asyncio TCP front-end that turns in-process
:class:`~repro.service.service.PartitionService` /
:class:`~repro.cluster.router.ShardRouter` calls into long-lived
network streams of *unbounded* relations, with credit-based flow
control, incremental partitioned results, and a final manifest that
makes the stitched client-side output **byte-identical** to one offline
:meth:`~repro.core.partitioner.FpgaPartitioner.partition` call.

* :mod:`~repro.gateway.protocol` — the length-prefixed frame protocol
  (JSON control frames + raw little-endian data frames);
* :mod:`~repro.gateway.chunking` — global accounting + stitching (the
  spill partitioner's byte-identity recipe, carried over a socket);
* :mod:`~repro.gateway.server` — :class:`GatewayServer`: accept,
  chunk-submit, stream back, drain on SIGTERM;
* :mod:`~repro.gateway.client` — :class:`GatewayClient`: the asyncio
  client library used by tests, benchmarks and the CLI;
* :mod:`~repro.gateway.metrics` — :class:`GatewayMetrics`: Prometheus
  series under the ``repro_gateway`` prefix.

CLI verbs: ``repro gateway serve`` / ``repro gateway bench``.  The
protocol spec and backpressure/drain contracts live in
``docs/GATEWAY.md``.
"""

from repro.gateway.chunking import (
    StreamAccounting,
    chunk_config,
    global_payloads,
    iter_chunks,
    outputs_identical,
    stitch_output,
)
from repro.gateway.client import GatewayClient, GatewayStream, stream_partition
from repro.gateway.metrics import GATEWAY_COUNTERS, GatewayMetrics
from repro.gateway.protocol import (
    ErrorCode,
    FrameType,
    GatewayDraining,
    GatewayProtocolError,
    GatewayStreamError,
    PROTOCOL_VERSION,
)
from repro.gateway.server import GatewayServer

__all__ = [
    "ErrorCode",
    "FrameType",
    "GATEWAY_COUNTERS",
    "GatewayClient",
    "GatewayDraining",
    "GatewayMetrics",
    "GatewayProtocolError",
    "GatewayServer",
    "GatewayStream",
    "GatewayStreamError",
    "PROTOCOL_VERSION",
    "StreamAccounting",
    "chunk_config",
    "global_payloads",
    "iter_chunks",
    "outputs_identical",
    "stitch_output",
    "stream_partition",
]
