"""Wire protocol of the streaming gateway.

One TCP connection carries one partition stream.  After an 8-byte
preamble (``b"RPGW"`` + little-endian ``u32`` protocol version) every
message is a length-prefixed frame::

    +------+----------------+-------------------+
    | type | payload length | payload           |
    | u8   | u32 LE         | `length` bytes    |
    +------+----------------+-------------------+

Control frames (:data:`FrameType.HELLO`, ``HELLO_OK``, ``CREDIT``,
``END``, ``MANIFEST``, ``ERROR``, ``GOAWAY``) carry UTF-8 JSON objects.
Data-plane frames are raw little-endian binary:

* ``DATA`` (client → server): ``u32 seq | u32 n`` then ``n`` LE-u32
  keys, then (iff the HELLO declared ``has_payloads``) ``n`` LE-u32
  payloads.
* ``CHUNK`` (server → client): ``u32 seq | u32 n`` then one LE-u32
  tuple count per partition, then the chunk's keys concatenated in
  partition order, then the matching payloads.

The full frame grammar, the credit contract, and the error codes are
documented in ``docs/GATEWAY.md``.
"""

from __future__ import annotations

import asyncio
import enum
import json
import struct
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError

#: connection preamble: magic + protocol version
MAGIC = b"RPGW"
PROTOCOL_VERSION = 1
PREAMBLE = MAGIC + struct.pack("<I", PROTOCOL_VERSION)

#: frame header: type byte + little-endian payload length
_HEADER = struct.Struct("<BI")

#: hard per-frame ceiling — a corrupt length prefix must not allocate
#: unbounded memory server-side
MAX_FRAME_BYTES = 64 << 20

#: DATA / CHUNK binary prefix: sequence number + tuple count
_DATA_PREFIX = struct.Struct("<II")


class FrameType(enum.IntEnum):
    """Every frame type on the wire (see module docstring)."""

    HELLO = 1  # client → server: stream open (JSON)
    HELLO_OK = 2  # server → client: stream accepted (JSON)
    DATA = 3  # client → server: one chunk of keys[/payloads] (binary)
    CHUNK = 4  # server → client: one partitioned chunk (binary)
    CREDIT = 5  # server → client: flow-control notice (JSON)
    END = 6  # client → server: end of stream (JSON)
    MANIFEST = 7  # server → client: final global accounting (JSON)
    ERROR = 8  # server → client: stream failed (JSON)
    GOAWAY = 9  # server → client: stream cut short by drain (JSON)


class ErrorCode(str, enum.Enum):
    """``code`` field of ERROR frames — the structured outcomes."""

    REJECTED = "rejected"  # admission queue stayed full past retry budget
    DEADLINE = "deadline"  # per-chunk deadline expired service-side
    OVERFLOW = "overflow"  # PAD capacity exceeded under "raise" policy
    DRAINING = "draining"  # server refused the stream while draining
    PROTOCOL = "protocol"  # malformed frame / handshake
    FAILED = "failed"  # backend execution error


class GatewayProtocolError(ReproError):
    """A peer violated the frame grammar or the handshake."""


class GatewayStreamError(ReproError):
    """A stream terminated with an ERROR frame.

    Carries the structured fields so callers can branch on
    :attr:`code` (an :class:`ErrorCode` value) and honour
    :attr:`retry_after`.
    """

    def __init__(
        self,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ):
        self.code = code
        self.retry_after = retry_after
        super().__init__(f"[{code}] {message}")


class GatewayDraining(GatewayStreamError):
    """The server drained mid-stream (GOAWAY after flushing in-flight).

    :attr:`chunks_flushed` says how many CHUNK frames were delivered
    before the cut, so a client that kept them can resume elsewhere.
    """

    def __init__(self, message: str, chunks_flushed: int = 0):
        self.chunks_flushed = chunks_flushed
        super().__init__(ErrorCode.DRAINING.value, message)


# -- frame encode ------------------------------------------------------


def encode_frame(frame_type: int, payload: bytes) -> bytes:
    """One frame, header included."""
    if len(payload) > MAX_FRAME_BYTES:
        raise GatewayProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )
    return _HEADER.pack(int(frame_type), len(payload)) + payload


def encode_json(frame_type: int, obj: dict) -> bytes:
    """A JSON control frame."""
    return encode_frame(
        frame_type, json.dumps(obj, separators=(",", ":")).encode()
    )


def encode_data(
    seq: int, keys: np.ndarray, payloads: Optional[np.ndarray]
) -> bytes:
    """A client DATA frame (payload column iff the stream declared one)."""
    keys = np.ascontiguousarray(keys, dtype="<u4")
    body = _DATA_PREFIX.pack(seq, keys.shape[0]) + keys.tobytes()
    if payloads is not None:
        payloads = np.ascontiguousarray(payloads, dtype="<u4")
        if payloads.shape[0] != keys.shape[0]:
            raise GatewayProtocolError(
                f"payload column length {payloads.shape[0]} != key "
                f"column length {keys.shape[0]}"
            )
        body += payloads.tobytes()
    return encode_frame(FrameType.DATA, body)


def decode_data(
    payload: bytes, has_payloads: bool
) -> Tuple[int, np.ndarray, Optional[np.ndarray]]:
    """``(seq, keys, payloads-or-None)`` of one DATA frame."""
    if len(payload) < _DATA_PREFIX.size:
        raise GatewayProtocolError("truncated DATA frame")
    seq, n = _DATA_PREFIX.unpack_from(payload)
    columns = 2 if has_payloads else 1
    expected = _DATA_PREFIX.size + columns * 4 * n
    if len(payload) != expected:
        raise GatewayProtocolError(
            f"DATA frame of {len(payload)} bytes does not match "
            f"{n} tuples x {columns} columns"
        )
    keys = np.frombuffer(payload, dtype="<u4", count=n, offset=_DATA_PREFIX.size)
    pays = (
        np.frombuffer(
            payload, dtype="<u4", count=n, offset=_DATA_PREFIX.size + 4 * n
        )
        if has_payloads
        else None
    )
    return seq, keys, pays


def _fill_column(out: np.ndarray, columns: Sequence[np.ndarray]) -> None:
    """Write per-partition arrays into ``out`` as one column.

    Fast path: a :class:`~repro.core.partitioner.PartitionSlices` whose
    backing array is still the exact concatenation of its slices copies
    in one memcpy; anything else concatenates the views.
    """
    contiguous = getattr(columns, "contiguous", None)
    if contiguous is not None:
        column = contiguous()
        if column is not None and column.shape[0] == out.shape[0]:
            out[:] = column
            return
    np.concatenate(list(columns), out=out)


def encode_chunk(
    seq: int,
    counts: np.ndarray,
    keys: Sequence[np.ndarray],
    payloads: Sequence[np.ndarray],
) -> bytes:
    """A server CHUNK frame from one chunk's per-partition arrays.

    Hot path (once per chunk per stream): the frame is assembled in a
    single preallocated buffer with one copy per column (see
    :func:`_fill_column`) instead of per-partition ``tobytes()``
    copies — at 64 partitions that is 2 C-level calls instead of ~128
    small Python-level ones.
    """
    counts32 = np.ascontiguousarray(counts, dtype="<u4")
    num_partitions = counts32.shape[0]
    n = int(counts32.sum())
    payload_len = _DATA_PREFIX.size + 4 * num_partitions + 8 * n
    if payload_len > MAX_FRAME_BYTES:
        raise GatewayProtocolError(
            f"frame payload of {payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )
    frame = bytearray(_HEADER.size + payload_len)
    _HEADER.pack_into(frame, 0, int(FrameType.CHUNK), payload_len)
    _DATA_PREFIX.pack_into(frame, _HEADER.size, seq, n)
    body = np.frombuffer(
        frame,
        dtype="<u4",
        offset=_HEADER.size + _DATA_PREFIX.size,
        count=num_partitions + 2 * n,
    )
    body[:num_partitions] = counts32
    if n:
        _fill_column(body[num_partitions:num_partitions + n], keys)
        _fill_column(body[num_partitions + n:], payloads)
    return bytes(frame)


def decode_chunk(
    payload: bytes, num_partitions: int
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """``(seq, counts, keys, payloads)`` — key/payload columns are the
    chunk's tuples concatenated in partition order; split with
    ``np.split(column, np.cumsum(counts)[:-1])``."""
    header = _DATA_PREFIX.size + 4 * num_partitions
    if len(payload) < header:
        raise GatewayProtocolError("truncated CHUNK frame")
    seq, n = _DATA_PREFIX.unpack_from(payload)
    counts = np.frombuffer(
        payload, dtype="<u4", count=num_partitions, offset=_DATA_PREFIX.size
    ).astype(np.int64)
    if len(payload) != header + 8 * n or int(counts.sum()) != n:
        raise GatewayProtocolError(
            f"CHUNK frame of {len(payload)} bytes does not match "
            f"{n} tuples across {num_partitions} partitions"
        )
    keys = np.frombuffer(payload, dtype="<u4", count=n, offset=header)
    pays = np.frombuffer(payload, dtype="<u4", count=n, offset=header + 4 * n)
    return seq, counts, keys, pays


# -- frame decode ------------------------------------------------------


async def read_preamble(reader: asyncio.StreamReader) -> int:
    """Validate the connection preamble; returns the peer's version."""
    try:
        raw = await reader.readexactly(len(PREAMBLE))
    except asyncio.IncompleteReadError as exc:
        raise GatewayProtocolError("connection closed before preamble") from exc
    if raw[:4] != MAGIC:
        raise GatewayProtocolError(f"bad magic {raw[:4]!r} (want {MAGIC!r})")
    (version,) = struct.unpack("<I", raw[4:])
    if version != PROTOCOL_VERSION:
        raise GatewayProtocolError(
            f"protocol version {version} unsupported "
            f"(speaks {PROTOCOL_VERSION})"
        )
    return version


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Tuple[FrameType, bytes]:
    """Read one frame; raises :class:`asyncio.IncompleteReadError` on
    clean EOF mid-read and :class:`GatewayProtocolError` on garbage."""
    header = await reader.readexactly(_HEADER.size)
    type_byte, length = _HEADER.unpack(header)
    try:
        frame_type = FrameType(type_byte)
    except ValueError as exc:
        raise GatewayProtocolError(f"unknown frame type {type_byte}") from exc
    if length > max_bytes:
        raise GatewayProtocolError(
            f"{frame_type.name} frame of {length} bytes exceeds the "
            f"{max_bytes}-byte ceiling"
        )
    payload = await reader.readexactly(length) if length else b""
    return frame_type, payload


def decode_json(payload: bytes) -> dict:
    """Parse a JSON control-frame payload."""
    try:
        obj = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GatewayProtocolError(f"bad JSON control frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise GatewayProtocolError("control frame payload must be an object")
    return obj
