"""The asyncio streaming gateway server.

:class:`GatewayServer` is the network front-end of the partitioning
stack: one TCP connection per partition stream, unbounded input chunked
by the client, each chunk submitted through a
:class:`~repro.service.service.PartitionService` (or a
:class:`~repro.cluster.router.ShardRouter` in cluster mode) under the
HIST/RID chunk-plane config, results streamed back incrementally, and a
final MANIFEST frame carrying the global accounting so the client's
stitched output is byte-identical to one offline ``partition()`` call
(see :mod:`repro.gateway.chunking`).

Flow control is credit-based and maps straight onto the admission
queue's backpressure:

* the HELLO_OK grants a window of ``credits`` chunks; every CHUNK (or
  ERROR) frame returns one credit, so a client never has more than
  ``credits`` DATA frames unacknowledged;
* server-side the same window is an :class:`asyncio.Queue` bound — when
  it fills, the connection's read loop simply stops reading, which
  stalls the *sender* through TCP, never server memory;
* a slow *consumer* (client that stops reading) blocks the connection's
  write path in ``writer.drain()`` — again only its own stream stalls;
* an :class:`~repro.service.queue.AdmissionQueue` rejection pauses the
  stream for the queue's ``retry_after`` hint and tells the client with
  a CREDIT notice frame (``backpressure_stalls`` counts them).

On SIGTERM the server drains: stops accepting, stops reading new DATA,
flushes every in-flight chunk, emits GOAWAY end-of-stream frames, and
(when it owns the backend) calls
:meth:`~repro.service.service.PartitionService.drain`.
"""

from __future__ import annotations

import asyncio
import signal
import time
from typing import Optional, Set

import numpy as np

from repro.errors import PartitionOverflowError, ReproError
from repro.gateway import protocol
from repro.gateway.chunking import (
    StreamAccounting,
    chunk_config,
    global_payloads,
)
from repro.gateway.metrics import GatewayMetrics
from repro.gateway.protocol import ErrorCode, FrameType, GatewayProtocolError
from repro.analysis.sketch import StreamSketch
from repro.core.modes import LayoutMode
from repro.obs.tracing import resolve_tracer
from repro.service.service import (
    PartitionRequest,
    RequestStatus,
    ServiceDrainingError,
)
from repro.storage.spill import config_from_dict, config_to_dict

#: frame header bytes, counted into bytes_in/bytes_out alongside payloads
_HEADER_BYTES = 5

#: give up a stream after this many consecutive admission rejections
MAX_STALL_RETRIES = 1000

_VALID_OVERFLOW = ("raise", "hist")


class _ChunkJob:
    """One in-flight chunk: wire sequence number + its execution task."""

    __slots__ = ("seq", "tuples", "started_s", "task")

    def __init__(self, seq: int, tuples: int, started_s: float, task):
        self.seq = seq
        self.tuples = tuples
        self.started_s = started_s
        self.task = task


class _ChunkResult:
    """What a backend hands back per chunk."""

    __slots__ = ("output", "backend", "degraded", "reason")

    def __init__(self, output, backend, degraded=False, reason=None):
        self.output = output
        self.backend = backend
        self.degraded = degraded
        self.reason = reason


class _ServiceBackend:
    """Chunk executor over a single in-process ``PartitionService``."""

    def __init__(self, service):
        self.service = service

    async def partition_chunk(
        self, keys, payloads, config, priority, deadline_s, on_stall
    ) -> _ChunkResult:
        attempts = 0
        while True:
            try:
                ticket = self.service.submit(
                    PartitionRequest(
                        relation=keys,
                        payloads=payloads,
                        config=config,
                        priority=priority,
                        deadline_s=deadline_s,
                        on_overflow="raise",
                    )
                )
            except ServiceDrainingError as exc:
                raise protocol.GatewayStreamError(
                    ErrorCode.DRAINING.value, str(exc)
                ) from exc
            except ReproError as exc:
                raise protocol.GatewayStreamError(
                    ErrorCode.FAILED.value, str(exc)
                ) from exc
            response = await asyncio.to_thread(ticket.result, None)
            if response.status is RequestStatus.REJECTED:
                attempts += 1
                if attempts > MAX_STALL_RETRIES:
                    raise protocol.GatewayStreamError(
                        ErrorCode.REJECTED.value,
                        f"admission queue still full after {attempts} "
                        f"retries",
                        retry_after=response.retry_after,
                    )
                await on_stall(response.retry_after or 0.01)
                continue
            if response.status is RequestStatus.TIMED_OUT:
                raise protocol.GatewayStreamError(
                    ErrorCode.DEADLINE.value,
                    f"chunk missed its {deadline_s}s deadline",
                )
            if response.status is not RequestStatus.OK:
                raise protocol.GatewayStreamError(
                    ErrorCode.FAILED.value,
                    response.error or "backend execution failed",
                )
            return _ChunkResult(
                response.output,
                response.backend,
                response.degraded,
                response.degrade_reason,
            )

    def drain(self) -> None:
        self.service.drain()


class _RouterBackend:
    """Chunk executor over a ``ShardRouter`` cluster front-end."""

    def __init__(self, router):
        self.router = router

    async def partition_chunk(
        self, keys, payloads, config, priority, deadline_s, on_stall
    ) -> _ChunkResult:
        response = await asyncio.to_thread(
            self.router.partition,
            keys,
            payloads,
            config,
            "raise",
            deadline_s,
        )
        if response.status is RequestStatus.TIMED_OUT:
            raise protocol.GatewayStreamError(
                ErrorCode.DEADLINE.value,
                f"chunk missed its {deadline_s}s deadline",
            )
        if not response.ok:
            raise protocol.GatewayStreamError(
                ErrorCode.FAILED.value,
                response.error or "cluster execution failed",
            )
        return _ChunkResult(
            response.output,
            ",".join(sorted(set(response.backends))) or "cluster",
            response.degraded,
            "; ".join(response.degrade_reasons) or None,
        )

    def drain(self) -> None:
        self.router.stop()


class _Connection:
    """One accepted connection = one partition stream."""

    def __init__(self, server: "GatewayServer", reader, writer, stream_id):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.stream_id = stream_id
        self.metrics = server.metrics
        self._wlock = asyncio.Lock()
        # the credit window: pump acquires before reading ahead, flush
        # releases after delivering — the queue itself stays unbounded
        # so the END/abort sentinel can always be enqueued
        self._window = asyncio.Semaphore(server.credits)
        self._pending: asyncio.Queue = asyncio.Queue()
        self._inflight = 0
        self._pump_task: Optional[asyncio.Task] = None
        self._run_task: Optional[asyncio.Task] = None
        self._draining = False
        self._finished = asyncio.Event()
        self._chunks_flushed = 0
        self._stream_open = False
        # stream state, bound at HELLO
        self.config = None
        self.backend_config = None
        self.on_overflow = "raise"
        self.has_payloads = False
        self.use_client_payloads = False
        self.priority = 1
        self.deadline_s: Optional[float] = None
        self.accounting: Optional[StreamAccounting] = None
        self.sketch = StreamSketch()
        self.last_decision: Optional[str] = None
        self.backends_seen: Set[str] = set()
        self.degraded = False
        self.degrade_reasons: Set[str] = set()

    # -- frame IO ------------------------------------------------------

    async def _send(self, frame: bytes) -> None:
        async with self._wlock:
            self.writer.write(frame)
            await self.writer.drain()
        self.metrics.increment("frames_out")
        self.metrics.increment("bytes_out", len(frame))

    async def _send_error(
        self, code: str, message: str, **extra
    ) -> None:
        payload = {"code": code, "message": message, **extra}
        try:
            await self._send(protocol.encode_json(FrameType.ERROR, payload))
            self.metrics.increment("errors_sent")
        except (ConnectionError, RuntimeError):
            pass  # peer already gone; the error had nowhere to go

    # -- lifecycle -----------------------------------------------------

    async def run(self) -> None:
        started_s = self.server._clock()
        ok = False
        try:
            await protocol.read_preamble(self.reader)
            if self.server.draining:
                await self._send_error(
                    ErrorCode.DRAINING.value,
                    "server is draining; not accepting new streams",
                )
                return
            await self._handshake()
            ok = await self._stream()
        except protocol.GatewayProtocolError as exc:
            self.metrics.increment("protocol_errors")
            await self._send_error(ErrorCode.PROTOCOL.value, str(exc))
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            BrokenPipeError,
        ):
            pass  # peer vanished; nothing to tell it
        finally:
            if self._stream_open:
                self.metrics.adjust_gauge("open_streams", -1)
                if not ok:
                    self.metrics.increment("streams_failed")
            self._finished.set()
            self.server.tracer.record_span(
                "gateway.connection",
                started_s,
                self.server._clock(),
                stream_id=self.stream_id,
                ok=ok,
            )

    async def _handshake(self) -> None:
        frame_type, payload = await protocol.read_frame(
            self.reader, self.server.max_frame_bytes
        )
        self.metrics.increment("frames_in")
        self.metrics.increment("bytes_in", len(payload) + _HEADER_BYTES)
        if frame_type is not FrameType.HELLO:
            raise GatewayProtocolError(
                f"expected HELLO, got {frame_type.name}"
            )
        hello = protocol.decode_json(payload)
        try:
            self.config = config_from_dict(hello["config"])
        except (KeyError, TypeError, ValueError) as exc:
            raise GatewayProtocolError(f"bad HELLO config: {exc}") from exc
        self.on_overflow = hello.get("on_overflow", "raise")
        if self.on_overflow not in _VALID_OVERFLOW:
            raise GatewayProtocolError(
                f"on_overflow must be one of {_VALID_OVERFLOW}, got "
                f"{self.on_overflow!r}"
            )
        self.has_payloads = bool(hello.get("has_payloads", False))
        # VRID streams always partition against generated global
        # positions, exactly like the offline call ignores payloads
        self.use_client_payloads = (
            self.has_payloads
            and self.config.layout_mode is not LayoutMode.VRID
        )
        self.priority = int(hello.get("priority", 1))
        self.deadline_s = (
            float(hello["deadline_s"])
            if hello.get("deadline_s") is not None
            else None
        )
        self.backend_config = chunk_config(self.config)
        self.accounting = StreamAccounting(self.config, self.on_overflow)
        self._stream_open = True
        self.metrics.increment("streams_opened")
        self.metrics.adjust_gauge("open_streams", +1)
        await self._send(
            protocol.encode_json(
                FrameType.HELLO_OK,
                {
                    "stream_id": self.stream_id,
                    "credits": self.server.credits,
                    "chunk_tuples": self.server.chunk_tuples,
                    "config": config_to_dict(self.config),
                    "server": f"repro-gateway/{protocol.PROTOCOL_VERSION}",
                },
            )
        )

    async def _stream(self) -> bool:
        """Pump + flush until END/drain/error; True on clean MANIFEST."""
        stream_started_s = self.server._clock()
        self._pump_task = pump = asyncio.create_task(self._pump())
        flush_task = asyncio.create_task(self._flush())
        try:
            done, _ = await asyncio.wait(
                {pump, flush_task},
                return_when=asyncio.FIRST_EXCEPTION,
            )
            if flush_task in done and flush_task.exception() is not None:
                pump.cancel()
            await asyncio.wait({pump})
            if pump.cancelled() or pump.exception() is not None:
                # pump died before queueing its END sentinel; flush the
                # chunks already in flight, then let flush exit
                self._pending.put_nowait(None)
            # flush must settle either way so every submitted chunk
            # task is awaited (no orphaned executor waits); connection
            # errors propagate to run()
            flush_error = None
            try:
                await flush_task
            except protocol.GatewayStreamError as exc:
                flush_error = exc
            if flush_error is not None:
                await self._send_error(
                    flush_error.code,
                    str(flush_error),
                    retry_after=flush_error.retry_after,
                )
                return False
            if pump.cancelled():
                if self._draining:
                    await self._send(
                        protocol.encode_json(
                            FrameType.GOAWAY,
                            {
                                "code": ErrorCode.DRAINING.value,
                                "message": "server draining; stream cut "
                                "after flushing in-flight chunks",
                                "chunks_flushed": self._chunks_flushed,
                                "tuples": self.accounting.tuples,
                            },
                        )
                    )
                    self.metrics.increment("streams_drained")
                return False
            if pump.exception() is not None:
                raise pump.exception()
            return await self._finish_stream(stream_started_s)
        finally:
            for task in (pump, flush_task):
                if not task.done():
                    task.cancel()
            await asyncio.gather(pump, flush_task, return_exceptions=True)
            await self._settle_leftover_jobs()

    async def _settle_leftover_jobs(self) -> None:
        """Cancel and await chunk tasks flush never got to."""
        leftovers = []
        while not self._pending.empty():
            job = self._pending.get_nowait()
            if job is None:
                continue
            self.metrics.adjust_gauge("inflight_chunks", -1)
            job.task.cancel()
            leftovers.append(job.task)
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)

    async def _finish_stream(self, stream_started_s: float) -> bool:
        try:
            manifest = self.accounting.finalize()
        except PartitionOverflowError as exc:
            await self._send_error(
                ErrorCode.OVERFLOW.value,
                str(exc),
                partition=exc.partition,
                capacity=exc.capacity,
                tuples_seen=exc.tuples_seen,
            )
            return False
        manifest["degraded"] = self.degraded
        manifest["degrade_reasons"] = sorted(self.degrade_reasons)
        manifest["backends"] = sorted(self.backends_seen)
        # the ingest profile exists only when an optimizer consumed it
        # (sketching is skipped otherwise — see _pump)
        manifest["profile"] = (
            {
                "num_tuples": self.sketch.num_tuples,
                "distinct_keys": int(round(self.sketch.cardinality())),
                "max_key_share": self.sketch.max_key_share(),
                "decision": self.last_decision,
            }
            if self.server.optimizer is not None
            else None
        )
        await self._send(
            protocol.encode_json(FrameType.MANIFEST, manifest)
        )
        now = self.server._clock()
        self.metrics.increment("streams_completed")
        self.metrics.observe("stream", now - stream_started_s)
        self.server.tracer.record_span(
            "gateway.stream",
            stream_started_s,
            now,
            stream_id=self.stream_id,
            chunks=self.accounting.chunks,
            tuples=self.accounting.tuples,
            bytes=self.accounting.tuples * 8,
            decision=self.last_decision,
        )
        return True

    # -- the two halves of the stream ----------------------------------

    async def _pump(self) -> None:
        """Read DATA frames, account, submit; END breaks the loop."""
        next_seq = 0
        while True:
            frame_type, payload = await protocol.read_frame(
                self.reader, self.server.max_frame_bytes
            )
            self.metrics.increment("frames_in")
            self.metrics.increment("bytes_in", len(payload) + _HEADER_BYTES)
            if frame_type is FrameType.END:
                break
            if frame_type is not FrameType.DATA:
                raise GatewayProtocolError(
                    f"expected DATA or END, got {frame_type.name}"
                )
            seq, keys, payloads = protocol.decode_data(
                payload, self.has_payloads
            )
            if seq != next_seq:
                raise GatewayProtocolError(
                    f"DATA out of order: got seq {seq}, want {next_seq}"
                )
            next_seq += 1
            # the flow-control bound: an exhausted credit window pauses
            # this read loop until the flush side delivers a CHUNK
            # downstream, stalling the sender through TCP — server
            # memory never holds more than `credits` chunks per stream
            await self._window.acquire()
            n = int(keys.shape[0])
            offset = self.accounting.observe(keys)
            if self.server.optimizer is not None:
                # sketching costs an order of magnitude more than the
                # chunk's own partition work — only pay it when someone
                # (the adaptive optimizer) consumes the profile
                self.sketch.add(np.asarray(keys))
                self._consult_optimizer()
            pays = global_payloads(
                payloads if self.use_client_payloads else None, offset, n
            )
            started_s = self.server._clock()
            job = _ChunkJob(
                seq,
                n,
                started_s,
                asyncio.create_task(
                    self.server._backend.partition_chunk(
                        keys,
                        pays,
                        self.backend_config,
                        self.priority,
                        self.deadline_s,
                        self._on_stall,
                    )
                ),
            )
            self._inflight += 1
            self.metrics.increment("chunks_in")
            self.metrics.increment("tuples_in", n)
            self.metrics.adjust_gauge("inflight_chunks", +1)
            self.metrics.set_gauge_max("max_stream_window", self._inflight)
            self._pending.put_nowait(job)
        self._pending.put_nowait(None)

    async def _flush(self) -> None:
        """Await chunk results in order, stream CHUNK frames back."""
        while True:
            job = await self._pending.get()
            if job is None:
                return
            try:
                result: _ChunkResult = await job.task
            finally:
                self._inflight -= 1
                self.metrics.adjust_gauge("inflight_chunks", -1)
            output = result.output
            self.backends_seen.add(result.backend or "unknown")
            if result.degraded:
                self.degraded = True
                if result.reason:
                    self.degrade_reasons.add(result.reason)
            frame = protocol.encode_chunk(
                job.seq,
                output.counts,
                output.partition_keys,
                output.partition_payloads,
            )
            # writer.drain() is the slow-consumer stall point: a client
            # that stops reading parks this coroutine (and, since the
            # credit below is only returned after delivery, the read
            # loop too) without growing server buffers
            await self._send(frame)
            self._window.release()
            self._chunks_flushed += 1
            now = self.server._clock()
            self.metrics.increment("chunks_out")
            self.metrics.increment("credits_granted")
            self.metrics.observe("chunk", now - job.started_s)
            self.server.tracer.record_span(
                "gateway.chunk",
                job.started_s,
                now,
                stream_id=self.stream_id,
                seq=job.seq,
                tuples=job.tuples,
                bytes=job.tuples * 8,
                backend=result.backend,
            )

    def _consult_optimizer(self) -> None:
        """Feed the cumulative ingest sketch to the adaptive optimizer.

        Every chunk refreshes the stream-level workload profile
        (HyperLogLog cardinality + Misra–Gries heavy hitters over
        *everything seen so far*, not just the current chunk) and asks
        the optimizer to re-plan — so skew that only emerges mid-stream
        still steers placement and is reported in the manifest.
        """
        optimizer = self.server.optimizer
        if optimizer is None:
            return
        from repro.optimize.profile import WorkloadProfile

        profile = WorkloadProfile.from_sketch(
            self.sketch, tuple_bytes=self.config.tuple_bytes
        )
        decision = optimizer.plan_for(profile, self.backend_config)
        self.last_decision = decision.label
        self.metrics.increment("optimizer_plans")

    async def _on_stall(self, retry_after: float) -> None:
        """Admission rejection: tell the client, wait the hint out."""
        self.metrics.increment("backpressure_stalls")
        await self._send(
            protocol.encode_json(
                FrameType.CREDIT,
                {
                    "available": 0,
                    "stalled": True,
                    "retry_after_s": retry_after,
                },
            )
        )
        await asyncio.sleep(retry_after)

    async def drain(self) -> None:
        """Stop reading, flush in-flight chunks, emit GOAWAY."""
        self._draining = True
        if self._pump_task is not None and not self._pump_task.done():
            self._pump_task.cancel()
            # asyncio.wait(FIRST_EXCEPTION) does not wake on a *cancelled*
            # task, so the flush side would never learn the stream ended:
            # enqueue its end-of-stream sentinel here (pump has no await
            # point between claiming a credit and enqueueing the job, so
            # no chunk can slip in behind this)
            self._pending.put_nowait(None)
        elif self._pump_task is None and self._run_task is not None:
            # still mid-handshake: nothing in flight, just cut it
            self._run_task.cancel()
        await self._finished.wait()

    def abort(self) -> None:
        """Force-close (drain timeout): no more flushing, cut the peer."""
        if self._run_task is not None and not self._run_task.done():
            self._run_task.cancel()
        transport = self.writer.transport
        if transport is not None:
            transport.abort()


class GatewayServer:
    """Asyncio TCP front-end over a service or cluster (module docs).

    Args:
        service: a started
            :class:`~repro.service.service.PartitionService` — the
            single-node backend.  Mutually exclusive with ``router``.
        router: a started :class:`~repro.cluster.router.ShardRouter` —
            the cluster backend.
        host / port: listen address; port ``0`` picks a free port
            (read it back from :attr:`port` after :meth:`start`).
        chunk_tuples: the chunk-size hint handed to clients in
            HELLO_OK (the wire accepts any chunk size).
        credits: per-stream flow-control window, in chunks.
        max_frame_bytes: hard per-frame size ceiling.
        optimizer: optional
            :class:`~repro.optimize.optimizer.AdaptiveOptimizer` fed
            each stream's cumulative ingest sketch after every chunk.
        drain_backend: when True, :meth:`drain` also drains/stops the
            backend (set by ``repro gateway serve``, which owns it).
    """

    def __init__(
        self,
        service=None,
        router=None,
        host: str = "127.0.0.1",
        port: int = 0,
        chunk_tuples: int = 8192,
        credits: int = 4,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        tracer=None,
        optimizer=None,
        metrics: Optional[GatewayMetrics] = None,
        drain_backend: bool = False,
        drain_timeout_s: float = 30.0,
        clock=time.monotonic,
    ):
        if (service is None) == (router is None):
            raise ReproError(
                "exactly one of service= or router= must be given"
            )
        if credits < 1:
            raise ReproError(f"credits must be >= 1, got {credits}")
        if chunk_tuples < 1:
            raise ReproError(
                f"chunk_tuples must be >= 1, got {chunk_tuples}"
            )
        self._backend = (
            _ServiceBackend(service)
            if service is not None
            else _RouterBackend(router)
        )
        self.host = host
        self._requested_port = port
        self.chunk_tuples = chunk_tuples
        self.credits = credits
        self.max_frame_bytes = max_frame_bytes
        self.tracer = resolve_tracer(tracer)
        self.optimizer = optimizer
        self.metrics = metrics or GatewayMetrics(clock=clock)
        self.drain_backend = drain_backend
        self.drain_timeout_s = drain_timeout_s
        self._clock = clock
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[_Connection] = set()
        self._stream_sequence = 0
        self._draining = False
        self._drained = asyncio.Event()

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> "GatewayServer":
        """Bind and start accepting connections (resolves ``port=0``)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port
        )
        return self

    async def serve_forever(self) -> None:
        """Serve until :meth:`drain` completes (e.g. from SIGTERM)."""
        if self._server is None:
            await self.start()
        await self._drained.wait()

    def install_signal_handlers(self, loop=None) -> None:
        """SIGTERM/SIGINT → graceful :meth:`drain` (serve-mode only)."""
        loop = loop or asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.drain())
            )

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, flush, end every stream.

        Idempotent; concurrent callers all wait for the same drain.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        started_s = self._clock()
        if self._server is not None:
            self._server.close()
        connections = list(self._connections)

        async def _drain_one(connection: _Connection) -> None:
            try:
                await asyncio.wait_for(
                    connection.drain(), self.drain_timeout_s
                )
            except asyncio.TimeoutError:
                # a consumer that won't read its flushed chunks cannot
                # hold the shutdown hostage — cut it
                connection.abort()

        if connections:
            await asyncio.gather(
                *(_drain_one(connection) for connection in connections),
                return_exceptions=True,
            )
        if self._server is not None:
            await self._server.wait_closed()
        if self.drain_backend:
            await asyncio.to_thread(self._backend.drain)
        self.tracer.record_span(
            "gateway.drain",
            started_s,
            self._clock(),
            streams=len(connections),
        )
        self._drained.set()

    async def __aenter__(self) -> "GatewayServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.drain()

    # -- accept path ---------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        self._stream_sequence += 1
        connection = _Connection(
            self, reader, writer, stream_id=self._stream_sequence
        )
        connection._run_task = asyncio.current_task()
        self._connections.add(connection)
        self.metrics.increment("connections_opened")
        self.metrics.adjust_gauge("open_connections", +1)
        try:
            await connection.run()
        finally:
            self._connections.discard(connection)
            self.metrics.increment("connections_closed")
            self.metrics.adjust_gauge("open_connections", -1)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
