"""Chunked-stream accounting and client-side stitching.

The gateway's byte-identity trick is the spill partitioner's
(:mod:`repro.storage.spill`), carried over a socket: every chunk is
partitioned under a HIST/RID clone of the stream's config with explicit
*global-position* payloads, and because the partitioner is stable,
concatenating each partition's tuples across chunks in arrival order
reproduces exactly what one offline :meth:`FpgaPartitioner.partition`
call over the whole stream would have emitted.

Only the *accounting* (cache-line layout, traffic bytes, PAD overflow)
depends on the global tuple count, which is unknowable until the stream
ends.  :class:`StreamAccounting` therefore folds every chunk into a
lane-exact global ``(partition, lane)`` histogram — a tuple's lane is
its global input index mod lanes, so
``kernels.hash_histogram(..., global_offset=offset)`` makes misaligned
chunks account exactly like one big run — and :meth:`finalize` replays
the offline layout math (the same code path as
``SpillPartitioner._merge`` and the cluster router) to produce the
MANIFEST frame.  :func:`stitch_output` is the client-side inverse: chunk
frames + manifest → a :class:`PartitionedOutput` indistinguishable from
the offline call.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.core.modes import LayoutMode, OutputMode, PartitionerConfig
from repro.core.partitioner import PartitionedOutput
from repro.errors import PartitionOverflowError
from repro.storage.spill import config_from_dict, config_to_dict

__all__ = [
    "StreamAccounting",
    "chunk_config",
    "global_payloads",
    "iter_chunks",
    "manifest_config",
    "outputs_identical",
    "stitch_output",
]


def outputs_identical(
    ours: PartitionedOutput,
    reference: PartitionedOutput,
    check_accounting: bool = True,
) -> bool:
    """Byte-identity predicate used by tests, the bench and the CLI.

    Partition contents (keys and payloads, per partition, in order)
    must match exactly; with ``check_accounting`` the full layout and
    traffic accounting (counts, cache-line layout, bytes, dummy slots,
    effective config) must match too.
    """
    if ours.num_partitions != reference.num_partitions:
        return False
    if not np.array_equal(ours.counts, reference.counts):
        return False
    for p in range(ours.num_partitions):
        if not np.array_equal(
            ours.partition_keys[p], reference.partition_keys[p]
        ):
            return False
        if not np.array_equal(
            ours.partition_payloads[p], reference.partition_payloads[p]
        ):
            return False
    if not check_accounting:
        return True
    return (
        ours.config == reference.config
        and np.array_equal(
            ours.lines_per_partition, reference.lines_per_partition
        )
        and np.array_equal(ours.base_lines, reference.base_lines)
        and ours.bytes_read == reference.bytes_read
        and ours.bytes_written == reference.bytes_written
        and ours.dummy_slots == reference.dummy_slots
    )


def chunk_config(config: PartitionerConfig) -> PartitionerConfig:
    """The data-plane clone of a stream config: HIST output, RID layout.

    Same fan-out, tuple width and hash — chunk partition ``p`` is global
    partition ``p`` — but no per-chunk PAD capacities (overflow is a
    *global* property checked at end of stream) and explicit payloads
    (chunk-local VRIDs would be wrong; the gateway supplies global
    positions).  The same clone the cluster router's ``shard_config``
    uses for the same reason.
    """
    return dataclasses.replace(
        config, output_mode=OutputMode.HIST, layout_mode=LayoutMode.RID
    )


def global_payloads(
    payloads: Optional[np.ndarray], offset: int, num_tuples: int
) -> np.ndarray:
    """The payload column a chunk submits: the client's values when the
    stream carries payloads, else the tuples' global input positions —
    exactly what the offline partitioner generates for a bare key array
    (and always, in VRID mode)."""
    if payloads is not None:
        return payloads
    return np.arange(offset, offset + num_tuples, dtype=np.uint32)


def iter_chunks(
    keys: np.ndarray,
    payloads: Optional[np.ndarray],
    chunk_tuples: int,
) -> "Sequence[Tuple[np.ndarray, Optional[np.ndarray]]]":
    """Slice one in-memory relation into stream chunks (test/bench aid)."""
    if chunk_tuples <= 0:
        raise ValueError(f"chunk_tuples must be > 0, got {chunk_tuples}")
    chunks = []
    for start in range(0, len(keys), chunk_tuples):
        stop = start + chunk_tuples
        chunks.append(
            (
                keys[start:stop],
                None if payloads is None else payloads[start:stop],
            )
        )
    return chunks


class StreamAccounting:
    """Server-side global accounting of one stream, chunk by chunk."""

    def __init__(self, config: PartitionerConfig, on_overflow: str = "raise"):
        self.config = config
        self.on_overflow = on_overflow
        self.tuples = 0
        self.chunks = 0
        self.lane_counts = np.zeros(
            (config.num_partitions, config.num_lanes), dtype=np.int64
        )

    def observe(self, keys: np.ndarray) -> int:
        """Fold one chunk in; returns the chunk's global tuple offset."""
        offset = self.tuples
        _, _, lane_hist = kernels.hash_histogram(
            np.asarray(keys),
            self.config.num_partitions,
            self.config.uses_hash,
            lanes=self.config.num_lanes,
            global_offset=offset,
        )
        self.lane_counts += lane_hist
        self.tuples += int(keys.shape[0])
        self.chunks += 1
        return offset

    def finalize(self) -> dict:
        """The MANIFEST payload: global layout + traffic accounting.

        Raises :class:`PartitionOverflowError` when a PAD stream under
        the ``"raise"`` policy overflowed — the server turns that into
        a structured ERROR frame, matching the offline call's raise.
        """
        cfg = self.config
        n = self.tuples
        counts = self.lane_counts.sum(axis=1)
        per_line = cfg.tuples_per_line
        lines_per_partition = (-(-self.lane_counts // per_line)).sum(axis=1)
        effective = cfg
        extra_read = 0

        if cfg.output_mode is OutputMode.PAD:
            capacity_lines = cfg.partition_capacity(n) // per_line
            overflowed = np.nonzero(lines_per_partition > capacity_lines)[0]
            if overflowed.size:
                if self.on_overflow == "raise":
                    raise PartitionOverflowError(
                        partition=int(overflowed[0]),
                        capacity=capacity_lines * per_line,
                        tuples_seen=n,
                    )
                # "hist": chunk data is already HIST-identical; only the
                # accounting switches mode, and the aborted PAD scan is
                # still charged (Section 5.4 worst case)
                effective = dataclasses.replace(
                    cfg, output_mode=OutputMode.HIST
                )
                extra_read = cfg.traffic_bytes(n, 0)[0]

        if effective.output_mode is OutputMode.PAD:
            capacity_lines = effective.partition_capacity(n) // per_line
            base_lines = (
                np.arange(cfg.num_partitions, dtype=np.int64) * capacity_lines
            )
        else:
            base_lines = np.zeros(cfg.num_partitions, dtype=np.int64)
            np.cumsum(lines_per_partition[:-1], out=base_lines[1:])

        bytes_read, bytes_written = effective.traffic_bytes(
            n, int(lines_per_partition.sum())
        )
        return {
            "chunks": self.chunks,
            "tuples": n,
            "counts": counts.tolist(),
            "lines_per_partition": lines_per_partition.tolist(),
            "base_lines": base_lines.tolist(),
            "bytes_read": int(bytes_read) + int(extra_read),
            "bytes_written": int(bytes_written),
            "dummy_slots": int(
                lines_per_partition.sum() * per_line - counts.sum()
            ),
            "config": config_to_dict(cfg),
            "effective_config": config_to_dict(effective),
        }


def manifest_config(manifest: dict) -> PartitionerConfig:
    """The effective config a MANIFEST describes (post PAD→HIST)."""
    return config_from_dict(manifest["effective_config"])


def stitch_output(
    manifest: dict,
    chunks: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    produced_by: str = "gateway",
    degraded: bool = False,
) -> PartitionedOutput:
    """Assemble the stream's :class:`PartitionedOutput` client-side.

    ``chunks`` are the decoded CHUNK frames **in sequence order**:
    ``(counts, keys, payloads)`` with both columns concatenated in
    partition order.  Stability of the partitioner guarantees that
    per-partition concatenation across chunks in stream order equals
    the offline single-call output byte for byte.
    """
    effective = manifest_config(manifest)
    num_partitions = effective.num_partitions
    empty = np.empty(0, dtype=np.uint32)
    slices_keys: List[List[np.ndarray]] = [[] for _ in range(num_partitions)]
    slices_pays: List[List[np.ndarray]] = [[] for _ in range(num_partitions)]
    for counts, keys, pays in chunks:
        bounds = np.zeros(num_partitions + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        for p in range(num_partitions):
            if counts[p]:
                slices_keys[p].append(keys[bounds[p]:bounds[p + 1]])
                slices_pays[p].append(pays[bounds[p]:bounds[p + 1]])
    partition_keys = [
        np.concatenate(parts) if parts else empty for parts in slices_keys
    ]
    partition_payloads = [
        np.concatenate(parts) if parts else empty for parts in slices_pays
    ]
    counts = np.asarray(manifest["counts"], dtype=np.int64)
    stitched = np.asarray([k.shape[0] for k in partition_keys], dtype=np.int64)
    if not np.array_equal(counts, stitched):
        raise ValueError(
            "stitched partition sizes disagree with the manifest "
            "(missing or reordered chunk frames?)"
        )
    return PartitionedOutput(
        config=effective,
        partition_keys=partition_keys,
        partition_payloads=partition_payloads,
        counts=counts,
        lines_per_partition=np.asarray(
            manifest["lines_per_partition"], dtype=np.int64
        ),
        base_lines=np.asarray(manifest["base_lines"], dtype=np.int64),
        bytes_read=int(manifest["bytes_read"]),
        bytes_written=int(manifest["bytes_written"]),
        dummy_slots=int(manifest["dummy_slots"]),
        produced_by=produced_by,
        fell_back_to_cpu=degraded,
    )
