"""Asyncio client for the streaming gateway.

One :class:`GatewayClient` connection carries one partition stream:

>>> client = await GatewayClient.connect("127.0.0.1", port)
>>> stream = await client.open_stream(config)
>>> for chunk_keys in chunks:           # unbounded is fine
...     await stream.send(chunk_keys)
>>> output = await stream.finish()      # byte-identical to offline
>>> await client.close()

or, for an in-memory relation, the one-shot :meth:`GatewayClient.stream`
/ module-level :func:`stream_partition` convenience.

The client honours the credit window granted in HELLO_OK — at most
``credits`` DATA frames are ever unacknowledged (each CHUNK frame
returns one credit), so a backpressured server stalls the producer
coroutine in :meth:`GatewayStream.send` rather than growing socket
buffers.  CREDIT notice frames (admission-queue stalls, reported with
the server's ``retry_after`` hint) are collected in
:attr:`GatewayStream.stalls`.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.modes import PartitionerConfig
from repro.core.partitioner import PartitionedOutput
from repro.gateway import protocol
from repro.gateway.chunking import iter_chunks, stitch_output
from repro.gateway.protocol import (
    FrameType,
    GatewayDraining,
    GatewayProtocolError,
    GatewayStreamError,
)
from repro.storage.spill import config_to_dict

__all__ = ["GatewayClient", "GatewayStream", "stream_partition"]


class GatewayStream:
    """Client-side state of one open stream (use via ``open_stream``)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        config: PartitionerConfig,
        has_payloads: bool,
        hello_ok: dict,
    ):
        self._reader = reader
        self._writer = writer
        self.config = config
        self.has_payloads = has_payloads
        self.stream_id = hello_ok.get("stream_id")
        self.credits = int(hello_ok.get("credits", 1))
        #: server's preferred chunk size (the wire accepts any)
        self.chunk_tuples = int(hello_ok.get("chunk_tuples", 8192))
        self._window = asyncio.Semaphore(self.credits)
        self._next_seq = 0
        self._chunks: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        #: CREDIT notice frames received (admission backpressure stalls)
        self.stalls: List[dict] = []
        self.manifest: Optional[dict] = None
        self._error: Optional[BaseException] = None
        self._done = asyncio.Event()
        self._receiver = asyncio.create_task(self._receive_loop())

    # -- receive side --------------------------------------------------

    async def _receive_loop(self) -> None:
        try:
            while True:
                frame_type, payload = await protocol.read_frame(self._reader)
                if frame_type is FrameType.CHUNK:
                    seq, counts, keys, pays = protocol.decode_chunk(
                        payload, self.config.num_partitions
                    )
                    self._chunks[seq] = (counts, keys, pays)
                    self._window.release()
                elif frame_type is FrameType.CREDIT:
                    self.stalls.append(protocol.decode_json(payload))
                elif frame_type is FrameType.MANIFEST:
                    self.manifest = protocol.decode_json(payload)
                    return
                elif frame_type is FrameType.ERROR:
                    info = protocol.decode_json(payload)
                    self._error = GatewayStreamError(
                        info.get("code", "failed"),
                        info.get("message", "stream failed"),
                        retry_after=info.get("retry_after"),
                    )
                    return
                elif frame_type is FrameType.GOAWAY:
                    info = protocol.decode_json(payload)
                    self._error = GatewayDraining(
                        info.get("message", "server draining"),
                        chunks_flushed=int(info.get("chunks_flushed", 0)),
                    )
                    return
                else:
                    raise GatewayProtocolError(
                        f"unexpected {frame_type.name} frame mid-stream"
                    )
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            GatewayProtocolError,
        ) as exc:
            self._error = GatewayStreamError(
                protocol.ErrorCode.FAILED.value,
                f"connection lost mid-stream: {exc}",
            )
        finally:
            self._done.set()
            # unblock any send() parked on the window
            self._window.release()

    def _check_error(self) -> None:
        if self._error is not None:
            raise self._error

    # -- send side -----------------------------------------------------

    async def send(
        self, keys: np.ndarray, payloads: Optional[np.ndarray] = None
    ) -> int:
        """Send one chunk; returns its sequence number.

        Blocks while the credit window is exhausted — this is where
        server-side backpressure lands on the producer.
        """
        self._check_error()
        if self.has_payloads and payloads is None:
            raise GatewayProtocolError(
                "stream was opened with has_payloads=True; every chunk "
                "must carry a payload column"
            )
        await self._window.acquire()
        self._check_error()
        seq = self._next_seq
        self._next_seq += 1
        frame = protocol.encode_data(
            seq, keys, payloads if self.has_payloads else None
        )
        self._writer.write(frame)
        await self._writer.drain()
        return seq

    async def finish(self) -> PartitionedOutput:
        """END the stream, await the manifest, stitch the output."""
        self._check_error()
        self._writer.write(
            protocol.encode_json(FrameType.END, {"chunks": self._next_seq})
        )
        await self._writer.drain()
        await self._done.wait()
        self._check_error()
        assert self.manifest is not None
        if len(self._chunks) != self._next_seq:
            raise GatewayProtocolError(
                f"received {len(self._chunks)} CHUNK frames for "
                f"{self._next_seq} sent"
            )
        output = stitch_output(
            self.manifest,
            [self._chunks[seq] for seq in range(self._next_seq)],
            degraded=bool(self.manifest.get("degraded")),
        )
        return output

    async def wait_closed(self) -> None:
        """Await the receiver (after an error or external close)."""
        await self._done.wait()

    def cancel(self) -> None:
        """Stop the receiver task (used by ``GatewayClient.close``)."""
        self._receiver.cancel()


class GatewayClient:
    """One gateway connection (= one stream); see module docstring."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._stream: Optional[GatewayStream] = None

    @classmethod
    async def connect(cls, host: str, port: int) -> "GatewayClient":
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(protocol.PREAMBLE)
        await writer.drain()
        return cls(reader, writer)

    async def open_stream(
        self,
        config: PartitionerConfig,
        on_overflow: str = "raise",
        has_payloads: bool = False,
        priority: int = 1,
        deadline_s: Optional[float] = None,
    ) -> GatewayStream:
        """HELLO/HELLO_OK handshake; returns the ready stream."""
        if self._stream is not None:
            raise GatewayProtocolError(
                "connection already carries a stream; open a new "
                "connection per stream"
            )
        self._writer.write(
            protocol.encode_json(
                FrameType.HELLO,
                {
                    "config": config_to_dict(config),
                    "on_overflow": on_overflow,
                    "has_payloads": has_payloads,
                    "priority": priority,
                    "deadline_s": deadline_s,
                },
            )
        )
        await self._writer.drain()
        frame_type, payload = await protocol.read_frame(self._reader)
        info = protocol.decode_json(payload)
        if frame_type is FrameType.ERROR:
            raise GatewayStreamError(
                info.get("code", "failed"),
                info.get("message", "stream refused"),
                retry_after=info.get("retry_after"),
            )
        if frame_type is not FrameType.HELLO_OK:
            raise GatewayProtocolError(
                f"expected HELLO_OK, got {frame_type.name}"
            )
        self._stream = GatewayStream(
            self._reader, self._writer, config, has_payloads, info
        )
        return self._stream

    async def stream(
        self,
        keys: np.ndarray,
        payloads: Optional[np.ndarray] = None,
        config: Optional[PartitionerConfig] = None,
        on_overflow: str = "raise",
        chunk_tuples: Optional[int] = None,
        priority: int = 1,
        deadline_s: Optional[float] = None,
    ) -> PartitionedOutput:
        """One-shot: chunk an in-memory relation through the stream."""
        config = config or PartitionerConfig()
        stream = await self.open_stream(
            config,
            on_overflow=on_overflow,
            has_payloads=payloads is not None,
            priority=priority,
            deadline_s=deadline_s,
        )
        for chunk_keys, chunk_pays in iter_chunks(
            keys, payloads, chunk_tuples or stream.chunk_tuples
        ):
            await stream.send(chunk_keys, chunk_pays)
        return await stream.finish()

    def abort(self) -> None:
        """Kill the connection mid-stream (tests the server's cleanup)."""
        if self._stream is not None:
            self._stream.cancel()
        transport = self._writer.transport
        if transport is not None:
            transport.abort()

    async def close(self) -> None:
        """Cancel any open stream and close the connection cleanly."""
        if self._stream is not None:
            self._stream.cancel()
            await asyncio.gather(
                self._stream._receiver, return_exceptions=True
            )
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


async def stream_partition(
    host: str,
    port: int,
    keys: np.ndarray,
    payloads: Optional[np.ndarray] = None,
    config: Optional[PartitionerConfig] = None,
    on_overflow: str = "raise",
    chunk_tuples: Optional[int] = None,
    priority: int = 1,
    deadline_s: Optional[float] = None,
) -> PartitionedOutput:
    """Connect, stream one relation, return the stitched output."""
    client = await GatewayClient.connect(host, port)
    try:
        return await client.stream(
            keys,
            payloads,
            config,
            on_overflow=on_overflow,
            chunk_tuples=chunk_tuples,
            priority=priority,
            deadline_s=deadline_s,
        )
    finally:
        await client.close()
