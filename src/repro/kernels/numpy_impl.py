"""Pure-NumPy reference implementations of the hot-path kernels.

These are the vectorised kernels the repo shipped before the native
extension existed, factored behind the same four-primitive API so the
dispatch layer (:mod:`repro.kernels`) can swap freely between them.
They are the always-available fallback *and* the correctness oracle:
the native kernels must match them byte for byte (tests/test_kernels.py
pins this with hypothesis property tests).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.hashing import partition_function


def hash_histogram(
    keys: np.ndarray,
    num_partitions: int,
    use_hash: bool,
    lanes: Optional[int],
    global_offset: int,
    parts_out: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Fused hash + histogram (+ lane histogram) over one morsel."""
    kernel = partition_function(num_partitions, use_hash)
    parts = kernel(keys, out=parts_out)
    hist = np.bincount(parts, minlength=num_partitions).astype(np.int64)
    lane_hist = None
    if lanes is not None:
        lane = (
            global_offset + np.arange(parts.shape[0], dtype=np.int64)
        ) % lanes
        combined = parts.astype(np.int64) * lanes + lane
        lane_hist = (
            np.bincount(combined, minlength=num_partitions * lanes)
            .astype(np.int64)
            .reshape(num_partitions, lanes)
        )
    return parts, hist, lane_hist


def hash_only(
    keys: np.ndarray,
    num_partitions: int,
    use_hash: bool,
    parts_out: np.ndarray,
) -> np.ndarray:
    """Partition indices only (no counting)."""
    return partition_function(num_partitions, use_hash)(keys, out=parts_out)


def scatter(
    keys: np.ndarray,
    payloads: np.ndarray,
    parts: np.ndarray,
    cursor: np.ndarray,
    out_keys: np.ndarray,
    out_payloads: np.ndarray,
) -> None:
    """Stable scatter via a stable argsort (the vectorised equivalent
    of the native sequential cursor loop; identical bytes).

    ``cursor`` holds the per-partition destination bases and is
    advanced past the written tuples, matching the native contract.
    """
    n = parts.shape[0]
    if n == 0:
        return
    num_partitions = cursor.shape[0]
    order = np.argsort(parts, kind="stable")
    sorted_parts = parts[order]
    local_counts = np.bincount(parts, minlength=num_partitions).astype(
        np.int64
    )
    starts = np.zeros(num_partitions, dtype=np.int64)
    np.cumsum(local_counts[:-1], out=starts[1:])
    dest = (
        cursor[sorted_parts]
        - starts[sorted_parts]
        + np.arange(n, dtype=np.int64)
    )
    out_keys[dest] = keys[order]
    out_payloads[dest] = payloads[order]
    cursor += local_counts


def swwc_scatter(
    keys: np.ndarray,
    payloads: np.ndarray,
    parts: np.ndarray,
    num_partitions: int,
    buffer_tuples: int,
    cursor: np.ndarray,
    out_keys: np.ndarray,
    out_payloads: np.ndarray,
) -> None:
    """Write-combine scatter.  Buffering changes only the write
    schedule, never the destination slots, so the vectorised fallback
    is the plain stable scatter."""
    scatter(keys, payloads, parts, cursor, out_keys, out_payloads)
