"""Pure-NumPy reference implementations of the hot-path kernels.

These are the vectorised kernels the repo shipped before the native
extension existed, factored behind the same four-primitive API so the
dispatch layer (:mod:`repro.kernels`) can swap freely between them.
They are the always-available fallback *and* the correctness oracle:
the native kernels must match them byte for byte (tests/test_kernels.py
pins this with hypothesis property tests).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.hashing import murmur3_finalizer, partition_function


def _join_buckets(keys: np.ndarray, num_buckets: int) -> np.ndarray:
    """In-table bucket indices: the HIGH bits of the murmur hash.

    The radix join already consumed the LOW hash bits for partitioning,
    so masking the same hash again would collapse every key of a
    partition into ``num_buckets / fan_out`` buckets and degenerate the
    chains into long lists; the top bits are independent of the
    partition index.  Bit-identical to the native kernels' bucket
    computation (31-bit shift clamp included, so ``num_buckets == 1``
    stays defined).
    """
    bits = int(num_buckets).bit_length() - 1
    shift = np.uint32(min(31, 32 - bits))
    hashed = murmur3_finalizer(np.ascontiguousarray(keys, dtype=np.uint32))
    return ((hashed >> shift) & np.uint32(num_buckets - 1)).astype(np.int64)


def hash_histogram(
    keys: np.ndarray,
    num_partitions: int,
    use_hash: bool,
    lanes: Optional[int],
    global_offset: int,
    parts_out: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Fused hash + histogram (+ lane histogram) over one morsel."""
    kernel = partition_function(num_partitions, use_hash)
    parts = kernel(keys, out=parts_out)
    hist = np.bincount(parts, minlength=num_partitions).astype(np.int64)
    lane_hist = None
    if lanes is not None:
        lane = (
            global_offset + np.arange(parts.shape[0], dtype=np.int64)
        ) % lanes
        combined = parts.astype(np.int64) * lanes + lane
        lane_hist = (
            np.bincount(combined, minlength=num_partitions * lanes)
            .astype(np.int64)
            .reshape(num_partitions, lanes)
        )
    return parts, hist, lane_hist


def hash_only(
    keys: np.ndarray,
    num_partitions: int,
    use_hash: bool,
    parts_out: np.ndarray,
) -> np.ndarray:
    """Partition indices only (no counting)."""
    return partition_function(num_partitions, use_hash)(keys, out=parts_out)


def scatter(
    keys: np.ndarray,
    payloads: np.ndarray,
    parts: np.ndarray,
    cursor: np.ndarray,
    out_keys: np.ndarray,
    out_payloads: np.ndarray,
) -> None:
    """Stable scatter via a stable argsort (the vectorised equivalent
    of the native sequential cursor loop; identical bytes).

    ``cursor`` holds the per-partition destination bases and is
    advanced past the written tuples, matching the native contract.
    """
    n = parts.shape[0]
    if n == 0:
        return
    num_partitions = cursor.shape[0]
    order = np.argsort(parts, kind="stable")
    sorted_parts = parts[order]
    local_counts = np.bincount(parts, minlength=num_partitions).astype(
        np.int64
    )
    starts = np.zeros(num_partitions, dtype=np.int64)
    np.cumsum(local_counts[:-1], out=starts[1:])
    dest = (
        cursor[sorted_parts]
        - starts[sorted_parts]
        + np.arange(n, dtype=np.int64)
    )
    out_keys[dest] = keys[order]
    out_payloads[dest] = payloads[order]
    cursor += local_counts


def swwc_scatter(
    keys: np.ndarray,
    payloads: np.ndarray,
    parts: np.ndarray,
    num_partitions: int,
    buffer_tuples: int,
    cursor: np.ndarray,
    out_keys: np.ndarray,
    out_payloads: np.ndarray,
) -> None:
    """Write-combine scatter.  Buffering changes only the write
    schedule, never the destination slots, so the vectorised fallback
    is the plain stable scatter."""
    scatter(keys, payloads, parts, cursor, out_keys, out_payloads)


def bucket_build(
    keys: np.ndarray, num_buckets: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Bucket-chaining build: ``(heads, next)`` index arrays.

    Vectorised equivalent of the scalar front-insertion loop: within a
    bucket, tuple i's ``next`` is the previous (lower-index) tuple and
    the head is the bucket's last tuple — identical chains to the
    native kernel's sequential build.
    """
    n = int(keys.shape[0])
    buckets = _join_buckets(keys, num_buckets)
    heads = np.full(num_buckets, -1, dtype=np.int64)
    nxt = np.full(n, -1, dtype=np.int64)
    order = np.argsort(buckets, kind="stable")
    sorted_buckets = buckets[order]
    same_as_prev = np.zeros(n, dtype=bool)
    same_as_prev[1:] = sorted_buckets[1:] == sorted_buckets[:-1]
    prev = np.full(n, -1, dtype=np.int64)
    prev[1:] = np.where(same_as_prev[1:], order[:-1], -1)
    nxt[order] = prev
    is_last = np.ones(n, dtype=bool)
    is_last[:-1] = sorted_buckets[:-1] != sorted_buckets[1:]
    heads[sorted_buckets[is_last]] = order[is_last]
    return heads, nxt


def bucket_probe(
    build_keys: np.ndarray,
    heads: np.ndarray,
    nxt: np.ndarray,
    num_buckets: int,
    probe_keys: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Chain-walk probe in probe-major order.

    The walk itself is vectorised hop by hop (all active probes advance
    one chain hop per iteration); a final stable sort by probe index
    re-orders the matches probe-major — for each probe tuple in input
    order, its matches follow the chain — which is exactly the order
    the native scalar walk emits.
    """
    m = int(probe_keys.shape[0])
    buckets = _join_buckets(probe_keys, num_buckets)
    current = heads[buckets]
    probe_idx_parts = []
    build_idx_parts = []
    hops = 0
    active = np.nonzero(current != -1)[0]
    cursor = current[active]
    while active.size:
        hops += int(active.size)
        matched = build_keys[cursor] == probe_keys[active]
        if matched.any():
            probe_idx_parts.append(active[matched])
            build_idx_parts.append(cursor[matched])
        cursor = nxt[cursor]
        alive = cursor != -1
        active = active[alive]
        cursor = cursor[alive]
    if probe_idx_parts:
        probe_idx = np.concatenate(probe_idx_parts)
        build_idx = np.concatenate(build_idx_parts)
        # Hop-major → probe-major: within a probe, matches appear in
        # ascending hop (= chain) order across the per-hop chunks, so a
        # stable sort by probe index yields exact chain-walk order.
        order = np.argsort(probe_idx, kind="stable")
        return probe_idx[order], build_idx[order], hops
    empty = np.empty(0, dtype=np.int64)
    return empty, empty.copy(), hops
