"""Compiled hot-path kernels with a NumPy fallback.

The four inner primitives of the partitioning data plane — hash, radix
histogram, stable scatter, SWWC buffered flush — behind one dispatch
layer with two interchangeable backends:

* **native** — a small C library (``_native.c``) compiled on demand
  with the system compiler and called through ctypes.  Every call
  releases the GIL, so the execution engine's thread backend runs the
  kernels genuinely in parallel; single-thread the fused loops beat
  NumPy dispatch by avoiding intermediates entirely.
* **numpy** — the original vectorised implementations
  (:mod:`repro.kernels.numpy_impl`), always available, bit-exact with
  the native kernels by test.

Backend selection (``REPRO_KERNELS`` environment variable, read at
first kernel use):

* ``auto`` (default) — try the native build; fall back to NumPy
  silently if there is no compiler or the build fails.
* ``native`` — require the native kernels; raise
  :class:`~repro.kernels.build.KernelBuildError` if they cannot be
  built/loaded (CI uses this to catch silent fallbacks).
* ``numpy`` — force the fallback (also the escape hatch if a platform
  miscompiles the kernels).

Tests can switch backends at runtime with :func:`set_backend` /
:func:`using_backend`; the switch is process-global.

Dtype coverage: the native path handles contiguous ``uint32`` keys with
``uint8``/``uint16``/``int64`` partition indices (everything the morsel
planner emits).  Anything else — notably ``uint64`` keys for 16 B
tuples — transparently routes to the NumPy backend per call, so callers
never need to care.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Optional, Tuple

import numpy as np

from repro.kernels import numpy_impl
from repro.kernels.build import (  # noqa: F401  (re-exported)
    KernelBuildError,
    build_native,
    library_path,
)

__all__ = [
    "KernelBuildError",
    "backend_name",
    "bucket_build",
    "bucket_probe",
    "build_native",
    "hash_histogram",
    "hash_only",
    "library_path",
    "native_available",
    "scatter",
    "set_backend",
    "stable_scatter",
    "swwc_scatter",
    "using_backend",
]

_VALID_MODES = ("auto", "native", "numpy")

_lock = threading.Lock()
_native = None          # NativeKernels instance once loaded
_backend: Optional[str] = None   # "native" | "numpy" once resolved
_load_error: Optional[str] = None

_NATIVE_PART_DTYPES = (np.uint8, np.uint16, np.int64)


def _resolve() -> str:
    """Resolve the backend once, honouring ``REPRO_KERNELS``."""
    global _backend, _native, _load_error
    if _backend is not None:
        return _backend
    with _lock:
        if _backend is not None:
            return _backend
        mode = os.environ.get("REPRO_KERNELS", "auto").strip().lower()
        if mode not in _VALID_MODES:
            raise KernelBuildError(
                f"REPRO_KERNELS must be one of {_VALID_MODES}, got {mode!r}"
            )
        if mode == "numpy":
            _backend = "numpy"
            return _backend
        try:
            from repro.kernels.native import load

            _native = load()
            _backend = "native"
        except KernelBuildError as error:
            if mode == "native":
                raise
            _load_error = str(error)
            _backend = "numpy"
        return _backend


def backend_name() -> str:
    """The active backend: ``"native"`` or ``"numpy"``."""
    return _resolve()


def native_available() -> bool:
    """True when the native kernels are built, loaded and active-able."""
    global _native
    if _native is not None:
        return True
    try:
        from repro.kernels.native import load

        with _lock:
            if _native is None:
                _native = load()
        return True
    except KernelBuildError:
        return False


def load_error() -> Optional[str]:
    """Why auto-detection fell back to NumPy (None when it didn't)."""
    _resolve()
    return _load_error


def set_backend(name: str) -> str:
    """Force the backend (process-global); returns the previous one.

    ``"native"`` raises :class:`KernelBuildError` when the native
    library cannot be built or loaded — never a silent fallback.
    """
    global _backend
    if name not in ("native", "numpy"):
        raise KernelBuildError(
            f"backend must be 'native' or 'numpy', got {name!r}"
        )
    previous = _resolve()
    if name == "native" and not native_available():
        raise KernelBuildError(
            "native kernels unavailable: "
            + (_load_error or "build failed")
        )
    _backend = name
    return previous


@contextlib.contextmanager
def using_backend(name: str):
    """Context manager form of :func:`set_backend` (test helper)."""
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def _native_eligible(keys: np.ndarray, *arrays: Optional[np.ndarray]) -> bool:
    """Whether this call can run on the native path (dtype/layout)."""
    if _resolve() != "native":
        return False
    if keys.dtype != np.uint32 or not keys.flags.c_contiguous:
        return False
    for array in arrays:
        if array is not None and not array.flags.c_contiguous:
            return False
    return True


# ----------------------------------------------------------------------
# The four primitives
# ----------------------------------------------------------------------

def hash_histogram(
    keys: np.ndarray,
    num_partitions: int,
    use_hash: bool,
    lanes: Optional[int] = None,
    global_offset: int = 0,
    parts_out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Primitive 1+2: partition indices + histogram(s) for one morsel.

    Returns ``(parts, hist, lane_hist)`` exactly like the historical
    ``morsel_histogram``; ``lane_hist`` is the per-(partition, lane)
    matrix when ``lanes`` is given, else None.
    """
    if parts_out is None:
        from repro.exec.morsels import parts_dtype

        parts_out = np.empty(keys.shape[0], dtype=parts_dtype(num_partitions))
    if (
        _native_eligible(keys, parts_out)
        and parts_out.dtype in _NATIVE_PART_DTYPES
        and (lanes is None or lanes & (lanes - 1) == 0)
    ):
        return _native.hash_histogram(
            keys, num_partitions, use_hash, lanes, global_offset, parts_out
        )
    return numpy_impl.hash_histogram(
        keys, num_partitions, use_hash, lanes, global_offset, parts_out
    )


def hash_only(
    keys: np.ndarray,
    num_partitions: int,
    use_hash: bool,
    parts_out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Primitive 1: partition indices without counting."""
    if parts_out is None:
        dtype = np.uint16 if num_partitions <= 1 << 16 else np.int64
        parts_out = np.empty(keys.shape[0], dtype=dtype)
    if _native_eligible(keys, parts_out) and parts_out.dtype in (
        np.uint16,
        np.int64,
    ):
        return _native.hash_only(keys, num_partitions, use_hash, parts_out)
    return numpy_impl.hash_only(keys, num_partitions, use_hash, parts_out)


def stable_scatter(
    keys: np.ndarray,
    payloads: np.ndarray,
    parts: np.ndarray,
    dest_base: np.ndarray,
    num_partitions: int,
    out_keys: np.ndarray,
    out_payloads: np.ndarray,
) -> None:
    """Primitive 3: stable scatter of one morsel into shared outputs.

    ``dest_base`` (one row of the two-level prefix sum, length ≥
    ``num_partitions``) is *not* modified — the kernel advances a
    private cursor copy — so a caller can re-use the row.
    """
    cursor = np.ascontiguousarray(dest_base, dtype=np.int64).copy()
    if (
        _native_eligible(keys, payloads, parts, out_keys, out_payloads)
        and parts.dtype in _NATIVE_PART_DTYPES
        and payloads.dtype == np.uint32
        and out_keys.dtype == np.uint32
        and out_payloads.dtype == np.uint32
    ):
        _native.scatter(keys, payloads, parts, cursor, out_keys, out_payloads)
        return
    numpy_impl.scatter(keys, payloads, parts, cursor, out_keys, out_payloads)


#: alias kept intentionally: "scatter" is the primitive's short name
scatter = stable_scatter


def swwc_scatter(
    keys: np.ndarray,
    payloads: np.ndarray,
    parts: np.ndarray,
    dest_base: np.ndarray,
    num_partitions: int,
    buffer_tuples: int,
    out_keys: np.ndarray,
    out_payloads: np.ndarray,
    threads: int = 1,
) -> None:
    """Primitive 4: the scatter driven through software write-combine
    buffers (Code 2) — cache-line batched writes, byte-identical output
    to :func:`stable_scatter`.

    ``threads > 1`` (native backend only) splits the fan-out into one
    contiguous partition range per thread and flushes the ranges in
    parallel; each cursor has a single owner, so the result stays
    byte-identical.  The NumPy fallback ignores ``threads``.
    """
    from repro.kernels.native import SWWC_MAX_PARTITIONS

    cursor = np.ascontiguousarray(dest_base, dtype=np.int64).copy()
    if (
        _native_eligible(keys, payloads, parts, out_keys, out_payloads)
        and parts.dtype in _NATIVE_PART_DTYPES
        and payloads.dtype == np.uint32
        and out_keys.dtype == np.uint32
        and out_payloads.dtype == np.uint32
    ):
        if num_partitions <= SWWC_MAX_PARTITIONS and buffer_tuples >= 1:
            _native.swwc_scatter(
                keys, payloads, parts, num_partitions, buffer_tuples,
                cursor, out_keys, out_payloads, threads=max(1, int(threads)),
            )
        else:
            _native.scatter(
                keys, payloads, parts, cursor, out_keys, out_payloads
            )
        return
    numpy_impl.swwc_scatter(
        keys, payloads, parts, num_partitions, buffer_tuples, cursor,
        out_keys, out_payloads,
    )


def bucket_build(
    keys: np.ndarray, num_buckets: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Primitive 5: bucket-chaining join build → ``(heads, next)``.

    Chains are identical across backends: head = the bucket's last
    tuple, ``next`` pointing to earlier ones (scalar front-insertion
    order).  Buckets come from the murmur in-table hash.
    """
    if _native_eligible(keys):
        heads = np.empty(num_buckets, dtype=np.int64)
        nxt = np.empty(keys.shape[0], dtype=np.int64)
        _native.bucket_build(keys, num_buckets, heads, nxt)
        return heads, nxt
    return numpy_impl.bucket_build(keys, num_buckets)


def bucket_probe(
    build_keys: np.ndarray,
    heads: np.ndarray,
    nxt: np.ndarray,
    num_buckets: int,
    probe_keys: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Primitive 6: chain-walk probe → ``(probe_idx, build_idx, hops)``.

    Emission is probe-major on both backends — for each probe tuple in
    input order, its matches follow the chain — so the match ordering
    (and everything derived from it: payload pairs, aggregation input
    order) is backend-invariant.  The native walk runs the whole probe
    in one GIL-free call.
    """
    if (
        _native_eligible(build_keys, heads, nxt)
        and probe_keys.dtype == np.uint32
        and probe_keys.flags.c_contiguous
        and heads.dtype == np.int64
        and nxt.dtype == np.int64
    ):
        return _native.bucket_probe(
            build_keys, heads, nxt, num_buckets, probe_keys
        )
    return numpy_impl.bucket_probe(
        build_keys, heads, nxt, num_buckets, probe_keys
    )
