"""On-demand build of the native kernel library.

The kernels are plain C with no Python API (see ``_native.c``), so the
build is one compiler invocation — no ``Python.h``, no ``setuptools``
machinery, no network.  The shared object is cached under a
content-addressed name (source hash × compiler), so the compile runs
once per source revision per machine; subsequent imports just ``dlopen``
the cached file.

Build location, in order of preference:

1. ``$REPRO_KERNELS_CACHE`` when set;
2. ``~/.cache/repro-kernels/``;
3. a per-user directory under the system temp dir.

Concurrent builders are safe: each compiles to a unique temporary name
and ``os.replace``-s it into place atomically.  Any failure (no
compiler, read-only cache, broken toolchain) raises
:class:`KernelBuildError`; the dispatch layer catches it and falls back
to the NumPy backend unless ``REPRO_KERNELS=native`` demands otherwise.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
from typing import List, Optional


class KernelBuildError(RuntimeError):
    """The native kernel library could not be built or loaded."""


_SOURCE = pathlib.Path(__file__).with_name("_native.c")

#: flags tried in order; the first compiler invocation that succeeds
#: wins.  -O3 + -fPIC is the baseline; march=native is attempted first
#: for the vectorised hash loop and dropped if the compiler rejects it.
_BASE_FLAGS = [
    "-O3", "-fPIC", "-shared", "-std=c99", "-fvisibility=default",
    "-pthread",
]
_ARCH_FLAGS: List[List[str]] = [["-march=native"], []]


def _compiler() -> Optional[str]:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _cache_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return pathlib.Path(override)
    home = pathlib.Path.home()
    if os.access(home, os.W_OK):
        return home / ".cache" / "repro-kernels"
    return (
        pathlib.Path(tempfile.gettempdir())
        / f"repro-kernels-{os.getuid() if hasattr(os, 'getuid') else 'u'}"
    )


def _build_key(compiler: str) -> str:
    digest = hashlib.sha256()
    digest.update(_SOURCE.read_bytes())
    digest.update(compiler.encode())
    digest.update(sys.platform.encode())
    return digest.hexdigest()[:16]


def library_path() -> pathlib.Path:
    """Where the built library for the current source lives (or will)."""
    compiler = _compiler() or "none"
    suffix = ".dylib" if sys.platform == "darwin" else ".so"
    return _cache_dir() / f"repro_kernels_{_build_key(compiler)}{suffix}"


def build_native(force: bool = False) -> pathlib.Path:
    """Compile ``_native.c`` into the cache; returns the library path.

    Idempotent: a cached build for the current source hash is reused
    unless ``force`` is set.  Raises :class:`KernelBuildError` on any
    failure, with the compiler's stderr attached.
    """
    if not _SOURCE.exists():
        raise KernelBuildError(f"kernel source missing: {_SOURCE}")
    compiler = _compiler()
    if compiler is None:
        raise KernelBuildError(
            "no C compiler found (tried $CC, cc, gcc, clang)"
        )
    target = library_path()
    if target.exists() and not force:
        return target
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise KernelBuildError(
            f"cannot create kernel cache dir {target.parent}: {error}"
        ) from error

    errors = []
    for arch in _ARCH_FLAGS:
        handle, tmp_name = tempfile.mkstemp(
            suffix=target.suffix, dir=target.parent
        )
        os.close(handle)
        command = (
            [compiler, *_BASE_FLAGS, *arch, "-o", tmp_name, str(_SOURCE)]
        )
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.TimeoutExpired) as error:
            os.unlink(tmp_name)
            raise KernelBuildError(
                f"compiler invocation failed: {error}"
            ) from error
        if result.returncode == 0:
            os.replace(tmp_name, target)
            return target
        os.unlink(tmp_name)
        errors.append(result.stderr.strip())
    raise KernelBuildError(
        "native kernel build failed:\n" + "\n---\n".join(errors)
    )
