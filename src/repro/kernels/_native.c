/* Native hot-path kernels for the partitioning data plane.
 *
 * Four primitives, mirroring the paper's inner loops (Section 4):
 *
 *   1. hash           — murmur3 finalizer (Code 3) or radix bits;
 *   2. radix histogram — fused hash + per-partition counts, with the
 *      optional per-(partition, lane) histogram the FPGA cache-line
 *      accounting needs;
 *   3. stable scatter — sequential cursor scatter, byte-identical to a
 *      stable sort by partition index;
 *   4. SWWC scatter   — the same scatter driven through cache-line
 *      sized software write-combine buffers (Code 2): tuples
 *      accumulate per partition and a full buffer is flushed with one
 *      memcpy, so the random-write working set is the buffer pool, not
 *      the whole output.
 *
 * Deliberately plain C99 with no Python.h: the module is loaded
 * through ctypes, which drops the GIL for the duration of every call —
 * that is what makes the thread backend of the execution engine scale
 * instead of serialising on NumPy dispatch.  Every function is
 * instantiated for the three partition-index dtypes the morsel planner
 * uses (uint8 / uint16 / int64, see exec.morsels.parts_dtype).
 *
 * The outputs are bit-exact with the NumPy reference implementations
 * (pinned by tests/test_kernels.py): same murmur constants, same
 * wrap-around arithmetic, same stable visit order.
 */

#include <stdint.h>
#include <string.h>
#include <stdlib.h>

#if defined(__GNUC__) || defined(__clang__)
#define REPRO_PREFETCH_W(addr) __builtin_prefetch((addr), 1, 0)
#else
#define REPRO_PREFETCH_W(addr) ((void)0)
#endif

/* Scatter lookahead: far enough to cover DRAM latency, near enough
 * that cursor[] has advanced at most SCATTER_PF_DIST slots since the
 * prefetch address was computed (same cache line in practice). */
#define SCATTER_PF_DIST 24

#define MURMUR32_C1 0x85ebca6bu
#define MURMUR32_C2 0xc2b2ae35u

static inline uint32_t murmur32(uint32_t h)
{
    h ^= h >> 16;
    h *= MURMUR32_C1;
    h ^= h >> 13;
    h *= MURMUR32_C2;
    h ^= h >> 16;
    return h;
}

/* ------------------------------------------------------------------ */
/* 1 + 2: fused hash + histogram (+ optional lane histogram)           */
/*                                                                     */
/* parts[i] = (use_hash ? murmur32(keys[i]) : keys[i]) & (P - 1)       */
/* hist[p] += 1; lane_hist[p * lanes + (global_offset + i) % lanes]    */
/* (lane accounting only when lanes > 0; lanes is a power of two).     */
/* ------------------------------------------------------------------ */

#define DEFINE_HASH_HIST(SUFFIX, PART_T)                                   \
    void repro_hash_hist_##SUFFIX(                                         \
        const uint32_t *keys, int64_t n, int64_t num_partitions,           \
        int use_hash, int64_t lanes, int64_t global_offset,                \
        PART_T *parts, int64_t *hist, int64_t *lane_hist)                  \
    {                                                                      \
        const uint32_t mask = (uint32_t)(num_partitions - 1);              \
        int64_t i;                                                         \
        if (lanes > 0) {                                                   \
            const int64_t lane_mask = lanes - 1;                           \
            for (i = 0; i < n; i++) {                                      \
                uint32_t h = keys[i];                                      \
                if (use_hash) h = murmur32(h);                             \
                const uint32_t p = h & mask;                               \
                parts[i] = (PART_T)p;                                      \
                hist[p]++;                                                 \
                lane_hist[(int64_t)p * lanes +                             \
                          ((global_offset + i) & lane_mask)]++;            \
            }                                                              \
        } else if (use_hash) {                                             \
            for (i = 0; i < n; i++) {                                      \
                const uint32_t p = murmur32(keys[i]) & mask;               \
                parts[i] = (PART_T)p;                                      \
                hist[p]++;                                                 \
            }                                                              \
        } else {                                                           \
            for (i = 0; i < n; i++) {                                      \
                const uint32_t p = keys[i] & mask;                         \
                parts[i] = (PART_T)p;                                      \
                hist[p]++;                                                 \
            }                                                              \
        }                                                                  \
    }

DEFINE_HASH_HIST(u8, uint8_t)
DEFINE_HASH_HIST(u16, uint16_t)
DEFINE_HASH_HIST(i64, int64_t)

/* Hash only (no histogram): the batch kernel of partition_many wants
 * raw partition indices to pack with the request index. */
void repro_hash_only_u16(const uint32_t *keys, int64_t n,
                         int64_t num_partitions, int use_hash,
                         uint16_t *parts)
{
    const uint32_t mask = (uint32_t)(num_partitions - 1);
    int64_t i;
    if (use_hash) {
        for (i = 0; i < n; i++)
            parts[i] = (uint16_t)(murmur32(keys[i]) & mask);
    } else {
        for (i = 0; i < n; i++)
            parts[i] = (uint16_t)(keys[i] & mask);
    }
}

void repro_hash_only_i64(const uint32_t *keys, int64_t n,
                         int64_t num_partitions, int use_hash,
                         int64_t *parts)
{
    const uint32_t mask = (uint32_t)(num_partitions - 1);
    int64_t i;
    if (use_hash) {
        for (i = 0; i < n; i++)
            parts[i] = (int64_t)(murmur32(keys[i]) & mask);
    } else {
        for (i = 0; i < n; i++)
            parts[i] = (int64_t)(keys[i] & mask);
    }
}

/* ------------------------------------------------------------------ */
/* 3: stable cursor scatter                                            */
/*                                                                     */
/* cursor[] starts as the morsel's per-partition destination bases and */
/* is advanced in place; the sequential visit order makes the scatter  */
/* stable, i.e. byte-identical to a stable sort by partition index.    */
/* ------------------------------------------------------------------ */

#define DEFINE_SCATTER(SUFFIX, PART_T)                                     \
    void repro_scatter_##SUFFIX(                                           \
        const uint32_t *keys, const uint32_t *payloads,                    \
        const PART_T *parts, int64_t n, int64_t *cursor,                   \
        uint32_t *out_keys, uint32_t *out_payloads)                        \
    {                                                                      \
        const int64_t pf_end = n > SCATTER_PF_DIST ? n - SCATTER_PF_DIST : 0; \
        int64_t i;                                                         \
        for (i = 0; i < pf_end; i++) {                                     \
            const int64_t a = cursor[parts[i + SCATTER_PF_DIST]];          \
            REPRO_PREFETCH_W(out_keys + a);                                \
            REPRO_PREFETCH_W(out_payloads + a);                            \
            const int64_t d = cursor[parts[i]]++;                          \
            out_keys[d] = keys[i];                                         \
            out_payloads[d] = payloads[i];                                 \
        }                                                                  \
        for (; i < n; i++) {                                               \
            const int64_t d = cursor[parts[i]]++;                          \
            out_keys[d] = keys[i];                                         \
            out_payloads[d] = payloads[i];                                 \
        }                                                                  \
    }

DEFINE_SCATTER(u8, uint8_t)
DEFINE_SCATTER(u16, uint16_t)
DEFINE_SCATTER(i64, int64_t)

/* ------------------------------------------------------------------ */
/* 4: SWWC buffered scatter (Code 2)                                   */
/*                                                                     */
/* Key/payload pairs accumulate in per-partition buffers of            */
/* buffer_tuples entries; a full buffer is drained with two memcpys    */
/* (the software stand-in for one non-temporal cache-line store).      */
/* Output is byte-identical to repro_scatter_*: the buffers preserve   */
/* per-partition arrival order.  Returns 0, or -1 if the buffer pool   */
/* allocation failed (caller falls back to the plain scatter).         */
/* ------------------------------------------------------------------ */

#define DEFINE_SWWC_SCATTER(SUFFIX, PART_T)                                \
    int repro_swwc_scatter_##SUFFIX(                                       \
        const uint32_t *keys, const uint32_t *payloads,                    \
        const PART_T *parts, int64_t n, int64_t num_partitions,            \
        int64_t buffer_tuples, int64_t *cursor,                            \
        uint32_t *out_keys, uint32_t *out_payloads)                        \
    {                                                                      \
        uint32_t *buf_keys, *buf_pays;                                     \
        int64_t *fill;                                                     \
        int64_t i, p;                                                      \
        if (buffer_tuples < 1) return -1;                                  \
        buf_keys = (uint32_t *)malloc(                                     \
            (size_t)num_partitions * (size_t)buffer_tuples * 4);           \
        buf_pays = (uint32_t *)malloc(                                     \
            (size_t)num_partitions * (size_t)buffer_tuples * 4);           \
        fill = (int64_t *)calloc((size_t)num_partitions, 8);               \
        if (!buf_keys || !buf_pays || !fill) {                             \
            free(buf_keys); free(buf_pays); free(fill);                    \
            return -1;                                                     \
        }                                                                  \
        for (i = 0; i < n; i++) {                                          \
            const int64_t part = (int64_t)parts[i];                        \
            const int64_t base = part * buffer_tuples;                     \
            int64_t f = fill[part];                                        \
            buf_keys[base + f] = keys[i];                                  \
            buf_pays[base + f] = payloads[i];                              \
            if (++f == buffer_tuples) {                                    \
                const int64_t d = cursor[part];                            \
                memcpy(out_keys + d, buf_keys + base,                      \
                       (size_t)buffer_tuples * 4);                         \
                memcpy(out_payloads + d, buf_pays + base,                  \
                       (size_t)buffer_tuples * 4);                         \
                cursor[part] = d + buffer_tuples;                          \
                f = 0;                                                     \
            }                                                              \
            fill[part] = f;                                                \
        }                                                                  \
        for (p = 0; p < num_partitions; p++) {                             \
            const int64_t f = fill[p];                                     \
            if (f > 0) {                                                   \
                const int64_t d = cursor[p];                               \
                memcpy(out_keys + d, buf_keys + p * buffer_tuples,         \
                       (size_t)f * 4);                                     \
                memcpy(out_payloads + d, buf_pays + p * buffer_tuples,     \
                       (size_t)f * 4);                                     \
                cursor[p] = d + f;                                         \
            }                                                              \
        }                                                                  \
        free(buf_keys); free(buf_pays); free(fill);                        \
        return 0;                                                          \
    }

DEFINE_SWWC_SCATTER(u8, uint8_t)
DEFINE_SWWC_SCATTER(u16, uint16_t)
DEFINE_SWWC_SCATTER(i64, int64_t)

/* ABI version stamp so a stale cached .so is never silently reused. */
int repro_kernels_abi(void) { return 1; }
