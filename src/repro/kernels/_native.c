/* Native hot-path kernels for the partitioning data plane.
 *
 * Four primitives, mirroring the paper's inner loops (Section 4):
 *
 *   1. hash           — murmur3 finalizer (Code 3) or radix bits;
 *   2. radix histogram — fused hash + per-partition counts, with the
 *      optional per-(partition, lane) histogram the FPGA cache-line
 *      accounting needs;
 *   3. stable scatter — sequential cursor scatter, byte-identical to a
 *      stable sort by partition index;
 *   4. SWWC scatter   — the same scatter driven through cache-line
 *      sized software write-combine buffers (Code 2): tuples
 *      accumulate per partition and a full buffer is flushed with one
 *      memcpy, so the random-write working set is the buffer pool, not
 *      the whole output.
 *
 * Deliberately plain C99 with no Python.h: the module is loaded
 * through ctypes, which drops the GIL for the duration of every call —
 * that is what makes the thread backend of the execution engine scale
 * instead of serialising on NumPy dispatch.  Every function is
 * instantiated for the three partition-index dtypes the morsel planner
 * uses (uint8 / uint16 / int64, see exec.morsels.parts_dtype).
 *
 * The outputs are bit-exact with the NumPy reference implementations
 * (pinned by tests/test_kernels.py): same murmur constants, same
 * wrap-around arithmetic, same stable visit order.
 */

#include <stdint.h>
#include <string.h>
#include <stdlib.h>
#include <pthread.h>

#if defined(__GNUC__) || defined(__clang__)
#define REPRO_PREFETCH_W(addr) __builtin_prefetch((addr), 1, 0)
#else
#define REPRO_PREFETCH_W(addr) ((void)0)
#endif

/* Scatter lookahead: far enough to cover DRAM latency, near enough
 * that cursor[] has advanced at most SCATTER_PF_DIST slots since the
 * prefetch address was computed (same cache line in practice). */
#define SCATTER_PF_DIST 24

#define MURMUR32_C1 0x85ebca6bu
#define MURMUR32_C2 0xc2b2ae35u

static inline uint32_t murmur32(uint32_t h)
{
    h ^= h >> 16;
    h *= MURMUR32_C1;
    h ^= h >> 13;
    h *= MURMUR32_C2;
    h ^= h >> 16;
    return h;
}

/* ------------------------------------------------------------------ */
/* 1 + 2: fused hash + histogram (+ optional lane histogram)           */
/*                                                                     */
/* parts[i] = (use_hash ? murmur32(keys[i]) : keys[i]) & (P - 1)       */
/* hist[p] += 1; lane_hist[p * lanes + (global_offset + i) % lanes]    */
/* (lane accounting only when lanes > 0; lanes is a power of two).     */
/* ------------------------------------------------------------------ */

#define DEFINE_HASH_HIST(SUFFIX, PART_T)                                   \
    void repro_hash_hist_##SUFFIX(                                         \
        const uint32_t *keys, int64_t n, int64_t num_partitions,           \
        int use_hash, int64_t lanes, int64_t global_offset,                \
        PART_T *parts, int64_t *hist, int64_t *lane_hist)                  \
    {                                                                      \
        const uint32_t mask = (uint32_t)(num_partitions - 1);              \
        int64_t i;                                                         \
        if (lanes > 0) {                                                   \
            const int64_t lane_mask = lanes - 1;                           \
            for (i = 0; i < n; i++) {                                      \
                uint32_t h = keys[i];                                      \
                if (use_hash) h = murmur32(h);                             \
                const uint32_t p = h & mask;                               \
                parts[i] = (PART_T)p;                                      \
                hist[p]++;                                                 \
                lane_hist[(int64_t)p * lanes +                             \
                          ((global_offset + i) & lane_mask)]++;            \
            }                                                              \
        } else if (use_hash) {                                             \
            for (i = 0; i < n; i++) {                                      \
                const uint32_t p = murmur32(keys[i]) & mask;               \
                parts[i] = (PART_T)p;                                      \
                hist[p]++;                                                 \
            }                                                              \
        } else {                                                           \
            for (i = 0; i < n; i++) {                                      \
                const uint32_t p = keys[i] & mask;                         \
                parts[i] = (PART_T)p;                                      \
                hist[p]++;                                                 \
            }                                                              \
        }                                                                  \
    }

DEFINE_HASH_HIST(u8, uint8_t)
DEFINE_HASH_HIST(u16, uint16_t)
DEFINE_HASH_HIST(i64, int64_t)

/* Hash only (no histogram): the batch kernel of partition_many wants
 * raw partition indices to pack with the request index. */
void repro_hash_only_u16(const uint32_t *keys, int64_t n,
                         int64_t num_partitions, int use_hash,
                         uint16_t *parts)
{
    const uint32_t mask = (uint32_t)(num_partitions - 1);
    int64_t i;
    if (use_hash) {
        for (i = 0; i < n; i++)
            parts[i] = (uint16_t)(murmur32(keys[i]) & mask);
    } else {
        for (i = 0; i < n; i++)
            parts[i] = (uint16_t)(keys[i] & mask);
    }
}

void repro_hash_only_i64(const uint32_t *keys, int64_t n,
                         int64_t num_partitions, int use_hash,
                         int64_t *parts)
{
    const uint32_t mask = (uint32_t)(num_partitions - 1);
    int64_t i;
    if (use_hash) {
        for (i = 0; i < n; i++)
            parts[i] = (int64_t)(murmur32(keys[i]) & mask);
    } else {
        for (i = 0; i < n; i++)
            parts[i] = (int64_t)(keys[i] & mask);
    }
}

/* ------------------------------------------------------------------ */
/* 3: stable cursor scatter                                            */
/*                                                                     */
/* cursor[] starts as the morsel's per-partition destination bases and */
/* is advanced in place; the sequential visit order makes the scatter  */
/* stable, i.e. byte-identical to a stable sort by partition index.    */
/* ------------------------------------------------------------------ */

#define DEFINE_SCATTER(SUFFIX, PART_T)                                     \
    void repro_scatter_##SUFFIX(                                           \
        const uint32_t *keys, const uint32_t *payloads,                    \
        const PART_T *parts, int64_t n, int64_t *cursor,                   \
        uint32_t *out_keys, uint32_t *out_payloads)                        \
    {                                                                      \
        const int64_t pf_end = n > SCATTER_PF_DIST ? n - SCATTER_PF_DIST : 0; \
        int64_t i;                                                         \
        for (i = 0; i < pf_end; i++) {                                     \
            const int64_t a = cursor[parts[i + SCATTER_PF_DIST]];          \
            REPRO_PREFETCH_W(out_keys + a);                                \
            REPRO_PREFETCH_W(out_payloads + a);                            \
            const int64_t d = cursor[parts[i]]++;                          \
            out_keys[d] = keys[i];                                         \
            out_payloads[d] = payloads[i];                                 \
        }                                                                  \
        for (; i < n; i++) {                                               \
            const int64_t d = cursor[parts[i]]++;                          \
            out_keys[d] = keys[i];                                         \
            out_payloads[d] = payloads[i];                                 \
        }                                                                  \
    }

DEFINE_SCATTER(u8, uint8_t)
DEFINE_SCATTER(u16, uint16_t)
DEFINE_SCATTER(i64, int64_t)

/* ------------------------------------------------------------------ */
/* 4: SWWC buffered scatter (Code 2)                                   */
/*                                                                     */
/* Key/payload pairs accumulate in per-partition buffers of            */
/* buffer_tuples entries; a full buffer is drained with two memcpys    */
/* (the software stand-in for one non-temporal cache-line store).      */
/* Output is byte-identical to repro_scatter_*: the buffers preserve   */
/* per-partition arrival order.  Returns 0, or -1 if the buffer pool   */
/* allocation failed (caller falls back to the plain scatter).         */
/* ------------------------------------------------------------------ */

#define DEFINE_SWWC_SCATTER(SUFFIX, PART_T)                                \
    int repro_swwc_scatter_##SUFFIX(                                       \
        const uint32_t *keys, const uint32_t *payloads,                    \
        const PART_T *parts, int64_t n, int64_t num_partitions,            \
        int64_t buffer_tuples, int64_t *cursor,                            \
        uint32_t *out_keys, uint32_t *out_payloads)                        \
    {                                                                      \
        uint32_t *buf_keys, *buf_pays;                                     \
        int64_t *fill;                                                     \
        int64_t i, p;                                                      \
        if (buffer_tuples < 1) return -1;                                  \
        buf_keys = (uint32_t *)malloc(                                     \
            (size_t)num_partitions * (size_t)buffer_tuples * 4);           \
        buf_pays = (uint32_t *)malloc(                                     \
            (size_t)num_partitions * (size_t)buffer_tuples * 4);           \
        fill = (int64_t *)calloc((size_t)num_partitions, 8);               \
        if (!buf_keys || !buf_pays || !fill) {                             \
            free(buf_keys); free(buf_pays); free(fill);                    \
            return -1;                                                     \
        }                                                                  \
        for (i = 0; i < n; i++) {                                          \
            const int64_t part = (int64_t)parts[i];                        \
            const int64_t base = part * buffer_tuples;                     \
            int64_t f = fill[part];                                        \
            buf_keys[base + f] = keys[i];                                  \
            buf_pays[base + f] = payloads[i];                              \
            if (++f == buffer_tuples) {                                    \
                const int64_t d = cursor[part];                            \
                memcpy(out_keys + d, buf_keys + base,                      \
                       (size_t)buffer_tuples * 4);                         \
                memcpy(out_payloads + d, buf_pays + base,                  \
                       (size_t)buffer_tuples * 4);                         \
                cursor[part] = d + buffer_tuples;                          \
                f = 0;                                                     \
            }                                                              \
            fill[part] = f;                                                \
        }                                                                  \
        for (p = 0; p < num_partitions; p++) {                             \
            const int64_t f = fill[p];                                     \
            if (f > 0) {                                                   \
                const int64_t d = cursor[p];                               \
                memcpy(out_keys + d, buf_keys + p * buffer_tuples,         \
                       (size_t)f * 4);                                     \
                memcpy(out_payloads + d, buf_pays + p * buffer_tuples,     \
                       (size_t)f * 4);                                     \
                cursor[p] = d + f;                                         \
            }                                                              \
        }                                                                  \
        free(buf_keys); free(buf_pays); free(fill);                        \
        return 0;                                                          \
    }

DEFINE_SWWC_SCATTER(u8, uint8_t)
DEFINE_SWWC_SCATTER(u16, uint16_t)
DEFINE_SWWC_SCATTER(i64, int64_t)

/* ------------------------------------------------------------------ */
/* 4b: multi-threaded SWWC scatter                                     */
/*                                                                     */
/* Partition-parallel flush: the fan-out is split into one contiguous  */
/* partition range per thread; every thread scans the whole input but  */
/* buffers and flushes only the partitions it owns.  Each cursor slot  */
/* therefore has exactly one writer and the per-partition visit order  */
/* is the input order — byte-identical to the serial SWWC scatter (and */
/* hence to the plain stable scatter).  The scan is the cheap          */
/* sequential part; the random cache-line flushes, which are the SWWC  */
/* bottleneck, are what actually parallelise.                          */
/*                                                                     */
/* Failure handling keeps the entry point infallible: a worker whose   */
/* buffer pool allocation fails degrades itself to a plain cursor      */
/* scatter over its range, and a failed pthread_create runs that job   */
/* inline on the calling thread.  Always returns 0.                    */
/* ------------------------------------------------------------------ */

#define DEFINE_SWWC_MT(SUFFIX, PART_T)                                     \
    typedef struct {                                                       \
        const uint32_t *keys;                                              \
        const uint32_t *payloads;                                          \
        const PART_T *parts;                                               \
        int64_t n;                                                         \
        int64_t buffer_tuples;                                             \
        int64_t p_lo;                                                      \
        int64_t p_hi;                                                      \
        int64_t *cursor;                                                   \
        uint32_t *out_keys;                                                \
        uint32_t *out_payloads;                                            \
    } repro_swwc_job_##SUFFIX;                                             \
                                                                           \
    static void repro_swwc_range_plain_##SUFFIX(                           \
        const repro_swwc_job_##SUFFIX *job)                                \
    {                                                                      \
        int64_t i;                                                         \
        for (i = 0; i < job->n; i++) {                                     \
            const int64_t part = (int64_t)job->parts[i];                   \
            if (part < job->p_lo || part >= job->p_hi) continue;           \
            const int64_t d = job->cursor[part]++;                         \
            job->out_keys[d] = job->keys[i];                               \
            job->out_payloads[d] = job->payloads[i];                       \
        }                                                                  \
    }                                                                      \
                                                                           \
    static void *repro_swwc_worker_##SUFFIX(void *arg)                     \
    {                                                                      \
        repro_swwc_job_##SUFFIX *job = (repro_swwc_job_##SUFFIX *)arg;     \
        const int64_t span = job->p_hi - job->p_lo;                        \
        const int64_t bt = job->buffer_tuples;                             \
        uint32_t *buf_keys, *buf_pays;                                     \
        int64_t *fill;                                                     \
        int64_t i, p;                                                      \
        if (span <= 0) return NULL;                                        \
        buf_keys = (uint32_t *)malloc((size_t)span * (size_t)bt * 4);      \
        buf_pays = (uint32_t *)malloc((size_t)span * (size_t)bt * 4);      \
        fill = (int64_t *)calloc((size_t)span, 8);                         \
        if (!buf_keys || !buf_pays || !fill) {                             \
            free(buf_keys); free(buf_pays); free(fill);                    \
            repro_swwc_range_plain_##SUFFIX(job);                          \
            return NULL;                                                   \
        }                                                                  \
        for (i = 0; i < job->n; i++) {                                     \
            const int64_t part = (int64_t)job->parts[i];                   \
            int64_t local, base, f;                                        \
            if (part < job->p_lo || part >= job->p_hi) continue;           \
            local = part - job->p_lo;                                      \
            base = local * bt;                                             \
            f = fill[local];                                               \
            buf_keys[base + f] = job->keys[i];                             \
            buf_pays[base + f] = job->payloads[i];                         \
            if (++f == bt) {                                               \
                const int64_t d = job->cursor[part];                       \
                memcpy(job->out_keys + d, buf_keys + base, (size_t)bt * 4);\
                memcpy(job->out_payloads + d, buf_pays + base,             \
                       (size_t)bt * 4);                                    \
                job->cursor[part] = d + bt;                                \
                f = 0;                                                     \
            }                                                              \
            fill[local] = f;                                               \
        }                                                                  \
        for (p = 0; p < span; p++) {                                       \
            const int64_t f = fill[p];                                     \
            if (f > 0) {                                                   \
                const int64_t part = job->p_lo + p;                        \
                const int64_t d = job->cursor[part];                       \
                memcpy(job->out_keys + d, buf_keys + p * bt,               \
                       (size_t)f * 4);                                     \
                memcpy(job->out_payloads + d, buf_pays + p * bt,           \
                       (size_t)f * 4);                                     \
                job->cursor[part] = d + f;                                 \
            }                                                              \
        }                                                                  \
        free(buf_keys); free(buf_pays); free(fill);                        \
        return NULL;                                                       \
    }                                                                      \
                                                                           \
    int repro_swwc_scatter_mt_##SUFFIX(                                    \
        const uint32_t *keys, const uint32_t *payloads,                    \
        const PART_T *parts, int64_t n, int64_t num_partitions,            \
        int64_t buffer_tuples, int64_t threads, int64_t *cursor,           \
        uint32_t *out_keys, uint32_t *out_payloads)                        \
    {                                                                      \
        repro_swwc_job_##SUFFIX jobs[64];                                  \
        pthread_t tids[64];                                                \
        int started[64];                                                   \
        int64_t t, lo;                                                     \
        if (buffer_tuples < 1) return -1;                                  \
        if (threads > num_partitions) threads = num_partitions;            \
        if (threads > 64) threads = 64;                                    \
        if (threads <= 1)                                                  \
            return repro_swwc_scatter_##SUFFIX(                            \
                keys, payloads, parts, n, num_partitions, buffer_tuples,   \
                cursor, out_keys, out_payloads);                           \
        lo = 0;                                                            \
        for (t = 0; t < threads; t++) {                                    \
            const int64_t span = num_partitions / threads +                \
                                 (t < num_partitions % threads ? 1 : 0);   \
            jobs[t].keys = keys;                                           \
            jobs[t].payloads = payloads;                                   \
            jobs[t].parts = parts;                                         \
            jobs[t].n = n;                                                 \
            jobs[t].buffer_tuples = buffer_tuples;                         \
            jobs[t].p_lo = lo;                                             \
            jobs[t].p_hi = lo + span;                                      \
            jobs[t].cursor = cursor;                                       \
            jobs[t].out_keys = out_keys;                                   \
            jobs[t].out_payloads = out_payloads;                           \
            lo += span;                                                    \
        }                                                                  \
        for (t = 0; t < threads; t++) {                                    \
            started[t] = pthread_create(&tids[t], NULL,                    \
                                        repro_swwc_worker_##SUFFIX,        \
                                        &jobs[t]) == 0;                    \
            if (!started[t])                                               \
                (void)repro_swwc_worker_##SUFFIX(&jobs[t]);                \
        }                                                                  \
        for (t = 0; t < threads; t++)                                      \
            if (started[t]) pthread_join(tids[t], NULL);                   \
        return 0;                                                          \
    }

DEFINE_SWWC_MT(u8, uint8_t)
DEFINE_SWWC_MT(u16, uint16_t)
DEFINE_SWWC_MT(i64, int64_t)

/* ------------------------------------------------------------------ */
/* 6. bucket-chaining hash join: build + probe (Section 3.3)          */
/* ------------------------------------------------------------------ */

/* In-table bucket: the HIGH bits of the murmur hash.  The radix join
 * already consumed the LOW hash bits for partitioning, so masking the
 * same hash again would collapse every key of a partition into
 * num_buckets/fan-out buckets and turn the chains into long lists —
 * the top bits are independent of the partition index.  Clamped to a
 * 31-bit shift so num_buckets == 1 stays defined (mask then zeroes
 * the bucket anyway).                                                */
static inline uint32_t repro_bucket_shift(int64_t num_buckets)
{
    uint32_t shift = 32;
    while (num_buckets > 1) { num_buckets >>= 1; shift--; }
    return shift > 31 ? 31 : shift;
}

/* Front-insertion chain build: head = the bucket's last tuple, next
 * pointing to earlier ones — the exact chains the scalar algorithm
 * (and the vectorised NumPy construction) produces.                  */
void repro_bucket_build(const uint32_t *keys, int64_t n,
                        int64_t num_buckets,
                        int64_t *heads, int64_t *nxt)
{
    const uint32_t mask = (uint32_t)(num_buckets - 1);
    const uint32_t shift = repro_bucket_shift(num_buckets);
    int64_t i;
    for (i = 0; i < num_buckets; i++) heads[i] = -1;
    for (i = 0; i < n; i++) {
        const uint32_t b = (murmur32(keys[i]) >> shift) & mask;
        nxt[i] = heads[b];
        heads[b] = i;
    }
}

/* Chain-walk probe, emitting matches probe-major: for each probe
 * tuple in input order, its matches follow the chain (front-insertion
 * order) — the same order the NumPy fallback produces.  Returns the
 * total match count, which may exceed `capacity`; in that case only
 * the first `capacity` pairs were written and the caller re-calls
 * with larger buffers.                                               */
int64_t repro_bucket_probe(const uint32_t *build_keys,
                           const int64_t *heads, const int64_t *nxt,
                           int64_t num_buckets,
                           const uint32_t *probe_keys, int64_t m,
                           int64_t *out_probe, int64_t *out_build,
                           int64_t capacity, int64_t *hops_out)
{
    const uint32_t mask = (uint32_t)(num_buckets - 1);
    const uint32_t shift = repro_bucket_shift(num_buckets);
    int64_t count = 0, hops = 0, i;
    for (i = 0; i < m; i++) {
        const uint32_t key = probe_keys[i];
        int64_t c = heads[(murmur32(key) >> shift) & mask];
        while (c >= 0) {
            hops++;
            if (build_keys[c] == key) {
                if (count < capacity) {
                    out_probe[count] = i;
                    out_build[count] = c;
                }
                count++;
            }
            c = nxt[c];
        }
    }
    *hops_out = hops;
    return count;
}

/* ABI version stamp so a stale cached .so is never silently reused. */
int repro_kernels_abi(void) { return 3; }
